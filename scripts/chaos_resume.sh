#!/usr/bin/env bash
# Chaos gate: prove kill -9 resilience of the durable training runtime.
#
# For worker pools 1 and 3:
#   1. run the durable-training example uninterrupted (control checkpoint),
#   2. run it again throttled, SIGKILL it at a seeded-pseudo-random delay,
#   3. resume from the (possibly torn) journal,
#   4. require the resumed run's final checkpoint to be BYTE-identical to
#      the control's (`cmp`).
#
# Usage: scripts/chaos_resume.sh [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-7}"
BIN=target/release/examples/durable_training
cargo build --release --offline --example durable_training

for THREADS in 1 3; do
    out="results/chaos-t${THREADS}"
    rm -rf "$out"
    mkdir -p "$out"

    "$BIN" --journal "$out/control.journal" --checkpoint "$out/control.ckpt" \
        --threads "$THREADS" --seed "$SEED" >/dev/null

    # Throttled run: ~300 ms per epoch keeps the process alive long enough
    # for the kill to land mid-run (wherever the seeded delay falls).
    "$BIN" --journal "$out/chaos.journal" --checkpoint "$out/chaos.ckpt" \
        --threads "$THREADS" --seed "$SEED" --flush-delay-ms 300 >/dev/null &
    pid=$!
    delay_ms=$(( (SEED * 7919 + THREADS * 104729) % 1200 + 300 ))
    sleep "$(awk "BEGIN{print $delay_ms/1000}")"
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true

    if [ -f "$out/chaos.journal" ]; then
        "$BIN" --journal "$out/chaos.journal" --checkpoint "$out/chaos.ckpt" \
            --threads "$THREADS" --seed "$SEED" --resume >/dev/null
    else
        # Killed before the journal was even created: a fresh start IS the
        # resume semantics for zero durable progress.
        "$BIN" --journal "$out/chaos.journal" --checkpoint "$out/chaos.ckpt" \
            --threads "$THREADS" --seed "$SEED" >/dev/null
    fi

    cmp "$out/control.ckpt" "$out/chaos.ckpt"
    echo "chaos gate: threads=$THREADS killed at ${delay_ms}ms, resumed checkpoint bitwise-identical"
done
