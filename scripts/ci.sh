#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace root. The build environment is
# fully offline (all external deps are vendored), hence --offline throughout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets --workspace -- -D warnings

echo "ci: all gates green"
