#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace root. The build environment is
# fully offline (all external deps are vendored), hence --offline throughout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets --workspace -- -D warnings

# Robustness gate: the fault-injection suite plus a smoke run of the
# self-healing training demo.
cargo test -q --offline --test fault_injection
cargo run --release --offline --example faulty_chip_training >/dev/null

echo "ci: all gates green"
