#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace root. The build environment is
# fully offline (all external deps are vendored), hence --offline throughout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets --workspace -- -D warnings

# Robustness gate: the fault-injection suite plus a smoke run of the
# self-healing training demo.
cargo test -q --offline --test fault_injection
cargo run --release --offline --example faulty_chip_training >/dev/null

# Perf gate: quick run of the compiled-vs-interpreted forward bench. This
# regenerates BENCH_gemm.json at the workspace root and fails loudly if the
# compiled path stops beating the interpreted one (guards against silent
# regressions in the GEMM/compile plumbing).
cargo bench -q --offline -p photon-bench --bench gemm_forward >/dev/null
python3 - <<'EOF'
import json
with open("BENCH_gemm.json") as f:
    report = json.load(f)
speedup = report["speedup_compiled_vs_interpreted"]
assert speedup == speedup and speedup > 1.0, f"compiled path slower than interpreted: {speedup}"
print(f"ci: gemm_forward speedup {speedup:.2f}x")
EOF

echo "ci: all gates green"
