#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace root. The build environment is
# fully offline (all external deps are vendored), hence --offline throughout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets --workspace -- -D warnings

# Robustness gate: the fault-injection suite plus a smoke run of the
# self-healing training demo.
cargo test -q --offline --test fault_injection
cargo run --release --offline --example faulty_chip_training >/dev/null

# Telemetry gate: run the traced end-to-end demo (it asserts internally that
# the query ledger reconciles with chip.query_count()), then re-check the
# JSONL artifact from the outside: every line parses, and the per-category
# query_ledger events sum exactly to the chip's final counter.
cargo run --release --offline --example traced_training >/dev/null
python3 - <<'EOF'
import json
events = []
with open("results/trace_demo.jsonl") as f:
    for line in f:
        events.append(json.loads(line))
assert events, "trace_demo.jsonl is empty"
ledgered = sum(e["queries"] for e in events if e["type"] == "query_ledger")
run_end = [e for e in events if e["type"] == "run_end"]
assert len(run_end) == 1, f"expected one run_end event, got {len(run_end)}"
counted = run_end[0]["chip_query_count"]
assert ledgered == counted, f"query ledger {ledgered} != chip query count {counted}"
categories = {e["category"] for e in events if e["type"] == "query_ledger"}
assert "calibration" in categories and "probe" in categories, f"missing categories: {categories}"
print(f"ci: telemetry ledger reconciles ({ledgered} queries across {sorted(categories)})")
EOF

# Durability gate: SIGKILL a journaled run at a seeded-pseudo-random
# instant, resume from the (possibly torn) journal, and require the final
# checkpoint to be byte-identical to an uninterrupted control — at worker
# pools 1 and 3.
scripts/chaos_resume.sh

# Farm chaos gate: the multi-tenant chip farm under a seeded schedule of
# worker kills, forced quarantines, and hang-prone lab links. Every
# submitted job must end Completed — bitwise-equal to an uninterrupted
# single-chip run of the same spec — or Rejected with a typed reason: zero
# lost jobs, and the per-tenant ledgers must reconcile exactly with the
# per-worker and per-job chip query counters (the example exits non-zero
# otherwise). Pinned to the scalar kernel so the gate replays identically
# on every host.
PHOTON_KERNEL=scalar cargo test -q --offline --test farm_chaos
PHOTON_KERNEL=scalar cargo run --release --offline --example chip_farm >/dev/null

# Perf gate: quick run of the compiled-vs-interpreted forward bench. This
# regenerates BENCH_gemm.json at the workspace root and fails loudly if the
# compiled path stops beating the interpreted one (guards against silent
# regressions in the GEMM/compile plumbing).
cargo bench -q --offline -p photon-bench --bench gemm_forward >/dev/null
python3 - <<'EOF'
import json
with open("BENCH_gemm.json") as f:
    report = json.load(f)
speedup = report["speedup_compiled_vs_interpreted"]
assert speedup == speedup and speedup > 1.0, f"compiled path slower than interpreted: {speedup}"
print(f"ci: gemm_forward speedup {speedup:.2f}x")
EOF

# Fast-path gate: the equivalence property suites must hold on BOTH kernel
# tiers — the portable scalar reference (PHOTON_KERNEL=scalar) and whatever
# SIMD tier the host dispatches natively (AVX2-FMA / NEON / scalar). This is
# what makes the vector kernels trustworthy: same tests, both arithmetics.
PHOTON_KERNEL=scalar cargo test -q --offline --test fast_path --test compiled_equivalence
cargo test -q --offline --test fast_path --test compiled_equivalence

# Fast-path perf gate: smoke-run the tier-stack bench. Regenerates
# BENCH_simd.json and fails if no fast tier clears 2x over the plain
# compiled f64 baseline (the incremental rank-1 tier is kernel-independent,
# so this holds even on scalar-only hosts).
cargo bench -q --offline -p photon-bench --bench simd_forward >/dev/null
python3 - <<'EOF'
import json
with open("BENCH_simd.json") as f:
    report = json.load(f)
tiers = {r["tier"]: r["speedup_vs_f64_full"] for r in report["results"]}
assert tiers.get("f64-full") == 1.0, f"baseline must be 1.0x: {tiers}"
fast = {t: s for t, s in tiers.items() if t != "f64-full" and s is not None}
assert fast, f"no fast tiers measured: {tiers}"
best_tier, best = max(fast.items(), key=lambda kv: kv[1])
assert best >= 2.0, f"no fast tier reaches 2x over compiled f64: {tiers}"
print(f"ci: simd_forward best tier {best_tier} at {best:.2f}x (kernel {report['kernel']})")
EOF

# Serving-sim gate. Three properties make "a million requests" a number
# you can trust:
#   1. No wall clock anywhere in the simulator crate — all timing is
#      virtual, so reports are host-independent (grep-gated here).
#   2. Bitwise determinism: the integration suite asserts same-seed
#      replay across runs and PHOTON_THREADS settings, and the example
#      (which reconciles chip query counters against simulated
#      completions) must print byte-identical output on back-to-back runs.
#   3. The headline claim: microbatch coalescing must not lose to
#      uncoalesced serving on any benchmarked workload (and the JSON rows
#      must carry tail latencies plus the host-honesty fields).
if grep -rn "Instant::now" crates/sim/src crates/farm/src/resilience.rs; then
    echo "ci: wall-clock read inside the serving/resilience layer breaks virtual-time determinism" >&2
    exit 1
fi
PHOTON_KERNEL=scalar cargo test -q --offline --test serving_sim
mkdir -p results
PHOTON_KERNEL=scalar cargo run --release --offline --example serving_sim >results/serving_sim_a.txt
PHOTON_KERNEL=scalar cargo run --release --offline --example serving_sim >results/serving_sim_b.txt
cmp results/serving_sim_a.txt results/serving_sim_b.txt
echo "ci: serving_sim example output is byte-identical across runs"
PHOTON_KERNEL=scalar cargo bench -q --offline -p photon-bench --bench serving >/dev/null
python3 - <<'EOF'
import json
with open("BENCH_serving.json") as f:
    report = json.load(f)
rows = report["results"]
required = {"workload", "mode", "throughput_rps", "p50_ns", "p99_ns", "p999_ns",
            "kernel", "host_available_parallelism"}
for row in rows:
    missing = required - row.keys()
    assert not missing, f"row {row.get('workload')}/{row.get('mode')} missing {missing}"
by_arm = {(r["workload"], r["mode"]): r for r in rows}
workloads = {w for w, _ in by_arm}
assert workloads == {"poisson", "bursty"}, f"unexpected workload grid: {workloads}"
for w in sorted(workloads):
    un = by_arm[(w, "uncoalesced")]["throughput_rps"]
    co = by_arm[(w, "coalesced")]["throughput_rps"]
    assert co >= un, f"{w}: coalesced {co:.0f} rps lost to uncoalesced {un:.0f} rps"
    print(f"ci: serving {w} coalesced {co/un:.2f}x uncoalesced "
          f"(p99 {by_arm[(w,'coalesced')]['p99_ns']/1e3:.1f} us)")
# Resilience grid: same chaos scenario as the e2e suite, three arms. The
# resilient arm must hold p99 within 2x of healthy and lose strictly fewer
# requests than the no-resilience control.
arms = {r["arm"]: r for r in report["resilience"]}
assert set(arms) == {"healthy-baseline", "resilient-faults", "control-faults"}, \
    f"unexpected resilience grid: {set(arms)}"
summary = report["resilience_summary"]
assert summary["bound_held"], \
    f"resilient p99 blew the 2x bound: {summary['p99_vs_healthy']:.2f}x healthy"
assert summary["sheds_less_than_control"], \
    f"resilient arm lost {summary['resilient_lost']} >= control {summary['control_lost']}"
print(f"ci: resilience p99 {summary['p99_vs_healthy']:.2f}x healthy (bound 2.0), "
      f"lost {summary['resilient_lost']} vs control {summary['control_lost']}")
EOF

# Failover chaos gate. The resilient replica-group layer must
#   (a) trip and recover circuit breakers at deterministic virtual times,
#       conserve every request, and reconcile chip queries against the
#       eval+hedge ledger (the chaos suite and the example assert all of
#       it; the example exits non-zero on any violation);
#   (b) replay byte-identically: the failover example twice, cmp'd;
#   (c) hold the headline claim on this host too: grep the example's own
#       p99-bound and sheds-less-than-control verdict lines.
PHOTON_KERNEL=scalar cargo test -q --offline --test serving_resilience
PHOTON_KERNEL=scalar cargo run --release --offline --example serving_resilience >results/serving_resilience_a.txt
PHOTON_KERNEL=scalar cargo run --release --offline --example serving_resilience >results/serving_resilience_b.txt
cmp results/serving_resilience_a.txt results/serving_resilience_b.txt
grep -q "^p99 bound: .*: yes$" results/serving_resilience_a.txt
grep -q "^resilient sheds less than control: .*: yes$" results/serving_resilience_a.txt
echo "ci: failover chaos run holds the 2x p99 bound, sheds less than control, and replays byte-identically"

# Online-recalibration gate. The in-situ loop on a drifting chip must
# (a) recover: the example exits non-zero unless >=1 canary promotion
#     fired and the online deployment beats the stale no-recal baseline
#     on both accuracy and loss;
# (b) replay bitwise: two invocations — the second resuming from the
#     first's write-ahead journal — must print byte-identical reports
#     (pinned to the scalar kernel so the gate holds on every host);
# (c) hold its seams: the e2e suite covers pool-size/restart bitwise
#     determinism, kill-at-any-byte promote/rollback atomicity, and the
#     probe traffic's p99 budget in the serving sim.
PHOTON_KERNEL=scalar cargo test -q --offline --test online_recal --test durable_resume
rm -rf results/online-recal
PHOTON_KERNEL=scalar cargo run --release --offline --example online_recal -- \
    --dir results/online-recal >results/online_recal_a.txt
PHOTON_KERNEL=scalar cargo run --release --offline --example online_recal -- \
    --dir results/online-recal >results/online_recal_b.txt
cmp results/online_recal_a.txt results/online_recal_b.txt
grep -q "PROMOTED" results/online_recal_a.txt
grep -q "recovered: yes" results/online_recal_a.txt
echo "ci: online recalibration recovers, promotes, and replays byte-identically"

echo "ci: all gates green"
