//! # photon-zo
//!
//! A from-scratch Rust reproduction of *"Zeroth-Order Optimization of
//! Optical Neural Networks with Linear Combination Natural Gradient and
//! Calibrated Model"* (DAC 2024): training MZI-mesh optical neural networks
//! whose fabrication errors make backpropagation unreliable, by combining
//!
//! 1. **zeroth-order probing** of the physical chip (loss values only),
//! 2. a **linear combination natural gradient** update — the best step in
//!    the span of the probe directions under a Fisher-metric curvature
//!    model, and
//! 3. a **calibrated software model** whose per-component errors are fitted
//!    from chip measurements and which supplies that curvature.
//!
//! This crate is a facade: it re-exports the workspace layers.
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | [`linalg`] | `photon-linalg` | complex/real dense linear algebra |
//! | [`photonics`] | `photon-photonics` | MZI meshes, error model, chip, autodiff, Fisher |
//! | [`data`] | `photon-data` | synthetic datasets, DFT features |
//! | [`opt`] | `photon-opt` | ZO, LCNG, natural gradient, CMA-ES, tuning |
//! | [`calib`] | `photon-calib` | black-box chip calibration |
//! | [`core`] | `photon-core` | losses, trainer, experiments, statistics |
//! | [`exec`] | `photon-exec` | deterministic worker-pool evaluation |
//! | [`faults`] | `photon-faults` | seeded fault injection for chip robustness studies |
//! | [`trace`] | `photon-trace` | structured telemetry: trace sinks, typed events, query ledger |
//! | [`farm`] | `photon-farm` | fault-tolerant multi-tenant chip farm: scheduling, quarantine, admission |
//! | [`sim`] | `photon-sim` | deterministic discrete-event serving simulator + microbatch coalescing |
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use photon_zo::prelude::*;
//!
//! // A 4-port ONN task with fabrication errors, trained by the paper's
//! // ZO-LCNG with an oracle metric model (see examples/ for calibration).
//! let task = build_task(&TaskSpec::quick(4), 1)?;
//! let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
//!     .with_calibrated_model(task.chip.oracle_network());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let mut config = TrainConfig::quick(4);
//! config.epochs = 2;
//! let outcome = trainer.train(
//!     Method::Lcng { model: ModelChoice::Calibrated },
//!     &config,
//!     &mut rng,
//! )?;
//! assert!(outcome.final_eval.accuracy >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

/// Dense complex/real linear algebra (re-export of `photon-linalg`).
pub mod linalg {
    pub use photon_linalg::*;
}

/// The photonic circuit simulator (re-export of `photon-photonics`).
pub mod photonics {
    pub use photon_photonics::*;
}

/// Datasets and feature extraction (re-export of `photon-data`).
pub mod data {
    pub use photon_data::*;
}

/// Optimizers (re-export of `photon-opt`).
pub mod opt {
    pub use photon_opt::*;
}

/// Chip calibration (re-export of `photon-calib`).
pub mod calib {
    pub use photon_calib::*;
}

/// Training core and experiment harness (re-export of `photon-core`).
pub mod core {
    pub use photon_core::*;
}

/// Parallel evaluation engine (re-export of `photon-exec`).
pub mod exec {
    pub use photon_exec::*;
}

/// Seeded fault injection for chips (re-export of `photon-faults`).
pub mod faults {
    pub use photon_faults::*;
}

/// Structured telemetry (re-export of `photon-trace`).
pub mod trace {
    pub use photon_trace::*;
}

/// Fault-tolerant multi-tenant chip farm (re-export of `photon-farm`).
pub mod farm {
    pub use photon_farm::*;
}

/// Discrete-event serving simulator (re-export of `photon-sim`).
pub mod sim {
    pub use photon_sim::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use photon_calib::{calibrate, calibrate_traced, evaluate_model, CalibrationSettings};
    pub use photon_core::{
        build_task, recovery_report, run_method, trace_summary, ClassificationHead,
        DurableOptions, Method, ModelChoice, RecoveryPolicy, RunJournal, RunOutcome, TaskKind,
        TaskSpec, TrainConfig, Trainer, WatchdogPolicy,
    };
    pub use photon_data::{Dataset, GaussianClusters, SyntheticFashion, SyntheticMnist};
    pub use photon_farm::{
        BreakerPolicy, BrownoutPolicy, ChaosPlan, ChipHealth, Farm, FarmConfig, FarmReport,
        HealthPolicy, HedgePolicy, JobSpec, RejectReason, TenantSpec, WorkerSpec,
    };
    pub use photon_faults::{
        DriftConfig, FaultPlan, FaultyChip, ReplicaChaos, StuckShifter, TransientConfig,
    };
    pub use photon_linalg::{CVector, RVector, C64};
    pub use photon_opt::{Adam, CmaEs, LcngSettings, Optimizer, Perturbation, Sgd, ZoSettings};
    pub use photon_photonics::{
        ideal_model, Architecture, ErrorModel, FabricatedChip, MeshModule, Network, OnnChip,
        OnnModule,
    };
    pub use photon_sim::{
        ArrivalProcess, CostModel, ReplicaSpec, ResilienceReport, ResilientConfig, ServingReport,
        SimConfig, TenantLoad,
    };
    pub use photon_trace::{
        JsonlSink, MemorySink, NullSink, QueryCategory, TeeSink, TraceEvent, TraceHandle,
    };
}
