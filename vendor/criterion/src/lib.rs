//! Offline vendored shim for the subset of the `criterion` benchmarking API
//! used by this workspace.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Timing
//! is a straightforward warm-up + repeated-sample mean/min over
//! `std::time::Instant`, printed in a criterion-like one-line format. It has
//! none of criterion's statistical machinery, but is enough to compare
//! implementations on the same machine and to keep `harness = false` bench
//! targets compiling and runnable offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Create an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time per iteration of the last `iter` call.
    mean: Duration,
    /// Fastest sample of the last `iter` call.
    min: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~10ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(10) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;
        // Size each sample to take roughly 25ms, capped for slow workloads.
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(25).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u64
        };
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t.elapsed();
            let per = elapsed / iters_per_sample as u32;
            total += per;
            min = min.min(per);
        }
        self.mean = total / self.samples as u32;
        self.min = min;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// One timing measurement reported by a finished benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest sample per iteration.
    pub min: Duration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// No-op for CLI-arg compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let m = run_bench(id, self.default_samples, |b| f(b));
        self.measurements.push(m);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: None,
        }
    }

    /// All measurements recorded so far (used by bench post-processing).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) -> Measurement {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
        min: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "{:<50} time: [{} (min {})]",
        id,
        fmt_duration(b.mean),
        fmt_duration(b.min)
    );
    Measurement {
        id: id.to_string(),
        mean: b.mean,
        min: b.min,
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(2));
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        let samples = self.samples.unwrap_or(self.parent.default_samples);
        let m = run_bench(&id, samples, |b| f(b));
        self.parent.measurements.push(m);
        self
    }

    /// Run a benchmark that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        let samples = self.samples.unwrap_or(self.parent.default_samples);
        let m = run_bench(&id, samples, |b| f(b, input));
        self.parent.measurements.push(m);
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_measurement() {
        let mut c = Criterion {
            default_samples: 2,
            measurements: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].mean.as_nanos() > 0);
    }
}
