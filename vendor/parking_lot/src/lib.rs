//! Offline vendored shim for the subset of `parking_lot` used by this
//! workspace: `Mutex` and `RwLock` with panic-free (non-poisoning) guards.
//!
//! Backed by `std::sync` primitives; a poisoned lock is recovered instead of
//! propagated, which matches parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive. `lock()` returns the guard directly (no
/// `Result`), matching the parking_lot API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
