//! Offline vendored shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` crate cannot be fetched. This shim provides API-compatible
//! replacements for the pieces the workspace actually uses:
//!
//! - [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`)
//! - [`distributions::Standard`] / [`distributions::Distribution`]
//! - [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`
//!
//! The numeric streams differ from upstream `rand`, but every consumer in this
//! repository only relies on determinism for a fixed seed, never on matching
//! upstream streams.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open integer or float range).
    fn gen_range<T, U>(&mut self, range: U) -> T
    where
        U: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Sample a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(0..10);
            assert!((0..10).contains(&v));
        }
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
