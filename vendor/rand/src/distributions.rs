//! Distributions and range sampling.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value from the distribution using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over the natural domain of the type
/// (`[0, 1)` for floats, the full range for integers, fair coin for `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u64() >> 63) == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that knows how to sample a single uniform value from itself.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping; bias is < 2^-64
                // per draw, far below anything the workspace can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f32 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}
