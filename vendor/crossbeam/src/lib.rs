//! Offline vendored shim for the subset of `crossbeam` used by this
//! workspace: `crossbeam::thread::scope` for structured (scoped) threads.
//!
//! Backed by `std::thread::scope`, which provides the same guarantee that all
//! spawned threads join before the scope returns, so borrowed (non-`'static`)
//! data can be shared with workers.

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads.

    use std::marker::PhantomData;

    /// A scope handle passed to the closure given to [`scope`]. Threads
    /// spawned through it may borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// handle again so it can spawn nested workers, mirroring the
        /// crossbeam signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Create a scope for spawning borrowing threads. All threads spawned in
    /// the scope are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope`, the crossbeam API returns a
    /// `thread::Result` capturing panics from unjoined children; with the std
    /// backend a panicking unjoined child propagates its panic at scope exit
    /// instead, so this shim returns `Ok` whenever it returns at all. All
    /// call sites in this workspace join their handles explicitly.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            f(Scope {
                inner: s,
                _marker: PhantomData,
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
