//! Glob-import surface matching `proptest::prelude::*`.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
    Strategy, Union,
};
