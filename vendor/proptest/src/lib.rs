//! Offline vendored shim for the subset of the `proptest` API used by this
//! workspace's property tests.
//!
//! Strategies here are plain samplers: each test case draws fresh values from
//! a deterministic per-test RNG (seeded from a hash of the test name). There
//! is no shrinking and no persistence of failing cases — a failure panics
//! with the generated values still derivable from the fixed seed, which keeps
//! failures reproducible. The macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`), the combinators (`prop_map`,
//! `prop_flat_map`, `Just`, `any`, ranges, tuples, `collection::vec`) and
//! `ProptestConfig::with_cases` match the upstream API closely enough that
//! the existing test files compile unchanged.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

pub mod collection;
pub mod prelude;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-discarded) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated test case (used by the `proptest!` macro).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOutcome {
    /// The case ran to completion.
    Pass,
    /// The case was discarded by `prop_assume!`.
    Discard,
}

/// A value generator. Unlike upstream proptest there is no value tree or
/// shrinking: a strategy simply samples values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.base.sample_value(rng)).sample_value(rng)
    }
}

/// Strategy that always produces a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample_value(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy choosing uniformly among boxed alternatives. Built by the
/// [`prop_oneof!`] macro; unlike upstream there are no per-branch weights —
/// every alternative is equally likely.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`. Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> core::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample_value(rng)
    }
}

/// Pick uniformly among several strategies producing the same value type
/// (upstream `prop_oneof!` without per-branch weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait ArbitraryValue: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_value(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, ...).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// FNV-1a hash of the test name, used to derive a deterministic per-test
/// RNG seed.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run the body of one generated test case, mirroring the `proptest!` macro.
///
/// Exposed so the macro expansion stays small; not part of the upstream API.
pub fn run_property_test<G: FnMut(&mut StdRng) -> TestOutcome>(
    name: &str,
    config: &ProptestConfig,
    mut case: G,
) {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed_for_test(name) ^ 0x70f7_e57a_5eed_0001);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(16).max(64);
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest '{name}': too many discarded cases ({passed}/{} passed after {attempts} attempts)",
            config.cases
        );
        if case(&mut rng) == TestOutcome::Pass {
            passed += 1;
        }
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }` block
/// becomes a `#[test]` (the attribute is written at the call site) that runs
/// `cases` sampled instantiations of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property_test(stringify!($name), &config, |proptest_case_rng| {
                $(let $arg = $crate::Strategy::sample_value(&($strategy), proptest_case_rng);)*
                $body
                $crate::TestOutcome::Pass
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestOutcome::Discard;
        }
    };
}
