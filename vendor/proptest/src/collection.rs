//! Collection strategies (`vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Size specification for [`vec`]: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub enum SizeRange {
    /// Exactly this many elements.
    Fixed(usize),
    /// Uniformly drawn length in `[start, end)`.
    Range(core::ops::Range<usize>),
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Fixed(n)
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange::Range(r)
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = match &self.size {
            SizeRange::Fixed(n) => *n,
            SizeRange::Range(r) => rng.gen_range(r.clone()),
        };
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// comes from `size` (a `usize` or `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
