//! Integration tests of the extension features: measurement noise in the
//! training loop, and checkpoint-based resume.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{
    build_task, evaluate_chip, Checkpoint, ClassificationHead, Method, TaskSpec, TrainConfig,
    Trainer,
};
use photon_zo::data::GaussianClusters;
use photon_zo::photonics::{Architecture, ErrorModel, FabricatedChip, MeasurementNoise};

#[test]
fn zo_training_survives_measurement_noise() {
    let k = 4;
    let mut rng = StdRng::seed_from_u64(1000);
    let arch = Architecture::single_mesh(k, k).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng)
        .with_measurement_noise(MeasurementNoise::realistic(), 7);

    let data = GaussianClusters::new(k, 4, 0.15)
        .generate(160, &mut rng)
        .unwrap();
    let (train, test) = data.split(0.75, &mut rng);
    let head = ClassificationHead::new(k, 4, 10.0).unwrap();
    let trainer = Trainer::new(&chip, &train, &test, head);

    let mut config = TrainConfig::quick(k);
    config.epochs = 10;
    // Under readout noise the default μ = 1e-3/√N is noise-dominated; a
    // larger smoothing step restores signal in the quotients.
    config.mu_override = Some(0.05);
    let theta0 = trainer.warm_start(&config, &mut rng);
    let before = evaluate_chip(&chip, &test, trainer.head(), &theta0);
    let mut theta = theta0;
    let out = trainer
        .finetune(Method::ZoGaussian, &config, &mut theta, &mut rng)
        .unwrap();
    // Noisy quotients still descend on average.
    assert!(
        out.final_eval.loss < before.loss,
        "noisy ZO should still improve: {} !< {}",
        out.final_eval.loss,
        before.loss
    );
}

#[test]
fn field_noise_perturbs_loss_but_not_query_accounting() {
    let k = 4;
    let mut rng = StdRng::seed_from_u64(1100);
    let arch = Architecture::single_mesh(k, 2).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng)
        .with_measurement_noise(
            MeasurementNoise {
                shot: 0.05,
                floor: 1e-3,
                field: 0.02,
            },
            3,
        );
    let theta = chip.init_params(&mut rng);
    let x = photon_zo::prelude::CVector::basis(k, 0);
    let a = chip.forward_powers(&x, &theta);
    let b = chip.forward_powers(&x, &theta);
    assert!((&a - &b).max_abs() > 0.0, "readout noise must be fresh");
    assert_eq!(chip.query_count(), 2);
}

#[test]
fn checkpoint_roundtrip_resumes_training_identically() {
    let spec = TaskSpec::quick(4);
    let task = build_task(&spec, 1200).unwrap();
    let mut rng = StdRng::seed_from_u64(1201);
    let mut config = TrainConfig::quick(4);
    config.epochs = 3;

    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let theta = trainer.warm_start(&config, &mut rng);

    // Persist architecture + theta + oracle errors, reload, rebuild.
    let ckpt = Checkpoint::new(
        task.chip.architecture().clone(),
        theta.clone(),
        Some(task.chip.oracle_errors()),
    );
    let dir = std::env::temp_dir().join("photon_zo_it_ckpt");
    let path = dir.join("resume.ckpt");
    ckpt.save(&path).unwrap();
    let restored = Checkpoint::load(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // The restored chip replica behaves identically to the original.
    let replica =
        FabricatedChip::with_errors(&restored.architecture, restored.errors.as_ref().unwrap())
            .unwrap();
    let x = task.train.inputs()[0].clone();
    let y_orig = task.chip.forward(&x, &theta);
    let y_replica = replica.forward(&x, &restored.theta);
    // Errors roundtrip through polar form, so expect fp-rounding agreement
    // rather than bit equality.
    assert!((&y_orig - &y_replica).max_abs() < 1e-12);

    // Fine-tuning from the restored theta with the same seed gives the
    // same trajectory on the replica as on the original chip.
    let trainer_replica = Trainer::new(&replica, &task.train, &task.test, task.head);
    let mut ta = restored.theta.clone();
    let mut tb = theta.clone();
    let mut rng_a = StdRng::seed_from_u64(1202);
    let mut rng_b = StdRng::seed_from_u64(1202);
    let out_a = trainer_replica
        .finetune(Method::ZoGaussian, &config, &mut ta, &mut rng_a)
        .unwrap();
    let out_b = trainer
        .finetune(Method::ZoGaussian, &config, &mut tb, &mut rng_b)
        .unwrap();
    assert_eq!(out_a.final_eval.accuracy, out_b.final_eval.accuracy);
    let la: Vec<f64> = out_a.history.iter().map(|h| h.train_loss).collect();
    let lb: Vec<f64> = out_b.history.iter().map(|h| h.train_loss).collect();
    for (a, b) in la.iter().zip(&lb) {
        assert!(
            (a - b).abs() < 1e-9,
            "replica must reproduce the training trajectory: {la:?} vs {lb:?}"
        );
    }
}

/// Fuzz-ish robustness properties of the persistence formats: random
/// checkpoints round-trip exactly (including non-finite parameter values),
/// and any corruption — truncation, flipped bytes, unknown versions,
/// duplicated sections, torn journal tails — is rejected or repaired, never
/// a panic.
mod persistence_properties {
    use std::sync::OnceLock;

    use proptest::prelude::*;

    use photon_zo::core::{
        build_task, crc32, Checkpoint, DurableOptions, Method, RunJournal, TaskSpec, TrainConfig,
        Trainer,
    };
    use photon_zo::linalg::RVector;
    use photon_zo::photonics::{Architecture, ErrorVector};

    fn arb_architecture() -> impl Strategy<Value = Architecture> {
        (2usize..6, 1usize..3, 0usize..3, 0.01..0.95f64, 0.5..4.0f64).prop_map(
            |(dim, layers, shape, alpha, gain)| match shape {
                0 => Architecture::single_mesh(dim, layers).unwrap(),
                1 => Architecture::two_mesh_classifier(dim, layers).unwrap(),
                _ => Architecture::two_mesh_eo_classifier(dim, layers, alpha, gain).unwrap(),
            },
        )
    }

    /// Parameter values including the ones plain-text formats get wrong:
    /// NaN, infinities, signed zero, subnormal-scale magnitudes.
    fn arb_value() -> impl Strategy<Value = f64> {
        (0u32..13, -10.0..10.0f64).prop_map(|(kind, finite)| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => 1.0e-308,
            _ => finite,
        })
    }

    fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
        (arb_architecture(), any::<bool>()).prop_flat_map(|(arch, with_errors)| {
            let n_theta = arch.param_count();
            let (n_bs, n_ps) = arch.error_slots();
            let n_flat = if with_errors { n_bs + 2 * n_ps } else { 0 };
            (
                Just(arch),
                proptest::collection::vec(arb_value(), n_theta),
                proptest::collection::vec(-0.5..0.5f64, n_flat),
            )
        })
        .prop_map(|(arch, theta, flat)| {
            let (n_bs, n_ps) = arch.error_slots();
            let errors = (!flat.is_empty())
                .then(|| ErrorVector::from_flat(n_bs, n_ps, &flat).unwrap());
            Checkpoint::new(arch, RVector::from_vec(theta), errors)
        })
    }

    fn theta_bits(c: &Checkpoint) -> Vec<u64> {
        c.theta.iter().map(|x| x.to_bits()).collect()
    }

    /// Byte length of the checksummed body (everything before the trailing
    /// `checksum` line): a flip anywhere in it must trip the CRC.
    fn body_len(text: &str) -> usize {
        text.rfind("checksum ").expect("v2 text has a checksum line")
    }

    /// Re-seals a tampered body under a *valid* checksum, so the test
    /// exercises the structural parser, not just the CRC gate.
    fn reseal(body: &str) -> String {
        format!("{body}checksum {:08x}", crc32(body.as_bytes()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Save → load is exact for any architecture and any theta,
        /// including NaN / ±inf / -0.0 entries (compared as bit patterns:
        /// NaN breaks `PartialEq`, not the format).
        #[test]
        fn checkpoint_roundtrips_random_arch_and_theta(ckpt in arb_checkpoint()) {
            let text = ckpt.to_string();
            let back: Checkpoint = text.parse().expect("own output must parse");
            prop_assert_eq!(theta_bits(&back), theta_bits(&ckpt));
            prop_assert_eq!(back.architecture.specs(), ckpt.architecture.specs());
            prop_assert_eq!(back.errors.is_some(), ckpt.errors.is_some());
            // The re-serialization is byte-identical, so equality holds at
            // the representation level even where float semantics cannot.
            prop_assert_eq!(back.to_string(), text);
        }

        /// A file truncated at ANY byte is rejected with a parse error.
        #[test]
        fn truncated_checkpoint_is_rejected(
            ckpt in arb_checkpoint(),
            cut_frac in 0.0..1.0f64,
        ) {
            let text = ckpt.to_string();
            let cut = ((text.len() as f64) * cut_frac) as usize;
            prop_assume!(cut < text.len());
            prop_assert!(text[..cut].parse::<Checkpoint>().is_err());
        }

        /// Any single-byte corruption of the checksummed body is caught.
        #[test]
        fn flipped_body_byte_is_rejected(
            ckpt in arb_checkpoint(),
            idx_frac in 0.0..1.0f64,
            mask in 1u32..0x60,
        ) {
            let text = ckpt.to_string();
            let limit = body_len(&text);
            let idx = ((limit as f64) * idx_frac) as usize;
            prop_assume!(idx < limit);
            let mut bytes = text.into_bytes();
            bytes[idx] ^= mask as u8;
            prop_assume!(bytes[idx].is_ascii());
            let corrupted = String::from_utf8(bytes).unwrap();
            prop_assert!(corrupted.parse::<Checkpoint>().is_err());
        }

        /// A file claiming a future format version is rejected up front,
        /// even when its checksum is internally consistent.
        #[test]
        fn unknown_version_is_rejected(ckpt in arb_checkpoint()) {
            let text = ckpt.to_string();
            let body = text[..body_len(&text)]
                .replacen("photon-zo-checkpoint v2", "photon-zo-checkpoint v9", 1);
            let err = reseal(&body).parse::<Checkpoint>().unwrap_err();
            prop_assert!(err.to_string().contains("unsupported"), "got: {err}");
        }

        /// Duplicated sections are structural corruption: rejected even
        /// under a recomputed (valid) checksum.
        #[test]
        fn duplicated_section_is_rejected(ckpt in arb_checkpoint()) {
            let text = ckpt.to_string();
            let body = &text[..body_len(&text)];
            let doubled = format!("{body}errors none\n");
            prop_assert!(reseal(&doubled).parse::<Checkpoint>().is_err());
        }
    }

    #[test]
    fn flipped_checksum_digit_is_rejected() {
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let theta = RVector::zeros(arch.param_count());
        let ckpt = Checkpoint::new(arch, theta, None);
        let text = ckpt.to_string();
        let tail = text.len() - 2; // last hex digit of the checksum line
        let mut bytes = text.clone().into_bytes();
        bytes[tail] = if bytes[tail] == b'0' { b'1' } else { b'0' };
        let corrupted = String::from_utf8(bytes).unwrap();
        assert_ne!(corrupted, text);
        let err = corrupted.parse::<Checkpoint>().unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn truncated_checkpoint_file_is_rejected_via_load() {
        let dir = std::env::temp_dir().join(format!(
            "photon-ckpt-truncated-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let theta = RVector::zeros(arch.param_count());
        let ckpt = Checkpoint::new(arch, theta, None);
        let path = dir.join("ckpt.txt");
        ckpt.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bytes of a real two-epoch durable-run journal, produced once and
    /// shared by the torn-tail properties below.
    fn journal_fixture() -> &'static [u8] {
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        BYTES.get_or_init(|| {
            let dir = std::env::temp_dir().join(format!(
                "photon-journal-fixture-{}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let task = build_task(&TaskSpec::quick(4), 11).unwrap();
            let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
            let mut config = TrainConfig::quick(4);
            config.epochs = 2;
            config.threads = Some(1);
            let path = dir.join("fixture.journal");
            trainer
                .train_durable(Method::ZoGaussian, &config, &DurableOptions::new(&path, 3))
                .unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            bytes
        })
    }

    fn replay_mutated(bytes: &[u8], tag: &str) -> Result<usize, String> {
        let path = std::env::temp_dir().join(format!(
            "photon-journal-mutated-{}-{tag}.journal",
            std::process::id()
        ));
        std::fs::write(&path, bytes).unwrap();
        let result = RunJournal::replay(&path)
            .map(|replay| {
                // Intact records must be an in-order epoch prefix, and the
                // repair must converge: a second replay sees a clean file.
                let epochs: Vec<usize> = replay.entries.iter().map(|e| e.state.epoch).collect();
                assert_eq!(epochs, (1..=epochs.len()).collect::<Vec<_>>());
                let again = RunJournal::replay(&path).unwrap();
                assert_eq!(again.truncated_bytes, 0);
                assert_eq!(again.entries.len(), replay.entries.len());
                replay.entries.len()
            })
            .map_err(|e| e.to_string());
        let _ = std::fs::remove_file(&path);
        result
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A journal killed at ANY byte replays to an in-order prefix of
        /// intact records (or a clean parse error inside the header) and is
        /// repaired idempotently — never a panic.
        #[test]
        fn journal_replay_survives_any_truncation(cut_frac in 0.0..1.0f64) {
            let bytes = journal_fixture();
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            prop_assume!(cut < bytes.len());
            let _ = replay_mutated(&bytes[..cut], &format!("cut{cut}"));
        }

        /// A flipped byte anywhere in the journal never panics replay: the
        /// damage is either truncated away (torn tail) or rejected.
        #[test]
        fn journal_replay_survives_any_flipped_byte(
            idx_frac in 0.0..1.0f64,
            mask in 1u32..256,
        ) {
            let bytes = journal_fixture();
            let idx = ((bytes.len() as f64) * idx_frac) as usize;
            prop_assume!(idx < bytes.len());
            let mut mutated = bytes.to_vec();
            mutated[idx] ^= mask as u8;
            let _ = replay_mutated(&mutated, &format!("flip{idx}-{mask}"));
        }
    }

    #[test]
    fn journal_with_bad_magic_is_rejected() {
        let path = std::env::temp_dir().join(format!(
            "photon-journal-bad-magic-{}.journal",
            std::process::id()
        ));
        std::fs::write(&path, b"not a journal at all\n").unwrap();
        assert!(RunJournal::replay(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
