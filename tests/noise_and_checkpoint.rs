//! Integration tests of the extension features: measurement noise in the
//! training loop, and checkpoint-based resume.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{
    build_task, evaluate_chip, Checkpoint, ClassificationHead, Method, TaskSpec, TrainConfig,
    Trainer,
};
use photon_zo::data::GaussianClusters;
use photon_zo::photonics::{Architecture, ErrorModel, FabricatedChip, MeasurementNoise};

#[test]
fn zo_training_survives_measurement_noise() {
    let k = 4;
    let mut rng = StdRng::seed_from_u64(1000);
    let arch = Architecture::single_mesh(k, k).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng)
        .with_measurement_noise(MeasurementNoise::realistic(), 7);

    let data = GaussianClusters::new(k, 4, 0.15)
        .generate(160, &mut rng)
        .unwrap();
    let (train, test) = data.split(0.75, &mut rng);
    let head = ClassificationHead::new(k, 4, 10.0).unwrap();
    let trainer = Trainer::new(&chip, &train, &test, head);

    let mut config = TrainConfig::quick(k);
    config.epochs = 10;
    // Under readout noise the default μ = 1e-3/√N is noise-dominated; a
    // larger smoothing step restores signal in the quotients.
    config.mu_override = Some(0.05);
    let theta0 = trainer.warm_start(&config, &mut rng);
    let before = evaluate_chip(&chip, &test, trainer.head(), &theta0);
    let mut theta = theta0;
    let out = trainer
        .finetune(Method::ZoGaussian, &config, &mut theta, &mut rng)
        .unwrap();
    // Noisy quotients still descend on average.
    assert!(
        out.final_eval.loss < before.loss,
        "noisy ZO should still improve: {} !< {}",
        out.final_eval.loss,
        before.loss
    );
}

#[test]
fn field_noise_perturbs_loss_but_not_query_accounting() {
    let k = 4;
    let mut rng = StdRng::seed_from_u64(1100);
    let arch = Architecture::single_mesh(k, 2).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng)
        .with_measurement_noise(
            MeasurementNoise {
                shot: 0.05,
                floor: 1e-3,
                field: 0.02,
            },
            3,
        );
    let theta = chip.init_params(&mut rng);
    let x = photon_zo::prelude::CVector::basis(k, 0);
    let a = chip.forward_powers(&x, &theta);
    let b = chip.forward_powers(&x, &theta);
    assert!((&a - &b).max_abs() > 0.0, "readout noise must be fresh");
    assert_eq!(chip.query_count(), 2);
}

#[test]
fn checkpoint_roundtrip_resumes_training_identically() {
    let spec = TaskSpec::quick(4);
    let task = build_task(&spec, 1200).unwrap();
    let mut rng = StdRng::seed_from_u64(1201);
    let mut config = TrainConfig::quick(4);
    config.epochs = 3;

    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let theta = trainer.warm_start(&config, &mut rng);

    // Persist architecture + theta + oracle errors, reload, rebuild.
    let ckpt = Checkpoint::new(
        task.chip.architecture().clone(),
        theta.clone(),
        Some(task.chip.oracle_errors()),
    );
    let dir = std::env::temp_dir().join("photon_zo_it_ckpt");
    let path = dir.join("resume.ckpt");
    ckpt.save(&path).unwrap();
    let restored = Checkpoint::load(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // The restored chip replica behaves identically to the original.
    let replica =
        FabricatedChip::with_errors(&restored.architecture, restored.errors.as_ref().unwrap())
            .unwrap();
    let x = task.train.inputs()[0].clone();
    let y_orig = task.chip.forward(&x, &theta);
    let y_replica = replica.forward(&x, &restored.theta);
    // Errors roundtrip through polar form, so expect fp-rounding agreement
    // rather than bit equality.
    assert!((&y_orig - &y_replica).max_abs() < 1e-12);

    // Fine-tuning from the restored theta with the same seed gives the
    // same trajectory on the replica as on the original chip.
    let trainer_replica = Trainer::new(&replica, &task.train, &task.test, task.head);
    let mut ta = restored.theta.clone();
    let mut tb = theta.clone();
    let mut rng_a = StdRng::seed_from_u64(1202);
    let mut rng_b = StdRng::seed_from_u64(1202);
    let out_a = trainer_replica
        .finetune(Method::ZoGaussian, &config, &mut ta, &mut rng_a)
        .unwrap();
    let out_b = trainer
        .finetune(Method::ZoGaussian, &config, &mut tb, &mut rng_b)
        .unwrap();
    assert_eq!(out_a.final_eval.accuracy, out_b.final_eval.accuracy);
    let la: Vec<f64> = out_a.history.iter().map(|h| h.train_loss).collect();
    let lb: Vec<f64> = out_b.history.iter().map(|h| h.train_loss).collect();
    for (a, b) in la.iter().zip(&lb) {
        assert!(
            (a - b).abs() < 1e-9,
            "replica must reproduce the training trajectory: {la:?} vs {lb:?}"
        );
    }
}
