//! Property tests for the compiled-unitary execution path: a compiled
//! dense matrix (and the batched GEMM evaluation built on it) must agree
//! with the interpreted op-by-op walk to ≤1e-12 across mesh topologies,
//! fabrication errors, and parameter settings, and the theta-keyed plan
//! cache must invalidate exactly when the parameters change.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::linalg::random::{normal_cvector, normal_rvector};
use photon_zo::linalg::{CMatrix, CVector};
use photon_zo::photonics::{
    Architecture, BatchScratch, ChipScratch, CompiledNetwork, ErrorCursor, ErrorModel,
    ErrorVector, FabricatedChip, MeshModule, ModuleSpec, NetworkScratch, OnnModule,
};

/// The mesh topologies the compiled path must reproduce.
fn mesh(kind: usize, dim: usize) -> MeshModule {
    match kind {
        0 => MeshModule::clements(dim, dim),
        1 => MeshModule::clements(dim, (dim / 2).max(1)),
        2 => MeshModule::reck(dim),
        _ => MeshModule::phase_diag(dim),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_module_matrix_matches_op_walk(
        kind in 0usize..4,
        dim in 2usize..7,
        beta in 0.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let module = mesh(kind, dim);
        let (n_bs, n_ps) = module.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(beta), &mut rng);
        let noisy = module.with_errors(&mut ErrorCursor::new(&ev)).unwrap();
        let theta = normal_rvector(noisy.param_count(), &mut rng);
        let compiled = noisy
            .compile_matrix(theta.as_slice())
            .expect("meshes are compilable");
        let mut reference = CMatrix::zeros(dim, dim);
        for k in 0..dim {
            let y = noisy.forward(&CVector::basis(dim, k), theta.as_slice());
            reference.set_col(k, &y);
        }
        prop_assert!(
            (&compiled - &reference).max_abs() < 1e-12,
            "{} compiled matrix diverges from op walk",
            noisy.name()
        );
    }

    #[test]
    fn compiled_network_batch_matches_interpreted(
        arch_kind in 0usize..3,
        dim in 2usize..6,
        batch in 1usize..6,
        beta in 0.0f64..2.5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = match arch_kind {
            0 => Architecture::single_mesh(dim, dim).unwrap(),
            1 => Architecture::two_mesh_classifier(dim, dim).unwrap(),
            _ => Architecture::new(vec![
                ModuleSpec::Reck { dim },
                ModuleSpec::PhaseDiag { dim },
            ])
            .unwrap(),
        };
        let (n_bs, n_ps) = arch.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(beta), &mut rng);
        let net = arch.build_with_errors(&ev).unwrap();
        let theta = net.init_params(&mut rng);
        let xs: Vec<CVector> = (0..batch).map(|_| normal_cvector(dim, &mut rng)).collect();
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut plan = CompiledNetwork::new();
        let panel = plan.forward_batch(&net, &theta, &refs);
        let mut scratch = NetworkScratch::new();
        for (j, x) in xs.iter().enumerate() {
            let want = net.forward_into(x, &theta, &mut scratch);
            for k in 0..want.len() {
                prop_assert!(
                    (panel.col(j)[k] - want[k]).abs() < 1e-12,
                    "sample {} port {} diverges",
                    j,
                    k
                );
            }
        }
    }

    #[test]
    fn chip_batched_forward_matches_per_sample(
        dim in 2usize..6,
        batch in 1usize..6,
        beta in 0.0f64..2.5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(dim, dim).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(beta), &mut rng);
        let theta = chip.init_params(&mut rng);
        let xs: Vec<CVector> = (0..batch).map(|_| normal_cvector(dim, &mut rng)).collect();
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut scratch = BatchScratch::new();
        let ys: Vec<CVector> = chip
            .forward_batch_into(&refs, &theta, &mut scratch)
            .to_vec();
        let mut single = ChipScratch::new();
        for (j, x) in xs.iter().enumerate() {
            let want = chip.forward_into(x, &theta, &mut single);
            for k in 0..want.len() {
                prop_assert!(
                    (ys[j][k] - want[k]).abs() < 1e-12,
                    "sample {} port {} diverges",
                    j,
                    k
                );
            }
        }
    }

    #[test]
    fn generation_tracks_theta_changes(
        dim in 2usize..6,
        coord_seed in any::<u64>(),
        delta in -1e-3f64..1e-3,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Architecture::single_mesh(dim, dim).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs: Vec<CVector> = (0..3).map(|_| normal_cvector(dim, &mut rng)).collect();
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut plan = CompiledNetwork::new();
        plan.forward_batch(&net, &theta, &refs);
        prop_assert_eq!(plan.generation(), 1, "first use compiles once");
        plan.forward_batch(&net, &theta, &refs);
        prop_assert_eq!(plan.generation(), 1, "unchanged theta hits the cache");

        let mut theta2 = theta.clone();
        let k = (coord_seed as usize) % theta2.len();
        theta2[k] += delta;
        plan.forward_batch(&net, &theta2, &refs);
        let expected = if theta2.as_slice() == theta.as_slice() { 1 } else { 2 };
        prop_assert_eq!(
            plan.generation(),
            expected,
            "plan must recompile exactly when theta changes"
        );

        // The recompiled plan still matches the interpreted forward.
        let panel = plan.forward_batch(&net, &theta2, &refs);
        let mut scratch = NetworkScratch::new();
        for (j, x) in xs.iter().enumerate() {
            let want = net.forward_into(x, &theta2, &mut scratch);
            for p in 0..want.len() {
                prop_assert!((panel.col(j)[p] - want[p]).abs() < 1e-12);
            }
        }
    }
}
