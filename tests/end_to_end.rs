//! Workspace integration tests: the full pipeline from fabrication through
//! calibration to black-box training, crossing every crate boundary.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::calib::{calibrate, evaluate_model, CalibrationSettings, LmSettings};
use photon_zo::core::{
    build_task, evaluate_chip, mann_whitney_u, Method, ModelChoice, TaskKind, TaskSpec,
    TrainConfig, Trainer,
};
use photon_zo::photonics::ideal_model;
use photon_zo::prelude::*;

fn quick_config(k: usize, epochs: usize) -> TrainConfig {
    let mut c = TrainConfig::quick(k);
    c.epochs = epochs;
    c
}

#[test]
fn all_black_box_methods_run_end_to_end() {
    let spec = TaskSpec::quick(4);
    let task = build_task(&spec, 100).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(task.chip.oracle_network());
    let config = quick_config(4, 2);
    for method in [
        Method::ZoGaussian,
        Method::ZoCoordinate,
        Method::ZoLc,
        Method::ZoNg {
            model: ModelChoice::Ideal,
        },
        Method::ZoShaped {
            model: ModelChoice::Ideal,
        },
        Method::Lcng {
            model: ModelChoice::Calibrated,
        },
        Method::Cma { sigma0: 0.3 },
        Method::BpIdeal,
        Method::BpCalibrated,
        Method::BpOracle,
    ] {
        let mut rng = StdRng::seed_from_u64(200);
        let out = trainer
            .train(method, &config, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", method.label()));
        assert!(
            out.final_eval.accuracy.is_finite() && out.final_eval.loss.is_finite(),
            "{} produced non-finite metrics",
            method.label()
        );
        assert_eq!(out.history.len(), 2);
    }
}

#[test]
fn zo_training_improves_over_warm_start_on_chip() {
    let spec = TaskSpec {
        train_size: 160,
        test_size: 80,
        ..TaskSpec::quick(4)
    };
    let task = build_task(&spec, 300).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let config = quick_config(4, 10);
    let mut rng = StdRng::seed_from_u64(301);

    // Evaluate right after warm start (theta from stage 1 only).
    let theta0 = trainer.warm_start(&config, &mut rng);
    let before = evaluate_chip(&task.chip, &task.test, trainer.head(), &theta0);

    // Stage 2 with vanilla ZO from the same warm start.
    let mut theta = theta0;
    let out = trainer
        .finetune(Method::ZoGaussian, &config, &mut theta, &mut rng)
        .unwrap();
    assert!(
        out.final_eval.loss < before.loss,
        "ZO fine-tune should reduce chip loss: {} !< {}",
        out.final_eval.loss,
        before.loss
    );
}

#[test]
fn calibrated_model_is_closer_to_chip_than_ideal() {
    let spec = TaskSpec {
        beta: 3.0,
        ..TaskSpec::quick(4)
    };
    let task = build_task(&spec, 400).unwrap();
    let mut rng = StdRng::seed_from_u64(401);
    let settings = CalibrationSettings {
        random_inputs: 8,
        num_settings: 3,
        lm: LmSettings {
            max_iters: 10,
            ..LmSettings::default()
        },
        ..CalibrationSettings::default()
    };
    let outcome = calibrate(&task.chip, &settings, &mut rng).unwrap();
    let fid_cal = evaluate_model(&task.chip, &outcome.model, 12, 3, &mut rng);
    let ideal = ideal_model(task.chip.architecture());
    let fid_ideal = evaluate_model(&task.chip, &ideal, 12, 3, &mut rng);
    assert!(
        fid_cal.power > fid_ideal.power,
        "calibration should help: {} !> {}",
        fid_cal.power,
        fid_ideal.power
    );
}

#[test]
fn query_accounting_is_consistent_across_stack() {
    let spec = TaskSpec::quick(4);
    let task = build_task(&spec, 500).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let config = quick_config(4, 2);
    let mut rng = StdRng::seed_from_u64(501);

    let before_total = task.chip.query_count();
    let out = trainer
        .train(Method::ZoGaussian, &config, &mut rng)
        .unwrap();
    let after_total = task.chip.query_count();

    // Training queries + final evaluation sweep = total new queries.
    let eval_cost = task.test.len() as u64;
    assert_eq!(
        after_total - before_total,
        out.training_queries + eval_cost,
        "query bookkeeping must balance"
    );
    // Each ZO iteration costs (1 + Q)·B queries.
    let batches_per_epoch = task.train.len().div_ceil(config.batch_size) as u64;
    let per_iter = (1 + config.q as u64) * config.batch_size as u64;
    // Last batch may be short, so bound rather than equate.
    assert!(out.training_queries <= per_iter * batches_per_epoch * config.epochs as u64);
    assert!(out.training_queries >= per_iter * (batches_per_epoch - 1).max(1));
}

#[test]
fn lcng_beats_vanilla_zo_at_equal_query_budget_on_average() {
    // The headline claim, at miniature scale: over several seeds, final
    // training loss of LCNG (oracle metric) is stochastically lower than
    // vanilla ZO with the same Q, B and epochs.
    let spec = TaskSpec {
        train_size: 120,
        test_size: 60,
        ..TaskSpec::quick(4)
    };
    let config = quick_config(4, 8);
    let mut lcng_losses = Vec::new();
    let mut zo_losses = Vec::new();
    for seed in 0..5u64 {
        let task = build_task(&spec, 600 + seed).unwrap();
        let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
        let mut rng_a = StdRng::seed_from_u64(700 + seed);
        let lcng = trainer
            .train(
                Method::Lcng {
                    model: ModelChoice::OracleTrue,
                },
                &config,
                &mut rng_a,
            )
            .unwrap();
        let mut rng_b = StdRng::seed_from_u64(700 + seed);
        let zo = trainer
            .train(Method::ZoGaussian, &config, &mut rng_b)
            .unwrap();
        lcng_losses.push(lcng.final_eval.loss);
        zo_losses.push(zo.final_eval.loss);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&lcng_losses) < mean(&zo_losses),
        "LCNG {:?} should beat ZO {:?} on average",
        lcng_losses,
        zo_losses
    );
}

#[test]
fn statistics_integrate_with_training_outcomes() {
    // Use the U test machinery on two artificial result sets shaped like
    // the table pipeline produces.
    let a = [0.80, 0.81, 0.79, 0.82, 0.80, 0.81, 0.83, 0.80];
    let b = [0.70, 0.71, 0.69, 0.72, 0.70, 0.71, 0.73, 0.70];
    let t = mann_whitney_u(&a, &b);
    assert_eq!(t.annotation(), "***");
}

#[test]
fn image_pipeline_end_to_end_smoke() {
    let spec = TaskSpec {
        train_size: 60,
        test_size: 30,
        ..TaskSpec::image(TaskKind::FashionLike, 12)
    };
    let task = build_task(&spec, 800).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let mut config = quick_config(12, 2);
    config.batch_size = 20;
    let mut rng = StdRng::seed_from_u64(801);
    let out = trainer
        .train(Method::ZoGaussian, &config, &mut rng)
        .unwrap();
    assert!(out.final_eval.accuracy >= 0.0 && out.final_eval.accuracy <= 1.0);
    // 10-class readout on a 12-port chip.
    assert_eq!(task.train.num_classes(), 10);
}

#[test]
fn prelude_exposes_the_public_surface() {
    // Compile-time check that the facade re-exports fit together.
    let mut rng = StdRng::seed_from_u64(900);
    let arch = Architecture::single_mesh(4, 2).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    let x = CVector::basis(4, 0);
    let y = chip.forward(&x, &theta);
    assert_eq!(y.len(), 4);
    let mut adam = Adam::new(0.1);
    let mut t = RVector::zeros(3);
    adam.step(&mut t, &RVector::from_slice(&[1.0, 2.0, 3.0]));
    assert!(t[0] < 0.0);
    let _ = C64::I;
    let _ = Sgd::new(0.1);
}
