//! Fault-injection integration tests: the seeded fault layer (`photon-faults`)
//! driving the self-healing trainer end to end — retry, outlier rejection,
//! divergence rollback and auto-recalibration — with bitwise reproducibility
//! across worker-pool sizes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{
    build_task, chip_batch_loss_pooled, recovery_report, Method, ModelChoice, RecoveryPolicy,
    TaskSpec, TrainConfig, TrainOutcome, Trainer,
};
use photon_zo::exec::ExecPool;
use photon_zo::faults::{DriftConfig, FaultPlan, FaultyChip, StuckShifter, TransientConfig};
use photon_zo::photonics::OnnChip;

/// The acceptance-scenario fault schedule: slow thermal drift, occasional
/// dropped reads and outlier spikes, plus one dead phase shifter.
fn healing_plan() -> FaultPlan {
    FaultPlan::new(42)
        .with_drift(DriftConfig {
            sigma: 0.04,
            tau: 20.0,
        })
        .with_transients(TransientConfig {
            drop_prob: 0.004,
            spike_prob: 0.01,
            spike_scale: 1e4,
            burst_prob: 0.0,
            burst_sigma: 0.0,
        })
        .with_stuck(StuckShifter {
            index: 3,
            value: 0.4,
        })
}

fn healing_policy() -> RecoveryPolicy {
    let mut rp = RecoveryPolicy::standard();
    rp.spike_factor = 2.5;
    rp
}

/// One full self-healing LCNG run on a freshly built faulty chip. A fresh
/// chip per call keeps the fault schedule (attempt counters, drift state,
/// query counts) independent across runs, which the bitwise-replay test
/// relies on.
fn run_healing(threads: Option<usize>) -> TrainOutcome {
    let task = build_task(&TaskSpec::quick(4), 81).unwrap();
    // The pre-fault truth stands in for an initial calibration; drift and
    // the dead shifter degrade it over the run, which is what the fidelity
    // monitor is there to catch.
    let model = task.chip.oracle_network();
    let faulty = FaultyChip::new(task.chip, healing_plan());
    let trainer =
        Trainer::new(&faulty, &task.train, &task.test, task.head).with_calibrated_model(model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 6;
    config.threads = threads;
    config.recovery = healing_policy();
    let mut rng = StdRng::seed_from_u64(82);
    trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap()
}

/// The same task and method on the bare, fault-free chip — the reference
/// accuracy the self-healing run must stay close to.
fn run_clean() -> TrainOutcome {
    let task = build_task(&TaskSpec::quick(4), 81).unwrap();
    let model = task.chip.oracle_network();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 6;
    config.threads = Some(1);
    let mut rng = StdRng::seed_from_u64(82);
    trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap()
}

#[test]
fn faulty_measurements_are_bitwise_stable_across_pool_sizes() {
    // Identical fault schedules must produce bit-identical batch losses no
    // matter how many workers fan the per-sample reads out.
    let run = |threads: Option<usize>| -> Vec<u64> {
        let task = build_task(&TaskSpec::quick(4), 51).unwrap();
        let faulty = FaultyChip::new(task.chip, healing_plan());
        let mut rng = StdRng::seed_from_u64(52);
        let theta = faulty.init_params(&mut rng);
        let pool = ExecPool::with_threads(threads);
        let idx: Vec<usize> = (0..task.train.len()).collect();
        let mut bits = Vec::new();
        for step in 1..=5u64 {
            faulty.advance_to(step);
            let l = chip_batch_loss_pooled(&faulty, &task.train, &idx, &task.head, &theta, &pool);
            bits.push(l.to_bits());
        }
        bits
    };
    let serial = run(Some(1));
    assert_eq!(serial, run(Some(4)));
    assert_eq!(serial, run(Some(3)));
}

#[test]
fn rollback_on_spike_recovers() {
    // An aggressive spike schedule must trip the divergence guard: at least
    // one rollback, a backed-off learning rate, and no non-finite state.
    let task = build_task(&TaskSpec::quick(4), 61).unwrap();
    let faulty = FaultyChip::new(
        task.chip,
        FaultPlan::new(62).with_transients(TransientConfig {
            spike_prob: 0.02,
            spike_scale: 1e4,
            ..TransientConfig::default()
        }),
    );
    let trainer = Trainer::new(&faulty, &task.train, &task.test, task.head);
    let mut config = TrainConfig::quick(4);
    config.epochs = 6;
    config.threads = Some(1);
    config.recovery = healing_policy();
    let mut rng = StdRng::seed_from_u64(63);
    let out = trainer.train(Method::ZoGaussian, &config, &mut rng).unwrap();
    eprintln!("{}", recovery_report(&out));
    assert!(
        out.recovery.rollbacks >= 1,
        "spikes should trigger a rollback: {:?}",
        out.recovery
    );
    assert!(out.theta.iter().all(|v| v.is_finite()));
    assert!(out.history.iter().all(|h| h.train_loss.is_finite()));
    // Per-epoch stats sum to the aggregate.
    let epoch_rollbacks: u64 = out.history.iter().map(|h| h.recovery.rollbacks).sum();
    assert_eq!(epoch_rollbacks, out.recovery.rollbacks);
}

#[test]
fn fidelity_monitor_triggers_recalibration() {
    // Strong drift plus a dead shifter degrade the attached model's power
    // fidelity; the monitor must notice and recalibrate in place.
    let task = build_task(&TaskSpec::quick(4), 71).unwrap();
    let model = task.chip.oracle_network();
    let faulty = FaultyChip::new(
        task.chip,
        FaultPlan::new(72)
            .with_drift(DriftConfig {
                sigma: 0.08,
                tau: 10.0,
            })
            .with_stuck(StuckShifter {
                index: 3,
                value: 0.7,
            }),
    );
    let trainer =
        Trainer::new(&faulty, &task.train, &task.test, task.head).with_calibrated_model(model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 3;
    config.threads = Some(1);
    config.recovery = RecoveryPolicy::standard();
    let mut rng = StdRng::seed_from_u64(73);
    let out = trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap();
    eprintln!("{}", recovery_report(&out));
    assert!(
        out.recovery.recalibrations >= 1,
        "drift should trigger recalibration: {:?}",
        out.recovery
    );
    for event in &out.recovery_events {
        if let photon_zo::core::RecoveryEvent::Recalibration {
            fidelity_before,
            fidelity_after,
            queries,
            ..
        } = event
        {
            assert!(fidelity_before.is_finite() && fidelity_after.is_finite());
            assert!(*queries > 0, "recalibration must consume chip queries");
        }
    }
}

#[test]
fn self_healing_training_completes_and_reports() {
    // The acceptance scenario: drift + outliers + one dead shifter. The run
    // must finish with finite parameters, perform at least one rollback and
    // one auto-recalibration, report both, and land within 0.3 accuracy of
    // the fault-free reference run.
    let out = run_healing(Some(1));
    let report = recovery_report(&out);
    eprintln!("{report}");
    assert!(out.theta.iter().all(|v| v.is_finite()), "theta went non-finite");
    assert!(out.history.iter().all(|h| h.train_loss.is_finite()));
    assert!(
        out.recovery.rollbacks >= 1,
        "expected at least one rollback: {:?}",
        out.recovery
    );
    assert!(
        out.recovery.recalibrations >= 1,
        "expected at least one recalibration: {:?}",
        out.recovery
    );
    assert!(!out.recovery_events.is_empty());
    assert!(report.contains("rollback"));
    assert!(report.contains("recalibrate"));

    let clean = run_clean();
    assert!(
        out.final_eval.accuracy >= clean.final_eval.accuracy - 0.3,
        "self-healed accuracy {} too far below fault-free {}",
        out.final_eval.accuracy,
        clean.final_eval.accuracy
    );
}

#[test]
fn self_healing_replays_bitwise_across_pool_sizes() {
    // The identical fault schedule and seeds must reproduce the entire
    // training trajectory — parameters, losses and recovery events — no
    // matter the worker-pool size.
    let a = run_healing(Some(1));
    let b = run_healing(Some(4));
    let bits = |o: &TrainOutcome| -> Vec<u64> { o.theta.iter().map(|v| v.to_bits()).collect() };
    assert_eq!(bits(&a), bits(&b), "theta diverged across pool sizes");
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.recovery_events, b.recovery_events);
    assert_eq!(
        a.final_eval.accuracy.to_bits(),
        b.final_eval.accuracy.to_bits()
    );
    let losses = |o: &TrainOutcome| -> Vec<u64> {
        o.history.iter().map(|h| h.train_loss.to_bits()).collect()
    };
    assert_eq!(losses(&a), losses(&b));
    assert_eq!(a.training_queries, b.training_queries);
}

/// A chip whose reads drop to NaN so often that whole probe batches come
/// back non-finite. With recovery disabled nothing sanitizes the losses,
/// so they flow straight into CMA-ES ranking — which must order NaNs
/// deterministically (total order) instead of panicking.
#[test]
fn nan_probe_batches_survive_cmaes_ranking() {
    let task = build_task(&TaskSpec::quick(4), 91).unwrap();
    let plan = FaultPlan::new(92).with_transients(TransientConfig {
        drop_prob: 0.35,
        ..TransientConfig::default()
    });
    let faulty = FaultyChip::new(task.chip, plan);
    let trainer = Trainer::new(&faulty, &task.train, &task.test, task.head);
    let mut config = TrainConfig::quick(4);
    config.epochs = 2;
    config.recovery = RecoveryPolicy::disabled();
    let mut rng = StdRng::seed_from_u64(93);
    let out = trainer
        .train(Method::Cma { sigma0: 0.1 }, &config, &mut rng)
        .unwrap();
    assert_eq!(out.history.len(), 2, "run must complete every epoch");
    assert!(faulty.fault_counts().dropped > 0, "faults must have fired");
}

/// The same NaN-heavy chip through the robust recovery ladder: retries,
/// probe penalization and the rollback guard must carry an LCNG run to
/// completion without a panic.
#[test]
fn nan_probe_batches_survive_robust_ladder() {
    let task = build_task(&TaskSpec::quick(4), 94).unwrap();
    let model = task.chip.oracle_network();
    let plan = FaultPlan::new(95).with_transients(TransientConfig {
        drop_prob: 0.25,
        ..TransientConfig::default()
    });
    let faulty = FaultyChip::new(task.chip, plan);
    let trainer =
        Trainer::new(&faulty, &task.train, &task.test, task.head).with_calibrated_model(model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 2;
    config.recovery = healing_policy();
    let mut rng = StdRng::seed_from_u64(96);
    let out = trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap();
    assert_eq!(out.history.len(), 2, "run must complete every epoch");
    let r = out.recovery;
    assert!(
        r.retries + r.rejected_probes + r.rollbacks > 0,
        "a 25% drop rate must exercise the recovery ladder"
    );
}
