//! Durable-runtime acceptance tests: a run killed at an arbitrary byte of
//! its journal and resumed on a freshly fabricated identical chip must be
//! bitwise identical — final parameters, per-epoch history, query ledger —
//! to the uninterrupted run, at serial and pooled worker counts; a torn
//! journal tail is truncated rather than fatal; and a permanently hung
//! chip link degrades to a clean, resumable abort instead of a hang.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use photon_zo::core::{
    build_task, AbortReason, DurableOptions, JournalHeader, Method, ModelChoice, RunJournal,
    RunOutcome, TaskSpec, TrainConfig, TrainOutcome, Trainer, WatchdogPolicy,
};
use photon_zo::faults::{FaultPlan, FaultyChip, HangConfig};
use photon_zo::linalg::RVector;
use photon_zo::core::Evaluation;

const TASK_SEED: u64 = 11;
const ROOT_SEED: u64 = 77;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "photon-durable-{}-{name}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn quick_config(threads: usize) -> TrainConfig {
    let mut config = TrainConfig::quick(4);
    config.epochs = 4;
    config.eval_every = 2;
    config.threads = Some(threads);
    config
}

fn bits(v: &RVector) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn eval_bits(e: &Evaluation) -> (u64, u64, usize) {
    (e.accuracy.to_bits(), e.loss.to_bits(), e.samples)
}

/// Bitwise equality of two outcomes, excluding wall-clock (`elapsed`),
/// which is explicitly outside the determinism contract.
fn assert_same_outcome(control: &TrainOutcome, resumed: &TrainOutcome) {
    assert_eq!(control.method, resumed.method);
    assert_eq!(
        bits(&control.theta),
        bits(&resumed.theta),
        "final theta diverged"
    );
    assert_eq!(
        control.training_queries, resumed.training_queries,
        "training-query total diverged"
    );
    assert_eq!(
        eval_bits(&control.final_eval),
        eval_bits(&resumed.final_eval),
        "final evaluation diverged"
    );
    assert_eq!(control.recovery, resumed.recovery);
    assert_eq!(control.recovery_events, resumed.recovery_events);
    assert_eq!(control.history.len(), resumed.history.len());
    for (a, b) in control.history.iter().zip(&resumed.history) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(
            a.train_loss.to_bits(),
            b.train_loss.to_bits(),
            "train loss diverged at epoch {}",
            a.epoch
        );
        assert_eq!(
            a.test.as_ref().map(eval_bits),
            b.test.as_ref().map(eval_bits),
            "test eval diverged at epoch {}",
            a.epoch
        );
        assert_eq!(
            a.training_queries, b.training_queries,
            "ledger diverged at epoch {}",
            a.epoch
        );
        assert_eq!(a.recovery, b.recovery);
    }
}

/// Byte length of a header-only journal with the control run's identity,
/// so the simulated kill never cuts into the header itself (that would be
/// a corrupt file, not a torn tail — covered by the checkpoint proptests).
fn header_len(dir: &Path, method: Method, config: &TrainConfig) -> u64 {
    let header = JournalHeader {
        method,
        root_seed: ROOT_SEED,
        epochs: config.epochs,
        batch_size: config.batch_size,
        q: config.q,
    };
    let probe = dir.join("header-probe.journal");
    RunJournal::create(&probe, &header).expect("probe journal");
    fs::metadata(&probe).expect("probe metadata").len()
}

/// The decisive test: run durably to completion (control), then simulate a
/// kill by truncating a copy of the journal at a seeded-random byte, and
/// resume on a freshly fabricated identical chip. Control and resumed run
/// must agree bit for bit.
fn kill_and_resume(threads: usize, method: Method, kill_seed: u64, name: &str) {
    let dir = tmp_dir(name);
    let config = quick_config(threads);

    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let control_path = dir.join("control.journal");
    let opts = DurableOptions::new(&control_path, ROOT_SEED);
    let control = trainer
        .train_durable(method, &config, &opts)
        .unwrap()
        .completed()
        .expect("control run completes");

    // Kill simulation: the process could have died at ANY byte boundary of
    // the journal — mid-frame, between frames, or before the first record.
    let floor = header_len(&dir, method, &config);
    let full = fs::metadata(&control_path).unwrap().len();
    let mut rng = StdRng::seed_from_u64(kill_seed);
    let cut = rng.gen_range(floor..full);
    let killed_path = dir.join("killed.journal");
    fs::copy(&control_path, &killed_path).unwrap();
    let file = fs::OpenOptions::new()
        .write(true)
        .open(&killed_path)
        .unwrap();
    file.set_len(cut).unwrap();
    drop(file);

    // Resume on a fresh, identically fabricated chip: readings are pure in
    // content + drift iteration, so a new chip (query counter back at zero)
    // reproduces the original's physics; `prior_queries` bridges the ledger.
    let task2 = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer2 = Trainer::new(&task2.chip, &task2.train, &task2.test, task2.head);
    let resumed = trainer2
        .resume(&config, &DurableOptions::new(&killed_path, ROOT_SEED))
        .unwrap()
        .completed()
        .expect("resumed run completes");

    assert_same_outcome(&control, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_is_bitwise_identical_serial() {
    kill_and_resume(1, Method::ZoGaussian, 101, "serial-zo");
}

#[test]
fn kill_and_resume_is_bitwise_identical_pooled() {
    kill_and_resume(
        3,
        Method::Lcng {
            model: ModelChoice::OracleTrue,
        },
        202,
        "pooled-lcng",
    );
}

#[test]
fn kill_and_resume_restores_cma_state() {
    kill_and_resume(1, Method::Cma { sigma0: 0.05 }, 303, "serial-cma");
}

#[test]
fn resume_rejects_mismatched_run_identity() {
    let dir = tmp_dir("identity");
    let config = quick_config(1);
    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let path = dir.join("run.journal");
    trainer
        .train_durable(Method::ZoGaussian, &config, &DurableOptions::new(&path, ROOT_SEED))
        .unwrap();

    // Wrong root seed: the per-epoch RNG streams would diverge silently.
    let err = trainer
        .resume(&config, &DurableOptions::new(&path, ROOT_SEED + 1))
        .unwrap_err();
    assert!(err.to_string().contains("root seed"), "got: {err}");

    // Wrong run shape: the shuffle / probe streams would diverge silently.
    let mut other = config.clone();
    other.batch_size += 1;
    let err = trainer
        .resume(&other, &DurableOptions::new(&path, ROOT_SEED))
        .unwrap_err();
    assert!(err.to_string().contains("does not match"), "got: {err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_tail_is_truncated_and_run_resumes() {
    let dir = tmp_dir("torn-tail");
    let config = quick_config(1);
    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let path = dir.join("run.journal");
    let opts = DurableOptions::new(&path, ROOT_SEED);
    let control = trainer
        .train_durable(Method::ZoGaussian, &config, &opts)
        .unwrap()
        .completed()
        .unwrap();

    // A crash mid-append leaves a partial frame: a frame line whose payload
    // never made it to disk, plus raw garbage.
    let torn = dir.join("torn.journal");
    fs::copy(&path, &torn).unwrap();
    let mut bytes = fs::read(&torn).unwrap();
    bytes.extend_from_slice(b"record 9999 deadbeef\npartial payload that was cut");
    fs::write(&torn, &bytes).unwrap();

    let replay = RunJournal::replay(&torn).unwrap();
    assert_eq!(replay.entries.len(), config.epochs, "intact records survive");
    assert!(replay.truncated_bytes > 0, "torn tail must be reported");
    // Replay truncates the file back to its last intact record.
    let replay2 = RunJournal::replay(&torn).unwrap();
    assert_eq!(replay2.truncated_bytes, 0);

    // Resume of the (fully complete) torn journal re-runs only the final
    // evaluation — on a fresh identical chip it reproduces the control.
    let task2 = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer2 = Trainer::new(&task2.chip, &task2.train, &task2.test, task2.head);
    let resumed = trainer2
        .resume(&config, &DurableOptions::new(&torn, ROOT_SEED))
        .unwrap()
        .completed()
        .unwrap();
    assert_same_outcome(&control, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_converts_hung_chip_into_resumable_abort() {
    let dir = tmp_dir("watchdog");
    let mut config = quick_config(1);
    config.epochs = 2;

    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    // Every read hangs, far beyond the deadline: without the watchdog the
    // run would stall for max_block per read; with it, each attempt is cut
    // off at the deadline and the run aborts cleanly after the retry
    // budget.
    let plan = FaultPlan::new(5).with_hangs(HangConfig {
        prob: 1.0,
        max_block: Duration::from_secs(30),
    });
    let faulty = FaultyChip::new(task.chip, plan);
    let trainer = Trainer::new(&faulty, &task.train, &task.test, task.head);
    let path = dir.join("hung.journal");
    let watchdog = WatchdogPolicy {
        deadline: Duration::from_millis(50),
        max_timeouts: 1,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        jitter_seed: 9,
    };
    let opts = DurableOptions::new(&path, ROOT_SEED).with_watchdog(watchdog);

    let t0 = Instant::now();
    let outcome = trainer
        .train_durable(Method::ZoGaussian, &config, &opts)
        .unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "watchdog must not wait out the hang's safety valve"
    );
    match outcome {
        RunOutcome::Aborted {
            resumable,
            epochs_completed,
            reason: AbortReason::QueryDeadline { epoch, timeouts },
        } => {
            assert!(resumable, "watchdog aborts are always resumable");
            assert_eq!(epochs_completed, 0);
            assert_eq!(epoch, 1);
            assert_eq!(timeouts, 2, "max_timeouts + 1 attempts before abort");
        }
        RunOutcome::Completed(_) => panic!("a permanently hung chip cannot complete"),
        RunOutcome::Aborted { reason, .. } => panic!("unexpected abort reason: {reason:?}"),
    }

    // The abort left a valid journal: resuming on a healthy chip finishes
    // the run, identically to one that never saw the fault.
    let task2 = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer2 = Trainer::new(&task2.chip, &task2.train, &task2.test, task2.head);
    let resumed = trainer2
        .resume(&config, &DurableOptions::new(&path, ROOT_SEED))
        .unwrap()
        .completed()
        .expect("resume on a healthy chip completes");

    let task3 = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer3 = Trainer::new(&task3.chip, &task3.train, &task3.test, task3.head);
    let control = trainer3
        .train_durable(
            Method::ZoGaussian,
            &config,
            &DurableOptions::new(dir.join("control.journal"), ROOT_SEED),
        )
        .unwrap()
        .completed()
        .unwrap();
    assert_same_outcome(&control, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

/// Preemption via `epoch_budget` is a first-class resumable abort: a run
/// sliced into 1-2 epoch quanta — each slice a separate invocation, as a
/// farm scheduler would issue them — lands bitwise on the uninterrupted
/// control.
#[test]
fn epoch_budget_slices_reassemble_bitwise() {
    let dir = tmp_dir("preempt");
    let config = quick_config(1);

    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let control = trainer
        .train_durable(
            Method::ZoGaussian,
            &config,
            &DurableOptions::new(dir.join("control.journal"), ROOT_SEED),
        )
        .unwrap()
        .completed()
        .expect("control completes");

    // Sliced run: fresh chip + trainer per slice (the farm rebuilds both
    // on whichever worker a slice lands on).
    let sliced_path = dir.join("sliced.journal");
    let quanta = [1usize, 2, 1, 2, 1];
    let mut outcome = None;
    for (i, &quantum) in quanta.iter().enumerate() {
        let task_i = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
        let trainer_i = Trainer::new(&task_i.chip, &task_i.train, &task_i.test, task_i.head);
        let opts = DurableOptions::new(&sliced_path, ROOT_SEED).with_epoch_budget(quantum);
        let result = if i == 0 {
            trainer_i.train_durable(Method::ZoGaussian, &config, &opts)
        } else {
            trainer_i.resume(&config, &opts)
        }
        .unwrap();
        match result {
            RunOutcome::Completed(out) => {
                outcome = Some(out);
                break;
            }
            RunOutcome::Aborted {
                resumable,
                reason: AbortReason::Preempted { epoch },
                epochs_completed,
            } => {
                assert!(resumable, "preemption must be resumable");
                assert_eq!(epoch, epochs_completed + 1, "preempted at the next epoch");
            }
            RunOutcome::Aborted { reason, .. } => panic!("unexpected abort: {reason:?}"),
        }
    }
    let sliced = outcome.expect("slices must finish all epochs");
    assert_same_outcome(&control, &sliced);
    let _ = fs::remove_dir_all(&dir);
}

/// `train_durable_from` seeds the run with a caller-supplied theta instead
/// of the warm start, and the journal it writes kill-resumes bitwise like
/// any other durable run (as long as at least one epoch committed — the
/// zero-entry journal is the caller's responsibility, per its docs).
#[test]
fn train_durable_from_starts_at_given_theta_and_kill_resumes_bitwise() {
    let dir = tmp_dir("from-theta");
    let config = quick_config(1);
    let method = Method::ZoGaussian;

    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let mut rng = StdRng::seed_from_u64(500);
    let theta0 = task.chip.init_params(&mut rng);

    let control_path = dir.join("control.journal");
    let control = trainer
        .train_durable_from(
            method,
            &config,
            &DurableOptions::new(&control_path, ROOT_SEED),
            &theta0,
        )
        .unwrap()
        .completed()
        .expect("from-theta control completes");

    // Regression: the warm start must actually be skipped — a plain
    // warm-started run with the same seeds lands elsewhere.
    let warm = trainer
        .train_durable(
            method,
            &config,
            &DurableOptions::new(dir.join("warm.journal"), ROOT_SEED),
        )
        .unwrap()
        .completed()
        .unwrap();
    assert_ne!(
        bits(&control.theta),
        bits(&warm.theta),
        "train_durable_from must not redo the warm start"
    );

    // Floor the simulated kill at one committed epoch: a one-epoch
    // preempted run of the same spec yields exactly that journal prefix.
    let floor_path = dir.join("floor.journal");
    let task_f = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer_f = Trainer::new(&task_f.chip, &task_f.train, &task_f.test, task_f.head);
    match trainer_f
        .train_durable_from(
            method,
            &config,
            &DurableOptions::new(&floor_path, ROOT_SEED).with_epoch_budget(1),
            &theta0,
        )
        .unwrap()
    {
        RunOutcome::Aborted {
            resumable: true,
            epochs_completed: 1,
            ..
        } => {}
        other => panic!("expected a one-epoch preemption, got {other:?}"),
    }
    let floor = fs::metadata(&floor_path).unwrap().len();
    let full = fs::metadata(&control_path).unwrap().len();
    assert!(floor < full);

    let mut rng = StdRng::seed_from_u64(404);
    let cut = rng.gen_range(floor..full);
    let killed = dir.join("killed.journal");
    fs::copy(&control_path, &killed).unwrap();
    fs::OpenOptions::new()
        .write(true)
        .open(&killed)
        .unwrap()
        .set_len(cut)
        .unwrap();

    let task2 = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer2 = Trainer::new(&task2.chip, &task2.train, &task2.test, task2.head);
    let resumed = trainer2
        .resume(&config, &DurableOptions::new(&killed, ROOT_SEED))
        .unwrap()
        .completed()
        .expect("killed from-theta run resumes");
    assert_same_outcome(&control, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

mod online_atomicity {
    use super::*;
    use photon_zo::core::evaluate_chip_pooled;
    use photon_zo::exec::ExecPool;
    use photon_zo::farm::{run_online, OnlineOptions, OnlineOutcome, ONLINE_WAL};
    use photon_zo::faults::{DriftConfig, FaultyChip};
    use photon_zo::photonics::{ErrorVector, OnnChip};

    const ONLINE_SEED: u64 = 61;

    /// `tmp_dir` that also clears leftovers from a previously failed run —
    /// the online controller is idempotent-by-journal, so a stale journal
    /// would silently skip the cycles this test means to execute.
    fn fresh_tmp(tag: &str) -> PathBuf {
        let dir = tmp_dir(tag);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn options(cycles: usize) -> OnlineOptions {
        let mut shadow = TrainConfig::quick(4);
        shadow.epochs = 4;
        shadow.threads = Some(1);
        OnlineOptions::new(cycles, ONLINE_SEED, shadow)
            .with_canary(8, 0.05)
            .with_canary_batch(6)
    }

    /// Fresh drifting chip + deployment for one controller invocation, as
    /// a restarted process would rebuild them.
    fn invoke(dir: &Path, cycles: usize) -> OnlineOutcome {
        let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
        let chip = FaultyChip::new(
            task.chip,
            FaultPlan::new(19).with_drift(DriftConfig {
                sigma: 0.05,
                tau: 20.0,
            }),
        );
        let mut rng = StdRng::seed_from_u64(500);
        let deployed = chip.init_params(&mut rng);
        let (n_bs, n_ps) = chip.architecture().error_slots();
        run_online(
            &chip,
            &task.train,
            &task.test,
            task.head,
            &deployed,
            &ErrorVector::zeros(n_bs, n_ps),
            &options(cycles),
            dir,
        )
        .unwrap()
    }

    fn copy_dir(from: &Path, to: &Path) {
        fs::create_dir_all(to).unwrap();
        for entry in fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }

    /// The atomic promote/rollback guarantee: kill the controller at ANY
    /// byte of its write-ahead journal — including between a canary
    /// verdict's committed record and the re-pin that follows it — and the
    /// restarted controller deploys either the cycle's old theta or its
    /// new one (bitwise equal to the uninterrupted control's), never a
    /// torn mix, and then converges to the control's final state.
    #[test]
    fn online_promote_and_rollback_survive_kills_untorn() {
        let control_dir = fresh_tmp("online-control");
        let control = invoke(&control_dir, 2);
        assert_eq!(control.cycles.len(), 2);
        assert!(
            control.promotions >= 1,
            "scenario must exercise the promote path: {:?}",
            control
                .cycles
                .iter()
                .map(|c| (c.promoted, c.p_value))
                .collect::<Vec<_>>()
        );

        // Record boundaries, measured rather than assumed: header-only and
        // one-record journals from runs asked for 0 and 1 cycles.
        let len0_dir = fresh_tmp("online-len0");
        invoke(&len0_dir, 0);
        let len0 = fs::metadata(len0_dir.join(ONLINE_WAL)).unwrap().len();
        let len1_dir = fresh_tmp("online-len1");
        invoke(&len1_dir, 1);
        let len1 = fs::metadata(len1_dir.join(ONLINE_WAL)).unwrap().len();
        let len2 = fs::metadata(control_dir.join(ONLINE_WAL)).unwrap().len();
        assert!(len0 < len1 && len1 < len2);

        // (cut byte, intact records after replay)
        let cuts = [
            ((len0 + len1) / 2, 0usize), // killed mid-append of record 1
            (len1, 1),                   // killed between record 1 and re-pin
            ((len1 + len2) / 2, 1),      // killed mid-append of record 2
            (len2 - 1, 1),               // killed one byte short of commit 2
        ];
        for (i, &(cut, intact)) in cuts.iter().enumerate() {
            let dir = fresh_tmp(&format!("online-cut{i}"));
            let _ = fs::remove_dir_all(&dir);
            copy_dir(&control_dir, &dir);
            fs::OpenOptions::new()
                .write(true)
                .open(dir.join(ONLINE_WAL))
                .unwrap()
                .set_len(cut)
                .unwrap();

            // First restart, asked to do no further cycles: what does the
            // replayed journal say is deployed? Exactly the control's
            // committed deployment at that cycle — old theta if the cycle
            // rolled back, new if it promoted, never a mix of the two.
            let replayed = invoke(&dir, intact);
            assert_eq!(replayed.cycles.len(), intact, "cut {i}");
            let expected = if intact == 0 {
                let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
                let chip = FaultyChip::new(task.chip, FaultPlan::new(19));
                let mut rng = StdRng::seed_from_u64(500);
                chip.init_params(&mut rng)
            } else {
                control.cycles[intact - 1].theta.clone()
            };
            assert_eq!(
                bits(&replayed.deployed),
                bits(&expected),
                "cut {i}: deployment must be the committed record's theta"
            );

            // Second restart finishes the remaining cycles and must land
            // bitwise on the uninterrupted control — journal bytes and all.
            let finished = invoke(&dir, 2);
            assert_eq!(
                bits(&finished.deployed),
                bits(&control.deployed),
                "cut {i}: resumed run diverged from control"
            );
            assert_eq!(
                fs::read(dir.join(ONLINE_WAL)).unwrap(),
                fs::read(control_dir.join(ONLINE_WAL)).unwrap(),
                "cut {i}: journals must converge byte-identically"
            );
            assert_eq!(
                finished.final_eval.accuracy.to_bits(),
                control.final_eval.accuracy.to_bits(),
                "cut {i}"
            );
            let _ = fs::remove_dir_all(&dir);
        }

        // Sanity: the no-recal deployment really is worse than what the
        // promoted loop ends at (the whole point of recalibrating live).
        let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
        let chip = FaultyChip::new(
            task.chip,
            FaultPlan::new(19).with_drift(DriftConfig {
                sigma: 0.05,
                tau: 20.0,
            }),
        );
        let mut rng = StdRng::seed_from_u64(500);
        let stale = chip.init_params(&mut rng);
        let final_step = control.cycles.last().unwrap().next_step;
        chip.advance_to(final_step);
        let pool = ExecPool::with_threads(Some(1));
        let stale_eval = evaluate_chip_pooled(&chip, &task.test, &task.head, &stale, &pool);
        assert!(
            control.final_eval.loss < stale_eval.loss,
            "online loop must beat the stale deployment: {} vs {}",
            control.final_eval.loss,
            stale_eval.loss
        );

        for d in [control_dir, len0_dir, len1_dir] {
            let _ = fs::remove_dir_all(&d);
        }
    }
}
