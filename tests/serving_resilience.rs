//! Chaos tests for the resilient serving layer: a three-replica group with
//! one scripted kill and one scripted hang mid-run must stay bitwise
//! deterministic, lose zero requests silently (arrivals reconcile against
//! completions + sheds + expiries, and chip queries against the
//! eval/hedge ledger), trip and recover circuit breakers at deterministic
//! virtual times, and hold tail latency within a bounded factor of the
//! healthy baseline while the no-resilience control arm degrades.
//!
//! Plus property tests on the two foundations everything rests on: the
//! event heap's same-instant FIFO ordering and the hedged-dedup ledger's
//! idempotency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::farm::{BreakerState, CoalescePolicy, DedupLedger, HedgePolicy};
use photon_zo::faults::ReplicaChaos;
use photon_zo::photonics::{Architecture, ErrorModel, FabricatedChip};
use photon_zo::sim::{
    run_resilient, run_resilient_on_chip, ArrivalProcess, EventHeap, ReplicaSpec,
    ResilientConfig, TenantLoad,
};

const KILL_AT_NS: u64 = 5_000_000;
const HANG_FROM_NS: u64 = 4_000_000;
const HANG_UNTIL_NS: u64 = 8_000_000;

/// The shared scenario: three replicas behind one endpoint, 100 krps of
/// two-tenant Poisson traffic for 20 ms of virtual time. Hedging is tuned
/// aggressive (median-latency delay, 50 µs floor) so a leg stuck on a
/// faulty replica is re-dispatched quickly.
fn chaos_cfg(seed: u64) -> ResilientConfig {
    ResilientConfig::new(seed, 20_000_000)
        .with_label("chaos")
        .with_replica(ReplicaSpec::clean("alpha"))
        .with_replica(
            ReplicaSpec::clean("beta")
                .with_chaos(ReplicaChaos::none().kill_at(KILL_AT_NS)),
        )
        .with_replica(
            ReplicaSpec::clean("gamma")
                .with_chaos(ReplicaChaos::none().hang_between(HANG_FROM_NS, HANG_UNTIL_NS)),
        )
        .with_tenant(TenantLoad::new(
            "alice",
            ArrivalProcess::Poisson { rate_hz: 60_000.0 },
        ))
        .with_tenant(TenantLoad::new(
            "bob",
            ArrivalProcess::Poisson { rate_hz: 40_000.0 },
        ))
        .with_coalescer(CoalescePolicy::new(16, 100_000))
        .with_default_deadline_ns(2_000_000)
        .with_hedge(Some(HedgePolicy {
            quantile: 0.5,
            min_delay_ns: 50_000,
            window: 256,
            min_samples: 16,
        }))
}

/// The same offered load with no scripted faults: the healthy baseline the
/// tail-latency bound is measured against.
fn healthy_cfg(seed: u64) -> ResilientConfig {
    let mut cfg = chaos_cfg(seed).with_label("healthy");
    for r in &mut cfg.replicas {
        r.chaos = ReplicaChaos::none();
    }
    cfg
}

#[test]
fn chaos_run_replays_bitwise_across_thread_settings() {
    let baseline = run_resilient(&chaos_cfg(2024)).to_json();
    assert_eq!(baseline, run_resilient(&chaos_cfg(2024)).to_json());

    // Virtual time must be oblivious to the worker-pool knob the rest of
    // the repo honors.
    for threads in ["1", "3"] {
        std::env::set_var("PHOTON_THREADS", threads);
        assert_eq!(
            baseline,
            run_resilient(&chaos_cfg(2024)).to_json(),
            "PHOTON_THREADS={threads} changed the chaos report"
        );
    }
    std::env::remove_var("PHOTON_THREADS");

    assert_ne!(baseline, run_resilient(&chaos_cfg(2025)).to_json());
}

#[test]
fn chaos_run_loses_no_request_silently() {
    let report = run_resilient(&chaos_cfg(7));
    assert!(
        report.conserves_requests(),
        "arrivals must equal completed + shed + expired for every tenant"
    );
    assert!(report.aggregate.completed > 0);
    // Idempotent dedup: tenant completions count each request once even
    // when both a primary and a hedge leg served it.
    assert_eq!(report.eval_queries, report.aggregate.completed);
    assert_eq!(report.hedge_queries, report.duplicates);
    // The kill and the hang both happened: legs were abandoned.
    assert!(report.replicas[1].timeouts > 0, "killed replica must time out");
    assert!(report.replicas[2].timeouts > 0, "hung replica must time out");
}

#[test]
fn chip_counters_reconcile_with_the_hedge_ledger() {
    let mut rng = StdRng::seed_from_u64(5);
    let arch = Architecture::single_mesh(4, 4).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    chip.pin_compile_base(&theta);

    // A shorter window keeps the chip-backed run cheap.
    let mut cfg = chaos_cfg(9);
    cfg.duration_ns = 8_000_000;

    let before = chip.query_count();
    let report = run_resilient_on_chip(&cfg, &chip);
    let spent = chip.query_count() - before;

    // Every chip query is attributed: first completions to the eval
    // ledger, duplicate hedge completions to the hedge ledger.
    assert_eq!(report.chip_queries, Some(spent));
    assert_eq!(spent, report.eval_queries + report.hedge_queries);
    assert!(report.conserves_requests());

    // Chip-backed chaos runs replay bitwise too.
    assert_eq!(report.to_json(), run_resilient_on_chip(&cfg, &chip).to_json());
}

#[test]
fn breakers_open_and_recover_at_deterministic_virtual_times() {
    let report = run_resilient(&chaos_cfg(7));

    // The killed replica's breaker opens after the kill and never
    // re-closes: every half-open probe it admits times out again.
    let beta = &report.replicas[1];
    let first_open = beta
        .breaker_transitions
        .iter()
        .find(|t| t.to == BreakerState::Open)
        .expect("killed replica's breaker must open");
    assert!(
        first_open.at_ns >= KILL_AT_NS,
        "breaker cannot open before the kill: {} ns",
        first_open.at_ns
    );
    assert_ne!(beta.final_breaker, BreakerState::Closed);
    assert!(
        !beta
            .breaker_transitions
            .iter()
            .any(|t| t.from == BreakerState::HalfOpen && t.to == BreakerState::Closed),
        "a dead replica must never pass a half-open probe"
    );

    // The hung replica's breaker opens inside the hang window, then a
    // half-open probe succeeds after the hang releases and re-closes it.
    let gamma = &report.replicas[2];
    let open = gamma
        .breaker_transitions
        .iter()
        .find(|t| t.to == BreakerState::Open)
        .expect("hung replica's breaker must open");
    assert!(open.at_ns >= HANG_FROM_NS);
    let reclose = gamma
        .breaker_transitions
        .iter()
        .find(|t| t.from == BreakerState::HalfOpen && t.to == BreakerState::Closed)
        .expect("hung replica must recover through a half-open probe");
    assert!(
        reclose.at_ns >= HANG_UNTIL_NS,
        "recovery cannot precede the hang release: {} ns",
        reclose.at_ns
    );
    assert_eq!(gamma.final_breaker, BreakerState::Closed);
    assert!(
        gamma.completions > 0,
        "the recovered replica must serve again after re-closing"
    );

    // Deterministic: the transition log is part of the JSON contract, so a
    // replay reproduces every timestamp exactly.
    let replay = run_resilient(&chaos_cfg(7));
    assert_eq!(
        report.replicas[1].breaker_transitions,
        replay.replicas[1].breaker_transitions
    );
    assert_eq!(
        report.replicas[2].breaker_transitions,
        replay.replicas[2].breaker_transitions
    );
}

#[test]
fn resilience_holds_p99_within_2x_of_healthy_while_control_degrades() {
    let healthy = run_resilient(&healthy_cfg(7));
    let resilient = run_resilient(&chaos_cfg(7));
    let control = run_resilient(&chaos_cfg(7).without_resilience().with_label("control"));

    assert!(healthy.lost() == 0, "the healthy baseline must lose nothing");
    let bound = 2.0 * healthy.aggregate.p99_ns;
    assert!(
        resilient.aggregate.p99_ns <= bound,
        "resilient p99 {:.0} ns must stay within 2x of healthy {:.0} ns",
        resilient.aggregate.p99_ns,
        healthy.aggregate.p99_ns
    );
    assert!(
        resilient.hedges_fired > 0 && resilient.hedge_wins > 0,
        "the bound must be held *by* hedging, not by luck"
    );
    // The control arm with breakers, brownout and hedging all disabled
    // keeps feeding the dead replica forever: it must either lose more
    // requests outright or blow the latency bound (in this scenario it
    // does both, but either failure justifies the resilience machinery).
    assert!(
        control.lost() > resilient.lost()
            || control.aggregate.p99_ns > bound,
        "control lost {} vs resilient {} (p99 {:.0} vs bound {:.0})",
        control.lost(),
        resilient.lost(),
        control.aggregate.p99_ns,
        bound
    );
    assert!(
        resilient.lost() < control.lost(),
        "resilience must shed strictly less than the control arm: {} vs {}",
        resilient.lost(),
        control.lost()
    );
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// One scripted heap operation.
#[derive(Debug, Clone)]
enum HeapOp {
    Push(u64),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    // Times drawn from a tiny range force same-instant collisions, which
    // is exactly where FIFO tie-breaking matters.
    proptest::collection::vec(
        prop_oneof![
            (0u64..4).prop_map(HeapOp::Push),
            Just(HeapOp::Pop),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event heap pops strictly by `(time, insertion order)` under any
    /// interleaving of pushes and pops: same-instant events come out in
    /// exactly the order they were scheduled. The whole replay contract —
    /// and the breaker/hedge timestamp determinism asserted above — rests
    /// on this.
    #[test]
    fn event_heap_is_fifo_at_equal_instants(ops in arb_ops()) {
        let mut heap: EventHeap<u64> = EventHeap::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (at_ns, seq), kept sorted
        let mut payload = 0u64;
        for op in ops {
            match op {
                HeapOp::Push(at) => {
                    let seq = heap.schedule(at, payload);
                    model.push((at, seq));
                    model.sort(); // (time, seq) lexicographic = FIFO within an instant
                    payload += 1;
                }
                HeapOp::Pop => {
                    let got = heap.pop().map(|(at, seq, _)| (at, seq));
                    let want = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    prop_assert_eq!(got, want, "heap must pop the oldest same-instant event");
                }
            }
        }
        // Drain whatever is left: still perfectly ordered.
        while let Some(want) = (!model.is_empty()).then(|| model.remove(0)) {
            let got = heap.pop().map(|(at, seq, _)| (at, seq));
            prop_assert_eq!(got, Some(want));
        }
        prop_assert!(heap.pop().is_none());
    }

    /// Hedged dedup is idempotent: however many times a request id is
    /// completed (primary leg, hedge leg, replays), it is *served* exactly
    /// once and every further completion is counted as a duplicate. This is
    /// the invariant that lets hedge legs run to completion without ever
    /// double-counting tenant work.
    #[test]
    fn hedged_dedup_serves_each_id_exactly_once(
        ids in proptest::collection::vec(0u64..64, 1..200),
    ) {
        let mut ledger = DedupLedger::new();
        let mut seen = std::collections::HashSet::new();
        for &id in &ids {
            let first = ledger.mark_served(id);
            prop_assert_eq!(first, seen.insert(id), "first completion wins, rest are dupes");
            prop_assert!(ledger.is_served(id));
        }
        prop_assert_eq!(ledger.served(), seen.len() as u64);
        prop_assert_eq!(ledger.duplicates(), (ids.len() - seen.len()) as u64);
    }
}
