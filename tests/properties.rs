//! Property-based tests (proptest) on the cross-crate invariants the whole
//! reproduction rests on.

use proptest::prelude::*;

use photon_zo::data::{dft, idft};
use photon_zo::linalg::{CMatrix, CVector, RCholesky, RMatrix, RVector, C64};
use photon_zo::photonics::{
    Architecture, ErrorCursor, ErrorModel, ErrorVector, MeshModule, OnnModule,
};

fn arb_phases(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..std::f64::consts::TAU, n)
}

fn arb_cvector(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec(
        (-1.0..1.0f64).prop_flat_map(|re| (Just(re), -1.0..1.0f64)),
        n,
    )
    .prop_map(|pairs| {
        CVector::from_vec(pairs.into_iter().map(|(re, im)| C64::new(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any ideal Clements mesh is unitary for any phase setting: the
    /// bedrock physical invariant of the simulator.
    #[test]
    fn ideal_clements_is_always_unitary(
        dim in 2usize..6,
        layer_frac in 1usize..4,
        seed_phases in proptest::collection::vec(0.0..std::f64::consts::TAU, 64),
    ) {
        let layers = (dim * layer_frac).div_euclid(2).max(1);
        let mesh = MeshModule::clements(dim, layers);
        let theta: Vec<f64> = seed_phases.into_iter().take(mesh.param_count()).collect();
        prop_assume!(theta.len() == mesh.param_count());
        let u = mesh.transfer_matrix(&theta);
        prop_assert!(u.is_unitary(1e-9), "Clements({dim},{layers}) not unitary");
    }

    /// Fabrication errors never *create* optical power: with |ζ| ≤ 1 the
    /// output power is bounded by the input power for every input, phase
    /// setting and error draw.
    #[test]
    fn errors_never_amplify_power(
        seed in 0u64..1000,
        beta in 0.0..6.0f64,
        phases in arb_phases(24),
        x in arb_cvector(4),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mesh = MeshModule::clements(4, 4);
        prop_assume!(x.norm_sqr() > 1e-12);
        let (n_bs, n_ps) = mesh.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(beta), &mut rng);
        let noisy = mesh.with_errors(&mut ErrorCursor::new(&ev)).unwrap();
        let theta: Vec<f64> = phases.into_iter().take(noisy.param_count()).collect();
        prop_assume!(theta.len() == noisy.param_count());
        let y = noisy.forward(&x, &theta);
        prop_assert!(y.norm_sqr() <= x.norm_sqr() * (1.0 + 1e-9));
    }

    /// The DFT/IDFT pair is an exact inverse for arbitrary lengths.
    #[test]
    fn dft_roundtrip(x in (3usize..40).prop_flat_map(arb_cvector)) {
        let back = idft(&dft(&x));
        prop_assert!((&back - &x).max_abs() < 1e-8);
    }

    /// Parseval: the DFT preserves energy up to the 1/N convention.
    #[test]
    fn dft_parseval(x in (2usize..40).prop_flat_map(arb_cvector)) {
        let spec = dft(&x);
        let n = x.len() as f64;
        prop_assert!((spec.norm_sqr() / n - x.norm_sqr()).abs() < 1e-8 * (1.0 + x.norm_sqr()));
    }

    /// LU solve actually solves: A·x = b round-trips for well-conditioned
    /// diagonally dominant matrices.
    #[test]
    fn lu_solves_dominant_systems(
        vals in proptest::collection::vec(-1.0..1.0f64, 9),
        b in proptest::collection::vec(-1.0..1.0f64, 3),
    ) {
        let a = RMatrix::from_fn(3, 3, |r, c| {
            vals[r * 3 + c] + if r == c { 4.0 } else { 0.0 }
        });
        let bv = RVector::from_slice(&b);
        let x = a.solve(&bv).unwrap();
        let back = a.mul_vec(&x).unwrap();
        prop_assert!((&back - &bv).max_abs() < 1e-8);
    }

    /// Cholesky sampling: L·Lᵀ reconstructs any Gram-plus-ridge matrix.
    #[test]
    fn cholesky_reconstructs_gram(
        vals in proptest::collection::vec(-1.0..1.0f64, 12),
    ) {
        let a = RMatrix::from_fn(4, 3, |r, c| vals[r * 3 + c]);
        let mut g = a.gram();
        g.add_diagonal(0.5);
        let chol = RCholesky::new(&g).unwrap();
        let l = chol.factor();
        let recon = l.mul_mat(&l.transpose()).unwrap();
        prop_assert!((&recon - &g).max_abs() < 1e-10);
    }

    /// The network VJP is the exact adjoint of the JVP for random
    /// architectures, errors, parameters and tangents — the contract the
    /// Fisher products (and hence LCNG) depend on.
    #[test]
    fn network_adjoint_contract(
        seed in 0u64..500,
        layers in 1usize..4,
    ) {
        use rand::SeedableRng;
        use photon_zo::linalg::random::{normal_cvector, normal_rvector};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arch = Architecture::two_mesh_classifier(4, layers).unwrap();
        let (n_bs, n_ps) = arch.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(2.0), &mut rng);
        let net = arch.build_with_errors(&ev).unwrap();
        let mut theta = net.init_params(&mut rng);
        // Nonzero modReLU biases engage the nonlinear branch.
        for k in net.module_param_range(2) {
            theta[k] = 0.05;
        }
        let x = normal_cvector(4, &mut rng);
        let (_, tape) = net.forward_tape(&x, &theta);
        let dx = normal_cvector(4, &mut rng);
        let dtheta = normal_rvector(net.param_count(), &mut rng);
        let g = normal_cvector(4, &mut rng);

        let dy = net.jvp(&tape, &theta, &dx, &dtheta);
        let (gx, gtheta) = net.vjp(&tape, &theta, &g);
        let rdot = |a: &CVector, b: &CVector| -> f64 {
            a.iter().zip(b.iter()).map(|(u, v)| u.re * v.re + u.im * v.im).sum()
        };
        let lhs = rdot(&dy, &g);
        let rhs = rdot(&dx, &gx) + dtheta.dot(&gtheta).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Haar random unitaries stay unitary and norm-preserving.
    #[test]
    fn haar_unitaries_preserve_norm(seed in 0u64..500, n in 1usize..8) {
        use rand::SeedableRng;
        use photon_zo::linalg::random::{haar_unitary, normal_cvector};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = haar_unitary(n, &mut rng).unwrap();
        prop_assert!(u.is_unitary(1e-9));
        let x = normal_cvector(n, &mut rng);
        let y = u.mul_vec(&x).unwrap();
        prop_assert!((y.norm_sqr() - x.norm_sqr()).abs() < 1e-9 * (1.0 + x.norm_sqr()));
    }

    /// Hermitian eigendecomposition reconstructs PSD Gram matrices with
    /// non-negative spectra.
    #[test]
    fn hermitian_eig_on_gram(
        vals in proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 12),
    ) {
        use photon_zo::linalg::hermitian_eig;
        let a = CMatrix::from_fn(4, 3, |r, c| {
            let (re, im) = vals[r * 3 + c];
            C64::new(re, im)
        });
        let g = a.gram();
        let eig = hermitian_eig(&g).unwrap();
        for i in 0..3 {
            prop_assert!(eig.values[i] > -1e-9);
        }
        prop_assert!(eig.vectors.is_unitary(1e-8));
    }
}
