//! Property tests for the NNUE-style fast forward path: incremental
//! rank-1 serving from a pinned compile base, the opt-in f32 SIMD
//! evaluation tier, and the quantized i16 serving artifact must all track
//! the f64 interpreted walk within their documented tolerances, and the
//! drift-bound cadence must force a periodic full recompile.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use photon_zo::linalg::random::normal_cvector;
use photon_zo::linalg::CVector;
use photon_zo::photonics::{
    Architecture, BatchScratch, CompiledNetwork, ErrorModel, ErrorVector, FabricatedChip,
    NetworkScratch, PinnedBase, QuantizedNetwork, FORCED_RECOMPILE_PERIOD,
    MAX_INCREMENTAL_PHASES,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random sparse perturbation sequences (1..=K phases per request)
    /// interleaved with full-theta changes: a plan serving from a pinned
    /// base must match a fresh per-theta compile on every request, and
    /// sparse requests must actually be served incrementally.
    #[test]
    fn incremental_serving_matches_fresh_compile(
        arch_kind in 0usize..2,
        dim in 2usize..6,
        beta in 0.0f64..2.5,
        steps in proptest::collection::vec(
            (0usize..MAX_INCREMENTAL_PHASES + 1, any::<u64>()), 1..8),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = match arch_kind {
            0 => Architecture::single_mesh(dim, dim).unwrap(),
            _ => Architecture::two_mesh_classifier(dim, dim).unwrap(),
        };
        let (n_bs, n_ps) = arch.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(beta), &mut rng);
        let net = arch.build_with_errors(&ev).unwrap();
        let theta0 = net.init_params(&mut rng);
        let xs: Vec<CVector> = (0..3).map(|_| normal_cvector(dim, &mut rng)).collect();
        let refs: Vec<&CVector> = xs.iter().collect();

        let mut plan = CompiledNetwork::new();
        plan.set_pinned(PinnedBase::compile(&net, &theta0));
        let mut scratch = NetworkScratch::new();
        let mut sparse_requests = 0u64;
        for (n_phases, step_seed) in steps {
            let mut step_rng = StdRng::seed_from_u64(step_seed);
            // n_phases == 0 encodes a dense full-theta change (falls back
            // to a full compile); otherwise perturb 1..=K phases of the
            // pin. Single-phase updates are exact at any magnitude;
            // multi-phase ones only within the documented delta gate.
            let req = if n_phases == 0 {
                net.init_params(&mut step_rng)
            } else {
                let mut req = theta0.clone();
                for _ in 0..n_phases {
                    let k = (step_rng.next_u64() as usize) % req.len();
                    let mag = if n_phases == 1 { 0.5 } else { 1e-5 };
                    req[k] += mag * (step_rng.next_u64() as f64 / u64::MAX as f64 - 0.5);
                }
                sparse_requests += 1;
                req
            };
            let got = plan.forward_batch(&net, &req, &refs).clone();
            for (j, x) in xs.iter().enumerate() {
                let want = net.forward_into(x, &req, &mut scratch);
                for p in 0..want.len() {
                    prop_assert!(
                        (got.col(j)[p] - want[p]).abs() < 1e-6,
                        "step with {} phases: sample {} port {} diverges",
                        n_phases, j, p
                    );
                }
            }
        }
        let stats = plan.cache_stats();
        prop_assert_eq!(
            stats.incremental, sparse_requests,
            "every sparse request must be served incrementally"
        );
    }

    /// The opt-in f32 SIMD chip path stays within 1e-5 relative error of
    /// the f64 oracle chip on batched loss-bearing quantities.
    #[test]
    fn f32_fast_path_loss_error_is_bounded(
        dim in 2usize..7,
        batch in 1usize..6,
        beta in 0.0f64..2.5,
        pin in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(dim, dim).unwrap();
        let oracle = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(beta), &mut rng);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let fast = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(beta), &mut rng2)
            .with_f32_fast_path();
        let theta = oracle.init_params(&mut rng);
        let mut probe = theta.clone();
        if pin {
            fast.pin_compile_base(&theta);
            oracle.pin_compile_base(&theta);
            let k = (seed as usize) % probe.len();
            probe[k] += 0.3;
        }
        let xs: Vec<CVector> = (0..batch).map(|_| normal_cvector(dim, &mut rng)).collect();
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut s64 = BatchScratch::new();
        let mut s32 = BatchScratch::new();
        let want = oracle.forward_powers_batch_into(&refs, &probe, &mut s64).to_vec();
        let got = fast.forward_powers_batch_into(&refs, &probe, &mut s32).to_vec();
        for (j, (w, g)) in want.iter().zip(&got).enumerate() {
            let loss_w: f64 = w.iter().sum();
            let loss_g: f64 = g.iter().sum();
            let rel = (loss_w - loss_g).abs() / loss_w.abs().max(1e-12);
            prop_assert!(
                rel < 1e-5,
                "sample {}: relative loss error {:.3e} exceeds 1e-5", j, rel
            );
        }
    }

    /// Quantized serialization is byte-exact: parse ∘ serialize is the
    /// identity and serialize ∘ parse reproduces the input bytes.
    #[test]
    fn quantized_roundtrip_is_byte_exact(
        dim in 2usize..7,
        beta in 0.0f64..2.5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(dim, dim).unwrap();
        let (n_bs, n_ps) = arch.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(beta), &mut rng);
        let net = arch.build_with_errors(&ev).unwrap();
        let theta = net.init_params(&mut rng);
        let q = QuantizedNetwork::quantize(&net, &theta).expect("all-linear net");
        let bytes = q.to_bytes();
        let back = QuantizedNetwork::from_bytes(&bytes).expect("own bytes parse");
        prop_assert_eq!(&back, &q);
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}

/// The drift-bound cadence: a long-lived plan serving incrementally from
/// one pin must force a full recompile every `FORCED_RECOMPILE_PERIOD`
/// serves, observable in its cache stats.
#[test]
fn forced_recompile_cadence_fires() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = Architecture::single_mesh(3, 3).unwrap().build_ideal();
    let theta0 = net.init_params(&mut rng);
    let xs: Vec<CVector> = (0..2).map(|_| normal_cvector(3, &mut rng)).collect();
    let refs: Vec<&CVector> = xs.iter().collect();
    let mut plan = CompiledNetwork::new();
    plan.set_pinned(PinnedBase::compile(&net, &theta0));
    let mut scratch = NetworkScratch::new();
    for i in 0..=FORCED_RECOMPILE_PERIOD as usize {
        let mut req = theta0.clone();
        let k = i % req.len();
        req[k] += 0.1 + (i % 7) as f64 * 0.01;
        let got = plan.forward_batch(&net, &req, &refs).clone();
        let want = net.forward_into(&xs[0], &req, &mut scratch);
        for p in 0..want.len() {
            assert!((got.col(0)[p] - want[p]).abs() < 1e-9, "serve {i} diverged");
        }
    }
    let stats = plan.cache_stats();
    assert_eq!(stats.forced_recompiles, 1, "cadence must fire exactly once");
    assert_eq!(
        stats.incremental, FORCED_RECOMPILE_PERIOD,
        "all other serves stay incremental"
    );
}

/// The quantized tier's end metric: on a classification-style argmax
/// readout it must agree with the f64 network on at least 99.5 % of
/// samples.
#[test]
fn quantized_accuracy_delta_is_small() {
    let dim = 8;
    let mut rng = StdRng::seed_from_u64(17);
    let arch = Architecture::single_mesh(dim, dim).unwrap();
    let (n_bs, n_ps) = arch.error_slots();
    let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(1.0), &mut rng);
    let net = arch.build_with_errors(&ev).unwrap();
    let theta = net.init_params(&mut rng);
    let q = QuantizedNetwork::quantize(&net, &theta).expect("all-linear net");

    let samples = 400;
    let mut agree = 0usize;
    let mut scratch = NetworkScratch::new();
    for _ in 0..samples {
        let x = normal_cvector(dim, &mut rng);
        let exact = net.forward_into(&x, &theta, &mut scratch);
        let argmax_exact = (0..dim)
            .max_by(|&a, &b| {
                exact[a]
                    .norm_sqr()
                    .partial_cmp(&exact[b].norm_sqr())
                    .unwrap()
            })
            .unwrap();
        let served = q.forward_powers(&x);
        let argmax_q = (0..dim)
            .max_by(|&a, &b| served[a].partial_cmp(&served[b]).unwrap())
            .unwrap();
        if argmax_exact == argmax_q {
            agree += 1;
        }
    }
    let agreement = agree as f64 / samples as f64;
    assert!(
        agreement >= 0.995,
        "quantized argmax agreement {agreement:.4} below 99.5%"
    );
}
