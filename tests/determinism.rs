//! Determinism guarantee of the parallel evaluation engine: for noise-free
//! chips, every pooled evaluation path — batch losses, ZO gradient estimates,
//! LCNG directions, backprop gradients, and full training runs — produces
//! bitwise-identical results regardless of worker-pool size.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{
    build_task, chip_batch_loss_pooled, model_batch_loss_and_grad_pooled, Method, TaskSpec,
    TrainConfig, Trainer,
};
use photon_zo::exec::ExecPool;
use photon_zo::linalg::RVector;
use photon_zo::opt::{
    estimate_gradient_pooled, lcng_direction_pooled, LcngSettings, MetricSource, Perturbation,
    ZoSettings,
};

const POOLS: [usize; 3] = [2, 4, 8];

fn bits(v: &RVector) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn batch_loss_and_gradients_are_pool_size_invariant() {
    let task = build_task(&TaskSpec::quick(4), 41).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let theta = task.chip.init_params(&mut rng);
    let indices: Vec<usize> = (0..task.train.len()).collect();
    let serial = ExecPool::serial();

    let loss_serial =
        chip_batch_loss_pooled(&task.chip, &task.train, &indices, &task.head, &theta, &serial);
    let model = task.chip.oracle_network();
    let (bp_loss, bp_grad) = model_batch_loss_and_grad_pooled(
        &model, &task.train, &indices, &task.head, &theta, &serial,
    );

    for threads in POOLS {
        let pool = ExecPool::new(threads);
        let loss_pooled =
            chip_batch_loss_pooled(&task.chip, &task.train, &indices, &task.head, &theta, &pool);
        assert_eq!(
            loss_pooled.to_bits(),
            loss_serial.to_bits(),
            "chip batch loss diverged at {threads} threads"
        );
        let (lp, gp) = model_batch_loss_and_grad_pooled(
            &model, &task.train, &indices, &task.head, &theta, &pool,
        );
        assert_eq!(lp.to_bits(), bp_loss.to_bits());
        assert_eq!(bits(&gp), bits(&bp_grad), "BP gradient diverged at {threads} threads");
    }
}

#[test]
fn batched_compiled_paths_are_pool_size_invariant_across_blocks() {
    // 80 samples spans multiple fixed-size batch blocks, so this exercises
    // the block partition of the compiled GEMM paths, not just one panel.
    use photon_zo::core::{evaluate_chip_pooled, ClassificationHead};
    use photon_zo::data::GaussianClusters;
    use photon_zo::photonics::{Architecture, ErrorModel, FabricatedChip};

    let mut rng = StdRng::seed_from_u64(51);
    let arch = Architecture::single_mesh(4, 2).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let data = GaussianClusters::new(4, 4, 0.1)
        .generate(80, &mut rng)
        .unwrap();
    let head = ClassificationHead::new(4, 4, 10.0).unwrap();
    let theta = chip.init_params(&mut rng);
    let idx: Vec<usize> = (0..80).collect();

    let serial = ExecPool::serial();
    let loss_ref = chip_batch_loss_pooled(&chip, &data, &idx, &head, &theta, &serial);
    let ev_ref = evaluate_chip_pooled(&chip, &data, &head, &theta, &serial);

    for threads in [1usize, 3, 4] {
        let pool = ExecPool::new(threads);
        let loss = chip_batch_loss_pooled(&chip, &data, &idx, &head, &theta, &pool);
        assert_eq!(
            loss.to_bits(),
            loss_ref.to_bits(),
            "batched chip loss diverged at {threads} threads"
        );
        let ev = evaluate_chip_pooled(&chip, &data, &head, &theta, &pool);
        assert_eq!(
            ev.loss.to_bits(),
            ev_ref.loss.to_bits(),
            "batched evaluation loss diverged at {threads} threads"
        );
        assert_eq!(ev.accuracy, ev_ref.accuracy);
    }
    // Every pooled sweep above queried each sample exactly once.
    assert_eq!(chip.query_count(), 2 * 4 * 80);
}

#[test]
fn zo_estimates_and_lcng_directions_are_pool_size_invariant() {
    let task = build_task(&TaskSpec::quick(4), 43).unwrap();
    let mut rng = StdRng::seed_from_u64(44);
    let theta = task.chip.init_params(&mut rng);
    let indices: Vec<usize> = (0..task.train.len().min(8)).collect();
    let serial = ExecPool::serial();
    let loss =
        |t: &RVector| chip_batch_loss_pooled(&task.chip, &task.train, &indices, &task.head, t, &serial);
    let base = loss(&theta);
    let zo = ZoSettings {
        q: 12,
        mu: 1e-3,
        lambda: 1.0 / theta.len() as f64,
    };

    let mut rng_ref = StdRng::seed_from_u64(45);
    let est_ref =
        estimate_gradient_pooled(&loss, &theta, base, &zo, &Perturbation::Gaussian, &serial, &mut rng_ref);

    let model = task.chip.oracle_network();
    let fisher_inputs: Vec<_> = (0..2).map(|i| task.train.sample(i).0.clone()).collect();
    let metric = MetricSource::Model {
        model: &model,
        inputs: &fisher_inputs,
    };
    let settings = LcngSettings { zo, ridge: 1e-6 };
    let mut rng_ref = StdRng::seed_from_u64(46);
    let step_ref = lcng_direction_pooled(
        &loss,
        &theta,
        base,
        &settings,
        &Perturbation::Gaussian,
        &metric,
        &serial,
        &mut rng_ref,
    )
    .unwrap();

    for threads in POOLS {
        let pool = ExecPool::new(threads);
        let mut rng_t = StdRng::seed_from_u64(45);
        let est = estimate_gradient_pooled(
            &loss,
            &theta,
            base,
            &zo,
            &Perturbation::Gaussian,
            &pool,
            &mut rng_t,
        );
        assert_eq!(
            bits(&est.gradient),
            bits(&est_ref.gradient),
            "ZO gradient diverged at {threads} threads"
        );

        let mut rng_t = StdRng::seed_from_u64(46);
        let step = lcng_direction_pooled(
            &loss,
            &theta,
            base,
            &settings,
            &Perturbation::Gaussian,
            &metric,
            &pool,
            &mut rng_t,
        )
        .unwrap();
        assert_eq!(
            bits(&step.direction),
            bits(&step_ref.direction),
            "LCNG direction diverged at {threads} threads"
        );
    }
}

#[test]
fn full_training_runs_are_pool_size_invariant() {
    let spec = TaskSpec::quick(4);
    for method in [
        Method::ZoGaussian,
        Method::Lcng {
            model: photon_zo::core::ModelChoice::Ideal,
        },
    ] {
        let mut outcomes = Vec::new();
        for threads in [1usize, 4] {
            let task = build_task(&spec, 47).unwrap();
            let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
            let mut config = TrainConfig::quick(4);
            config.epochs = 2;
            config.threads = Some(threads);
            let mut rng = StdRng::seed_from_u64(48);
            outcomes.push(trainer.train(method, &config, &mut rng).unwrap());
        }
        let (serial, pooled) = (&outcomes[0], &outcomes[1]);
        assert_eq!(
            bits(&pooled.theta),
            bits(&serial.theta),
            "{method:?}: final parameters diverged between 1 and 4 threads"
        );
        for (a, b) in pooled.history.iter().zip(&serial.history) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        }
        assert_eq!(
            pooled.final_eval.loss.to_bits(),
            serial.final_eval.loss.to_bits()
        );
        assert_eq!(pooled.final_eval.accuracy, serial.final_eval.accuracy);
    }
}
