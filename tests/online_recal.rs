//! End-to-end tests of in-situ continual recalibration under live
//! traffic: a deployed theta on a drifting chip is probed, shadow
//! fine-tuned against the freshly calibrated model, canaried, and
//! atomically promoted — recovering accuracy close to a
//! freshly-calibrated offline control, bitwise-replayably across pool
//! sizes and controller restarts, while the serving simulator keeps the
//! probe traffic's p99 cost bounded.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{
    build_task, evaluate_chip_pooled, Method, ModelChoice, TaskSpec, TrainConfig,
};
use photon_zo::data::Dataset;
use photon_zo::exec::ExecPool;
use photon_zo::farm::{run_online, OnlineOptions, OnlineOutcome, ONLINE_WAL};
use photon_zo::faults::{DriftConfig, FaultPlan, FaultyChip};
use photon_zo::linalg::RVector;
use photon_zo::photonics::{ErrorVector, FabricatedChip, OnnChip};

const TASK_SEED: u64 = 17;
const THETA_SEED: u64 = 18;
const ROOT_SEED: u64 = 19;

fn drift_plan() -> FaultPlan {
    FaultPlan::new(41).with_drift(DriftConfig {
        sigma: 0.05,
        tau: 20.0,
    })
}

struct Scenario {
    chip: FaultyChip<FabricatedChip>,
    train: Dataset,
    test: Dataset,
    head: photon_zo::core::ClassificationHead,
}

/// A fresh drifting chip — fresh per run so the fault schedule replays.
fn fresh_chip() -> Scenario {
    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    Scenario {
        chip: FaultyChip::new(task.chip, drift_plan()),
        train: task.train,
        test: task.test,
        head: task.head,
    }
}

/// The deployment story: theta was trained offline on the just-fabricated
/// (not yet drifted) chip, then pinned and left serving while the chip
/// drifts away underneath it.
fn deployed_theta() -> RVector {
    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer = photon_zo::core::Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(task.chip.oracle_network());
    let mut config = TrainConfig::quick(4);
    config.epochs = 6;
    config.threads = Some(1);
    let mut rng = StdRng::seed_from_u64(THETA_SEED);
    trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap()
        .theta
}

fn options(cycles: usize, threads: Option<usize>) -> OnlineOptions {
    let mut shadow = TrainConfig::quick(4);
    shadow.epochs = 5;
    shadow.threads = threads;
    OnlineOptions::new(cycles, ROOT_SEED, shadow)
        .with_canary(8, 0.05)
        .with_canary_batch(5)
}

fn run_loop(dir: &std::path::Path, cycles: usize, threads: Option<usize>) -> OnlineOutcome {
    let sc = fresh_chip();
    let deployed = deployed_theta();
    let (n_bs, n_ps) = sc.chip.architecture().error_slots();
    run_online(
        &sc.chip,
        &sc.train,
        &sc.test,
        sc.head,
        &deployed,
        &ErrorVector::zeros(n_bs, n_ps),
        &options(cycles, threads),
        dir,
    )
    .unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("photon-online-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn theta_bits(v: &RVector) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn online_recalibration_recovers_accuracy_and_promotes() {
    let dir = tmp_dir("recover");
    let outcome = run_loop(&dir, 2, Some(1));
    assert!(
        outcome.promotions >= 1,
        "the fine-tuned shadow must win at least one canary: {:?}",
        outcome
            .cycles
            .iter()
            .map(|c| (c.promoted, c.p_value, c.baseline_loss, c.shadow_loss))
            .collect::<Vec<_>>()
    );
    let final_step = outcome.cycles.last().unwrap().next_step;

    // No-recal baseline: the original deployment left to drift to the same
    // final step. The online loop must not do worse, and with a promotion
    // in hand it should do strictly better on loss.
    let sc = fresh_chip();
    let stale = deployed_theta();
    sc.chip.advance_to(final_step);
    sc.chip.pin_compile_base(&stale);
    let pool = ExecPool::with_threads(Some(1));
    let baseline = evaluate_chip_pooled(&sc.chip, &sc.test, &sc.head, &stale, &pool);
    assert!(
        outcome.final_eval.accuracy >= baseline.accuracy,
        "online {} vs stale baseline {}",
        outcome.final_eval.accuracy,
        baseline.accuracy
    );
    assert!(
        outcome.final_eval.loss < baseline.loss,
        "online loss {} must beat stale loss {}",
        outcome.final_eval.loss,
        baseline.loss
    );

    // Freshly-calibrated offline control: calibrate a fresh instance of
    // the same drifting chip, then train offline from scratch with the
    // same total epoch budget. Online must land within 2% accuracy.
    let sc = fresh_chip();
    let (n_bs, n_ps) = sc.chip.architecture().error_slots();
    let mut crng = StdRng::seed_from_u64(901);
    let cal = photon_zo::calib::recalibrate(
        &sc.chip,
        &ErrorVector::zeros(n_bs, n_ps),
        &photon_zo::calib::CalibrationSettings::default(),
        &mut crng,
    )
    .unwrap();
    let mut config = TrainConfig::quick(4);
    config.epochs = 10; // same budget as 2 cycles x 5 shadow epochs
    config.threads = Some(1);
    let trainer = photon_zo::core::Trainer::new(&sc.chip, &sc.train, &sc.test, sc.head)
        .with_calibrated_model(cal.model);
    let mut rng = StdRng::seed_from_u64(ROOT_SEED);
    let control = trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap();
    assert!(
        outcome.final_eval.accuracy >= control.final_eval.accuracy - 0.02,
        "online {} must be within 2% of offline control {}",
        outcome.final_eval.accuracy,
        control.final_eval.accuracy
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn online_loop_replays_bitwise_across_pool_sizes() {
    let dir1 = tmp_dir("threads1");
    let dir3 = tmp_dir("threads3");
    let a = run_loop(&dir1, 2, Some(1));
    let b = run_loop(&dir3, 2, Some(3));
    assert_eq!(
        theta_bits(&a.deployed),
        theta_bits(&b.deployed),
        "deployed theta must not depend on pool size"
    );
    assert_eq!(a.promotions, b.promotions);
    for (ca, cb) in a.cycles.iter().zip(&b.cycles) {
        assert_eq!(ca.p_value.to_bits(), cb.p_value.to_bits());
        assert_eq!(ca.shadow_loss.to_bits(), cb.shadow_loss.to_bits());
    }
    let wal1 = std::fs::read(dir1.join(ONLINE_WAL)).unwrap();
    let wal3 = std::fs::read(dir3.join(ONLINE_WAL)).unwrap();
    assert_eq!(wal1, wal3, "write-ahead journals must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir3);
}

#[test]
fn online_loop_is_idempotent_across_restarts() {
    // One uninterrupted two-cycle run...
    let full_dir = tmp_dir("idem-full");
    let full = run_loop(&full_dir, 2, Some(1));
    // ...must equal a run stopped after cycle 1 and restarted (fresh
    // process, fresh chip handle) asking for two cycles.
    let split_dir = tmp_dir("idem-split");
    let first = run_loop(&split_dir, 1, Some(1));
    assert_eq!(first.cycles.len(), 1);
    let resumed = run_loop(&split_dir, 2, Some(1));
    assert_eq!(resumed.cycles.len(), 2);
    assert_eq!(
        theta_bits(&full.deployed),
        theta_bits(&resumed.deployed),
        "restart must not change the deployment"
    );
    assert_eq!(
        std::fs::read(full_dir.join(ONLINE_WAL)).unwrap(),
        std::fs::read(split_dir.join(ONLINE_WAL)).unwrap(),
        "journals must be byte-identical after the restart"
    );
    assert_eq!(
        full.final_eval.accuracy.to_bits(),
        resumed.final_eval.accuracy.to_bits()
    );
    // A third invocation with nothing left to do replays everything and
    // changes nothing.
    let replayed = run_loop(&split_dir, 2, Some(1));
    assert_eq!(theta_bits(&replayed.deployed), theta_bits(&full.deployed));
    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&split_dir);
}

#[test]
fn probe_piggybacking_keeps_p99_bounded_in_the_serving_sim() {
    use photon_zo::farm::CoalescePolicy;
    use photon_zo::sim::{run, ArrivalProcess, ProbeTraffic, SimConfig, TenantLoad};

    let base_cfg = || {
        SimConfig::new(5, 40_000_000) // 40 virtual ms
            .with_tenant(TenantLoad::new(
                "svc",
                ArrivalProcess::Poisson { rate_hz: 9_000.0 },
            ))
            .with_coalescer(CoalescePolicy::new(8, 150_000))
    };
    let quiet = run(&base_cfg());
    let probed = run(&base_cfg().with_probes(ProbeTraffic {
        start_ns: 1_000_000,
        total: 200,
        per_window: 4,
        window_ns: 500_000,
    }));
    assert_eq!(probed.probes, 200, "all probes must complete");
    let p99 = |r: &photon_zo::sim::ServingReport| r.tenants[0].p99_ns;
    assert!(
        p99(&probed) <= 1.5 * p99(&quiet),
        "probe traffic must keep p99 within 1.5x the probe-free baseline: {} vs {}",
        p99(&probed),
        p99(&quiet)
    );
}
