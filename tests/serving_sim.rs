//! Integration tests for the discrete-event serving simulator: bitwise
//! determinism (across runs and `PHOTON_THREADS` settings), the microbatch
//! coalescing throughput claim, chip-query reconciliation for real-chip
//! runs, and shed accounting under overload.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::farm::CoalescePolicy;
use photon_zo::photonics::{Architecture, ErrorModel, FabricatedChip};
use photon_zo::sim::{
    run, run_on_chip, ArrivalProcess, RecalTraffic, SimConfig, TenantLoad,
};

fn smoke_cfg(seed: u64) -> SimConfig {
    SimConfig::new(seed, 20_000_000)
        .with_label("integration-smoke")
        .with_workers(2)
        .with_tenant(TenantLoad::new(
            "poisson",
            ArrivalProcess::Poisson { rate_hz: 80_000.0 },
        ))
        .with_tenant(TenantLoad::new(
            "bursty",
            ArrivalProcess::Bursty {
                on_rate_hz: 150_000.0,
                off_rate_hz: 10_000.0,
                mean_on_ns: 2_000_000.0,
                mean_off_ns: 3_000_000.0,
            },
        ))
        .with_recalibration(RecalTraffic {
            start_ns: 2_000_000,
            period_ns: 7_000_000,
        })
        .with_coalescer(CoalescePolicy::new(16, 100_000))
}

#[test]
fn report_is_bitwise_deterministic_across_runs_and_thread_settings() {
    let cfg = smoke_cfg(2024);
    let baseline = run(&cfg).to_json();

    // Replay: same config, same bytes.
    assert_eq!(baseline, run(&cfg).to_json());

    // The simulator runs in virtual time and must be oblivious to the
    // worker-pool environment knob the rest of the repo honors.
    for threads in ["1", "2", "7"] {
        std::env::set_var("PHOTON_THREADS", threads);
        assert_eq!(
            baseline,
            run(&cfg).to_json(),
            "PHOTON_THREADS={threads} changed the simulated report"
        );
    }
    std::env::remove_var("PHOTON_THREADS");

    // Text rendering is deterministic too (ci diffs it across runs).
    assert_eq!(run(&cfg).render(), run(&cfg).render());

    // And the seed actually matters.
    assert_ne!(baseline, run(&smoke_cfg(2025)).to_json());
}

#[test]
fn coalescing_doubles_saturation_throughput() {
    // The ISSUE deliverable: on the 8x8-calibrated cost model under
    // open-loop overload, draining microbatches of 16 lifts saturation
    // throughput >= 2x without worsening p99.
    let overload = |coalescer: CoalescePolicy| {
        let cfg = SimConfig::new(77, 50_000_000)
            .with_tenant(
                TenantLoad::new("flood", ArrivalProcess::Poisson { rate_hz: 500_000.0 })
                    .with_queue_cap(512),
            )
            .with_coalescer(coalescer);
        run(&cfg)
    };
    let un = overload(CoalescePolicy::uncoalesced());
    let co = overload(CoalescePolicy::new(16, 100_000));
    assert!(
        co.aggregate.throughput_rps >= 2.0 * un.aggregate.throughput_rps,
        "coalesced {:.0} rps vs uncoalesced {:.0} rps",
        co.aggregate.throughput_rps,
        un.aggregate.throughput_rps
    );
    assert!(
        co.aggregate.p99_ns <= un.aggregate.p99_ns,
        "coalescing must not worsen p99 under overload: {:.0} vs {:.0}",
        co.aggregate.p99_ns,
        un.aggregate.p99_ns
    );
}

#[test]
fn chip_runs_reconcile_query_counts_and_replay_bitwise() {
    let mut rng = StdRng::seed_from_u64(5);
    let arch = Architecture::single_mesh(4, 4).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    chip.pin_compile_base(&theta);

    let cfg = SimConfig::new(9, 5_000_000)
        .with_label("chip-backed")
        .with_tenant(TenantLoad::new(
            "t",
            ArrivalProcess::Poisson { rate_hz: 40_000.0 },
        ))
        .with_coalescer(CoalescePolicy::new(8, 50_000));

    let before = chip.query_count();
    let report = run_on_chip(&cfg, &chip);
    let spent = chip.query_count() - before;

    // Every simulated completion cost exactly one real chip query.
    assert_eq!(report.chip_queries, Some(report.aggregate.completed));
    assert_eq!(spent, report.aggregate.completed);
    assert!(report.aggregate.completed > 0);

    // The chip-backed run replays bitwise too (chip state is read-only
    // through the pinned path, so a second run sees the same chip).
    assert_eq!(report.to_json(), run_on_chip(&cfg, &chip).to_json());

    // The model-only run of the same config agrees on everything except
    // the chip-query field.
    let model_only = run(&cfg);
    assert_eq!(model_only.chip_queries, None);
    assert_eq!(model_only.aggregate.completed, report.aggregate.completed);
    assert_eq!(model_only.aggregate.p999_ns, report.aggregate.p999_ns);
}

#[test]
#[should_panic(expected = "pinned compile base")]
fn chip_runs_require_a_pinned_base() {
    let mut rng = StdRng::seed_from_u64(6);
    let arch = Architecture::single_mesh(4, 4).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let cfg = SimConfig::new(1, 1_000_000).with_tenant(TenantLoad::new(
        "t",
        ArrivalProcess::Poisson { rate_hz: 1_000.0 },
    ));
    let _ = run_on_chip(&cfg, &chip);
}

#[test]
fn overload_sheds_are_accounted_per_tenant() {
    let cfg = SimConfig::new(13, 10_000_000)
        .with_tenant(
            TenantLoad::new("flood", ArrivalProcess::Poisson { rate_hz: 600_000.0 })
                .with_queue_cap(32),
        )
        .with_tenant(TenantLoad::new(
            "calm",
            ArrivalProcess::Poisson { rate_hz: 1_000.0 },
        ));
    let report = run(&cfg);
    let flood = &report.tenants[0];
    let calm = &report.tenants[1];
    assert!(flood.shed > 0, "cap-32 queue under 600k rps must shed");
    assert_eq!(flood.arrivals, flood.completed + flood.shed);
    assert_eq!(calm.shed, 0, "the calm tenant's queue never fills");
    assert_eq!(calm.arrivals, calm.completed);
    assert!(flood.peak_queue_depth <= 32);
    assert_eq!(
        report.aggregate.arrivals,
        report.aggregate.completed + report.aggregate.shed
    );
}
