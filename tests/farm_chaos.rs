//! Chaos gate for the multi-tenant chip farm: under a seeded schedule of
//! worker kills, forced quarantines, and hang-prone lab links, every
//! submitted job must end `Completed` — with results **bitwise equal** to
//! an uninterrupted single-chip run of the same spec — or `Rejected` with a
//! typed reason. No job may be lost or corrupted, and the per-tenant,
//! per-worker, and per-job query ledgers must reconcile exactly, both in
//! the farm report and in the emitted telemetry.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use photon_zo::core::{
    build_task, DurableOptions, Method, RunOutcome, TaskSpec, TrainConfig, TrainOutcome, Trainer,
    WatchdogPolicy,
};
use photon_zo::farm::{
    ChaosPlan, ChipHealth, Farm, FarmConfig, HealthPolicy, JobSpec, RejectReason, TenantSpec,
    WorkerSpec,
};
use photon_zo::faults::{FaultPlan, FaultyChip};
use photon_zo::trace::{TraceEvent, TraceHandle};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("photon-farm-chaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A fast watchdog so hung attempts are discarded in milliseconds, not the
/// 30 s lab default.
fn fast_watchdog() -> WatchdogPolicy {
    WatchdogPolicy {
        deadline: Duration::from_millis(300),
        max_timeouts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        jitter_seed: 5,
    }
}

fn job(name: &str, tenant: &str, epochs: usize, task_seed: u64, root_seed: u64) -> JobSpec {
    let mut config = TrainConfig::quick(3);
    config.epochs = epochs;
    config.warm_epochs = 2;
    config.threads = Some(1);
    JobSpec::new(name, tenant, TaskSpec::quick(3), Method::ZoGaussian, config)
        .with_task_seed(task_seed)
        .with_root_seed(root_seed)
}

/// The uninterrupted single-chip control for a job spec: the same chip
/// recipe, the same durable runtime, no farm, no slicing, no faults beyond
/// the job's own plan.
fn solo_baseline(dir: &Path, spec: &JobSpec) -> TrainOutcome {
    let task = build_task(&spec.task, spec.task_seed).expect("baseline task");
    let plan = spec
        .chip_faults
        .clone()
        .unwrap_or_else(|| FaultPlan::new(spec.task_seed));
    let chip = FaultyChip::new(task.chip, plan);
    let trainer = Trainer::new(&chip, &task.train, &task.test, task.head);
    let opts = DurableOptions::new(dir.join(format!("solo-{}.journal", spec.name)), spec.root_seed);
    match trainer
        .train_durable(spec.method, &spec.config, &opts)
        .expect("baseline run")
    {
        RunOutcome::Completed(out) => out,
        RunOutcome::Aborted { reason, .. } => panic!("baseline aborted: {reason:?}"),
    }
}

#[test]
fn chaos_farm_loses_no_jobs_and_preserves_bitwise_results() {
    let dir = tmp_dir("main");
    let (trace, sink) = TraceHandle::memory(0);

    // Three workers: w0 is healthy but scripted to die mid-slice on its
    // second dispatch; w1's lab link hangs so often the watchdog will
    // quarantine it; w2 is clean and immortal, guaranteeing liveness.
    let workers = vec![
        WorkerSpec::clean("w0"),
        WorkerSpec::hanging("w1", 0.02, 3),
        WorkerSpec::clean("w2"),
    ];
    let chaos = ChaosPlan::none().with_kill("w0", 2, 1);
    let tenants = vec![
        TenantSpec::new("alice").with_quantum(2),
        TenantSpec::new("bob").with_quantum(3),
    ];
    let config = FarmConfig::new(&dir)
        .with_watchdog(fast_watchdog())
        .with_health(HealthPolicy::strict())
        .with_chaos(chaos)
        .with_trace(trace);
    let mut farm = Farm::new(config, workers, tenants);

    let specs = vec![
        job("a0", "alice", 5, 11, 21),
        job("a1", "alice", 3, 12, 22),
        job("b0", "bob", 4, 13, 23),
        job("b1", "bob", 2, 14, 24),
    ];
    for spec in &specs {
        farm.submit(spec.clone()).expect("admission");
    }
    let report = farm.run();

    // Invariant 1: no job is ever lost — every submission reaches a
    // terminal state.
    assert_eq!(report.lost(), 0, "jobs lost: {report:?}");
    assert_eq!(report.jobs.len(), specs.len());

    // Invariant 2: with one immortal clean worker, every job completes,
    // and each completed result is bitwise identical to its uninterrupted
    // single-chip control — whatever kills, migrations, and discarded
    // hung attempts happened along the way.
    for spec in &specs {
        let farmed = report
            .completed(&spec.name)
            .unwrap_or_else(|| panic!("job {} did not complete: {report:?}", spec.name));
        let baseline = solo_baseline(&dir, spec);
        assert_eq!(
            farmed.theta.as_slice(),
            baseline.theta.as_slice(),
            "job {}: farmed theta diverged from solo baseline",
            spec.name
        );
        assert_eq!(farmed.history.len(), baseline.history.len());
        for (f, b) in farmed.history.iter().zip(baseline.history.iter()) {
            assert_eq!(f.train_loss.to_bits(), b.train_loss.to_bits());
        }
        assert_eq!(
            farmed.final_eval.accuracy.to_bits(),
            baseline.final_eval.accuracy.to_bits()
        );
    }

    // Invariant 3: the scripted kill landed and the job it interrupted
    // migrated instead of dying with its worker.
    let w0 = report.workers.iter().find(|w| w.name == "w0").unwrap();
    assert_eq!(w0.health, ChipHealth::Dead, "w0 must be chaos-killed");
    let migrations: u32 = report.jobs.iter().map(|j| j.migrations).sum();
    assert!(migrations >= 1, "the kill must force at least one migration");

    // Invariant 4: ledgers reconcile across all three axes.
    assert!(report.ledgers_reconcile(), "{report:?}");
    let by_tenant: u64 = report.tenants.iter().map(|t| t.queries).sum();
    let by_worker: u64 = report.workers.iter().map(|w| w.queries).sum();
    assert_eq!(by_tenant, by_worker);

    // Invariant 5: the telemetry stream agrees with the report — one
    // tenant_ledger event per tenant carrying the same totals, and the
    // scripted kill shows up as a chip_health transition to "dead".
    let events = sink.events();
    for t in &report.tenants {
        let ledger = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::TenantLedger {
                    tenant,
                    queries,
                    jobs_completed,
                    jobs_rejected,
                } if tenant == &t.name => Some((*queries, *jobs_completed, *jobs_rejected)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no tenant_ledger event for {}", t.name));
        assert_eq!(ledger, (t.queries, t.completed, t.rejected));
    }
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::ChipHealth { worker, to, .. } if worker == "w0" && to == "dead"
        )),
        "missing chip_health event for the scripted kill"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn admission_and_shed_rejections_are_typed_and_accounted() {
    let dir = tmp_dir("reject");
    let (trace, sink) = TraceHandle::memory(0);
    let config = FarmConfig::new(&dir)
        .with_watchdog(fast_watchdog())
        .with_trace(trace);
    let mut farm = Farm::new(
        config,
        vec![WorkerSpec::clean("w0")],
        vec![
            // A tenant whose budget dies after the first slice, and one
            // whose queue holds a single job.
            TenantSpec::new("metered").with_query_budget(1).with_quantum(8),
            TenantSpec::new("queued").with_queue_cap(1),
        ],
    );
    farm.submit(job("m0", "metered", 2, 31, 41)).expect("m0");
    farm.submit(job("m1", "metered", 2, 32, 42)).expect("m1");
    farm.submit(job("q0", "queued", 2, 33, 43)).expect("q0");
    let err = farm.submit(job("q1", "queued", 2, 34, 44)).unwrap_err();
    assert_eq!(err.reason, RejectReason::QueueFull { cap: 1 });
    let err = farm.submit(job("x0", "ghost", 2, 35, 45)).unwrap_err();
    assert_eq!(err.reason, RejectReason::UnknownTenant);

    let report = farm.run();
    assert_eq!(report.lost(), 0);
    assert_eq!(report.jobs.len(), 5, "rejected submissions stay on the ledger");
    assert!(report.completed("m0").is_some());
    assert!(matches!(
        report.jobs[1].result.as_ref().unwrap().rejected(),
        Some(RejectReason::BudgetExhausted { budget: 1, .. })
    ));
    assert!(report.completed("q0").is_some());
    assert!(report.ledgers_reconcile());

    // Every rejection surfaced as a job_state event with state
    // "rejected".
    let rejected_events = sink
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::JobState { state, .. } if state == "rejected"))
        .count();
    assert_eq!(rejected_events, 3, "m1 shed + q1 queue-full + x0 unknown tenant");

    let _ = fs::remove_dir_all(&dir);
}
