//! Structured-telemetry integration tests: the query ledger must reconcile
//! exactly with the chip's own query counter, and attaching any trace sink
//! must leave training bitwise identical (telemetry is observation-only).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::calib::{calibrate_traced, CalibrationSettings};
use photon_zo::core::{
    build_task, DurableOptions, Method, ModelChoice, RunJournal, TaskSpec, TrainConfig, Trainer,
};
use photon_zo::faults::{FaultPlan, FaultyChip, TransientConfig};
use photon_zo::linalg::RVector;
use photon_zo::photonics::OnnChip;
use photon_zo::trace::{
    JsonlSink, LedgerCounts, MemorySink, QueryCategory, TraceEvent, TraceHandle, TraceSink,
};

fn bits(v: &RVector) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn query_ledger_reconciles_with_chip_query_count() {
    let (trace, sink) = TraceHandle::memory(0);
    let task = build_task(&TaskSpec::quick(4), 11).unwrap();
    assert_eq!(task.chip.query_count(), 0, "chip must start unqueried");

    let mut rng = StdRng::seed_from_u64(12);
    let calibration = calibrate_traced(
        &task.chip,
        &CalibrationSettings::default(),
        &mut rng,
        &trace,
    )
    .unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(calibration.model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 3;
    config.eval_every = 2;
    config.trace = trace;
    let outcome = trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap();

    // Every chip query — calibration sweep, probes, batch losses, evals —
    // must be attributed to exactly one ledger category, so the ledgered
    // total telescopes to the chip's own counter.
    let events = sink.events();
    let mut ledger = LedgerCounts::new();
    for event in &events {
        if let TraceEvent::QueryLedger {
            category, queries, ..
        } = event
        {
            ledger.add(*category, *queries);
        }
    }
    assert_eq!(
        ledger.total(),
        task.chip.query_count(),
        "ledger must reconcile with the chip's query counter"
    );
    assert_eq!(
        ledger.get(QueryCategory::Calibration),
        calibration.chip_queries as u64,
        "epoch-0 calibration spend must be ledgered"
    );
    // The model-based Fisher metric is the paper's point: zero chip spend.
    assert_eq!(ledger.get(QueryCategory::Fisher), 0);
    assert!(ledger.get(QueryCategory::Probe) > 0);
    assert!(ledger.get(QueryCategory::Eval) > 0);

    // RunEnd carries the reconciliation totals for external checkers.
    let run_end = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::RunEnd {
                training_queries,
                eval_queries,
                run_queries,
                chip_query_count,
                ..
            } => Some((*training_queries, *eval_queries, *run_queries, *chip_query_count)),
            _ => None,
        })
        .expect("traced run must emit run_end");
    assert_eq!(run_end.0, outcome.training_queries);
    assert_eq!(run_end.0 + run_end.1, run_end.2);
    assert_eq!(run_end.3, task.chip.query_count());
}

#[test]
fn faulty_traced_run_reconciles_and_reports_faults() {
    let (trace, sink) = TraceHandle::memory(0);
    let task = build_task(&TaskSpec::quick(4), 21).unwrap();
    let model = task.chip.oracle_network();
    let plan = FaultPlan::new(22).with_transients(TransientConfig {
        drop_prob: 0.05,
        spike_prob: 0.05,
        ..TransientConfig::default()
    });
    let faulty = FaultyChip::new(task.chip, plan).with_trace(trace.clone());
    let trainer =
        Trainer::new(&faulty, &task.train, &task.test, task.head).with_calibrated_model(model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 3;
    config.recovery = photon_zo::core::RecoveryPolicy::standard();
    config.trace = trace;
    let mut rng = StdRng::seed_from_u64(23);
    trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap();

    let events = sink.events();
    let ledgered: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::QueryLedger { queries, .. } => Some(*queries),
            _ => None,
        })
        .sum();
    assert_eq!(
        ledgered,
        faulty.query_count(),
        "ledger must reconcile through the fault-injection layer"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::FaultStats { .. })),
        "a faulting traced chip must emit fault_stats"
    );
}

#[test]
fn trace_sinks_leave_training_bitwise_identical_across_pool_sizes() {
    let run = |threads: usize, trace: TraceHandle| {
        let task = build_task(&TaskSpec::quick(4), 47).unwrap();
        let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
            .with_calibrated_model(task.chip.oracle_network());
        let mut config = TrainConfig::quick(4);
        config.epochs = 2;
        config.threads = Some(threads);
        config.trace = trace;
        let mut rng = StdRng::seed_from_u64(48);
        trainer
            .train(
                Method::Lcng {
                    model: ModelChoice::Ideal,
                },
                &config,
                &mut rng,
            )
            .unwrap()
    };

    let reference = run(1, TraceHandle::null());
    let ref_theta = bits(&reference.theta);
    let ref_losses: Vec<u64> = reference
        .history
        .iter()
        .map(|h| h.train_loss.to_bits())
        .collect();

    let jsonl_path = std::env::temp_dir().join("photon_zo_telemetry_determinism.jsonl");
    for threads in [1usize, 3, 4] {
        for sink in ["null", "jsonl", "memory"] {
            let trace = match sink {
                "null" => TraceHandle::null(),
                "jsonl" => TraceHandle::new(
                    Arc::new(JsonlSink::create(&jsonl_path).unwrap()) as Arc<dyn TraceSink>
                ),
                _ => TraceHandle::new(Arc::new(MemorySink::new(0)) as Arc<dyn TraceSink>),
            };
            let out = run(threads, trace);
            assert_eq!(
                bits(&out.theta),
                ref_theta,
                "theta diverged with {sink} sink at {threads} threads"
            );
            let losses: Vec<u64> = out.history.iter().map(|h| h.train_loss.to_bits()).collect();
            assert_eq!(
                losses, ref_losses,
                "losses diverged with {sink} sink at {threads} threads"
            );
            assert_eq!(
                out.final_eval.loss.to_bits(),
                reference.final_eval.loss.to_bits()
            );
            assert_eq!(out.training_queries, reference.training_queries);
        }
    }
    let _ = std::fs::remove_file(&jsonl_path);
}

#[test]
fn jsonl_artifact_is_parseable_line_json() {
    let jsonl_path = std::env::temp_dir().join("photon_zo_telemetry_artifact.jsonl");
    let trace = TraceHandle::jsonl(&jsonl_path).unwrap();
    let task = build_task(&TaskSpec::quick(4), 31).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(task.chip.oracle_network());
    let mut config = TrainConfig::quick(4);
    config.epochs = 2;
    config.trace = trace.clone();
    let mut rng = StdRng::seed_from_u64(32);
    trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Ideal,
            },
            &config,
            &mut rng,
        )
        .unwrap();
    trace.flush();

    let text = std::fs::read_to_string(&jsonl_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 5, "expected a run's worth of events");
    assert!(lines[0].contains("\"type\":\"run_start\""));
    assert!(lines.last().unwrap().contains("\"type\":\"run_end\""));
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"type\":"),
            "malformed JSONL line: {line}"
        );
    }
    let _ = std::fs::remove_file(&jsonl_path);
}

#[test]
fn durable_run_flushes_journal_and_resumed_ledger_reconciles() {
    let dir = std::env::temp_dir().join(format!(
        "photon-telemetry-durable-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let mut config = TrainConfig::quick(4);
    config.epochs = 3;
    config.eval_every = 2;
    config.threads = Some(1);

    // Control: an uninterrupted durable run. Every epoch must land on disk
    // before the run moves on, and say so via a journal_flush event.
    let (trace_a, sink_a) = TraceHandle::memory(0);
    let mut config_a = config.clone();
    config_a.trace = trace_a;
    let task = build_task(&TaskSpec::quick(4), 11).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let path = dir.join("run.journal");
    let control = trainer
        .train_durable(
            Method::ZoGaussian,
            &config_a,
            &DurableOptions::new(&path, 5),
        )
        .unwrap()
        .completed()
        .unwrap();

    let flushes: Vec<(u64, u64)> = sink_a
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::JournalFlush { epoch, records, .. } => Some((*epoch, *records)),
            _ => None,
        })
        .collect();
    assert_eq!(flushes.len(), config.epochs, "one flush per epoch");
    for (i, (epoch, records)) in flushes.iter().enumerate() {
        assert_eq!(*epoch, (i + 1) as u64);
        // Per-handle record count includes the header frame.
        assert_eq!(*records, (i + 2) as u64);
    }

    // Kill simulation at an exact frame boundary: rewrite the journal with
    // the last epoch record dropped, so the pre-kill ledger total is known.
    let replay = RunJournal::replay(&path).unwrap();
    let killed_path = dir.join("killed.journal");
    let mut killed = RunJournal::create(&killed_path, &replay.header).unwrap();
    let kept = &replay.entries[..replay.entries.len() - 1];
    for entry in kept {
        killed.append_epoch(entry).unwrap();
    }
    drop(killed);
    let pre_kill_total = kept.last().unwrap().state.ledger.total();
    assert!(pre_kill_total > 0, "journaled ledger must carry real spend");

    // Resume on a freshly fabricated identical chip whose query counter is
    // back at zero: the restored ledger bridges the two process windows.
    let (trace_b, sink_b) = TraceHandle::memory(0);
    let mut config_b = config.clone();
    config_b.trace = trace_b;
    let task2 = build_task(&TaskSpec::quick(4), 11).unwrap();
    let trainer2 = Trainer::new(&task2.chip, &task2.train, &task2.test, task2.head);
    let resumed = trainer2
        .resume(&config_b, &DurableOptions::new(&killed_path, 5))
        .unwrap()
        .completed()
        .unwrap();
    assert_eq!(resumed.training_queries, control.training_queries);

    let events = sink_b.events();
    let resume_event = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Resume {
                epoch,
                records_replayed,
                truncated_bytes,
            } => Some((*epoch, *records_replayed, *truncated_bytes)),
            _ => None,
        })
        .expect("resumed run must emit a resume event");
    assert_eq!(resume_event.0, kept.len() as u64);
    assert_eq!(resume_event.1, kept.len() as u64);
    assert_eq!(resume_event.2, 0);

    // This window's ledger entries cover exactly the fresh chip's spend...
    let window_delta: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::QueryLedger { queries, .. } => Some(*queries),
            _ => None,
        })
        .sum();
    assert_eq!(window_delta, task2.chip.query_count());

    // ...and the run total telescopes: pre-kill spend + post-resume delta.
    let run_queries = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::RunEnd { run_queries, .. } => Some(*run_queries),
            _ => None,
        })
        .expect("resumed run must emit run_end");
    assert_eq!(run_queries, pre_kill_total + window_delta);
    let _ = std::fs::remove_dir_all(&dir);
}
