//! Behavioural integration tests of the method grid: determinism,
//! method-specific mechanics and cross-method sanity orderings that must
//! hold even at miniature scale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{build_task, Method, ModelChoice, TaskSpec, TrainConfig, Trainer};

fn quick(epochs: usize) -> TrainConfig {
    let mut c = TrainConfig::quick(4);
    c.epochs = epochs;
    c
}

#[test]
fn training_is_fully_deterministic_per_seed() {
    let spec = TaskSpec::quick(4);
    let config = quick(4);
    let run = |seed: u64| {
        let task = build_task(&spec, 77).unwrap();
        let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
            .with_calibrated_model(task.chip.oracle_network());
        let mut rng = StdRng::seed_from_u64(seed);
        trainer
            .train(
                Method::Lcng {
                    model: ModelChoice::Calibrated,
                },
                &config,
                &mut rng,
            )
            .unwrap()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.theta, b.theta, "same seed must give identical parameters");
    let c = run(6);
    assert_ne!(a.theta, c.theta, "different seeds must explore differently");
}

#[test]
fn shaped_probes_train_and_respect_structure() {
    // ZO-Σ must run end-to-end and actually perturb layered and
    // non-layered blocks with different statistics (implicitly: it trains).
    let spec = TaskSpec {
        train_size: 120,
        test_size: 60,
        ..TaskSpec::quick(4)
    };
    let task = build_task(&spec, 88).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let mut rng = StdRng::seed_from_u64(89);
    let out = trainer
        .train(
            Method::ZoShaped {
                model: ModelChoice::Ideal,
            },
            &quick(6),
            &mut rng,
        )
        .unwrap();
    assert!(
        out.final_eval.accuracy > 0.3,
        "acc {}",
        out.final_eval.accuracy
    );
    assert_eq!(out.method, "ZO-S(ideal)");
}

#[test]
fn coordinate_zo_touches_every_coordinate_over_an_epoch_cycle() {
    // With Q probes per iteration and offset cycling, N/Q iterations cover
    // all coordinates; verify via parameter movement: after enough
    // iterations every coordinate should have moved from warm start.
    let spec = TaskSpec {
        train_size: 64,
        test_size: 32,
        ..TaskSpec::quick(4)
    };
    let task = build_task(&spec, 99).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let mut config = quick(6);
    config.batch_size = 16;
    let mut rng = StdRng::seed_from_u64(100);
    let theta0 = trainer.warm_start(&config, &mut rng);
    let mut theta = theta0.clone();
    let _ = trainer
        .finetune(Method::ZoCoordinate, &config, &mut theta, &mut rng)
        .unwrap();
    let moved: Vec<usize> = (0..theta.len())
        .filter(|&i| (theta[i] - theta0[i]).abs() > 1e-12)
        .collect();
    // Every *power-observable* coordinate must have been touched by the
    // offset cycling. The trailing PSdiag(4) only shifts output phases,
    // which photodetectors cannot see: its analytic quotients are zero and
    // any movement there is floating-point dust amplified by Adam's scale
    // invariance — so we assert nothing about those four coordinates.
    let n = theta.len();
    for i in 0..n - 4 {
        assert!(
            moved.contains(&i),
            "coordinate cycling must touch parameter {i}"
        );
    }
}

#[test]
fn cma_ignores_adam_lr_but_uses_sigma() {
    // Same seeds, different σ₀ must give different outcomes; different lr
    // must not (CMA has no lr).
    let spec = TaskSpec::quick(4);
    let run = |sigma0: f64, lr: f64| {
        let task = build_task(&spec, 111).unwrap();
        let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
        let mut config = quick(2);
        config.lr = lr;
        let mut rng = StdRng::seed_from_u64(7);
        trainer
            .train(Method::Cma { sigma0 }, &config, &mut rng)
            .unwrap()
            .theta
    };
    let base = run(0.3, 0.02);
    let different_sigma = run(0.6, 0.02);
    assert_ne!(base, different_sigma);
    let different_lr = run(0.3, 0.2);
    assert_eq!(base, different_lr);
}

#[test]
fn lcng_metric_source_changes_trajectory() {
    let spec = TaskSpec::quick(4);
    let run = |model: ModelChoice| {
        let task = build_task(&spec, 123).unwrap();
        let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
            .with_calibrated_model(task.chip.oracle_network());
        let mut rng = StdRng::seed_from_u64(8);
        trainer
            .train(Method::Lcng { model }, &quick(3), &mut rng)
            .unwrap()
            .theta
    };
    let ideal = run(ModelChoice::Ideal);
    let oracle = run(ModelChoice::OracleTrue);
    // Different Fisher models reshape the Gram and hence the steps.
    assert_ne!(ideal, oracle);
}

#[test]
fn histories_are_complete_and_monotone_in_queries() {
    let spec = TaskSpec::quick(4);
    let task = build_task(&spec, 130).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let mut rng = StdRng::seed_from_u64(9);
    let out = trainer
        .train(Method::ZoGaussian, &quick(5), &mut rng)
        .unwrap();
    assert_eq!(out.history.len(), 5);
    for (i, rec) in out.history.iter().enumerate() {
        assert_eq!(rec.epoch, i + 1);
        assert!(rec.train_loss.is_finite());
        assert!(rec.elapsed >= 0.0);
        if i > 0 {
            assert!(rec.training_queries >= out.history[i - 1].training_queries);
            assert!(rec.elapsed >= out.history[i - 1].elapsed);
        }
    }
    assert_eq!(
        out.training_queries,
        out.history.last().unwrap().training_queries
    );
}
