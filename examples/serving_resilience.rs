//! Failover demo for the resilient serving layer: an 8x8 fabricated chip
//! pinned at its deployment parameters and replicated three ways behind
//! one logical endpoint, then two chaos events mid-run — one replica
//! killed outright, one wedged in a 4 ms hang window. Three arms of the
//! same seeded workload:
//!
//! 1. **healthy** — no faults, the tail-latency baseline;
//! 2. **resilient** — faults on, full machinery: per-replica circuit
//!    breakers, p99-derived hedged re-dispatch with idempotent dedup,
//!    deadline propagation, and the brownout tier ladder. This arm runs
//!    chip-backed, so the chip's query counter is reconciled against the
//!    eval + hedge ledger;
//! 3. **control** — same faults, machinery disabled (only the plain
//!    dispatch watchdog and deadlines remain).
//!
//! The demo exits non-zero unless the resilient arm holds p99 within 2x of
//! healthy while losing strictly fewer requests than the control arm —
//! the claim ci.sh gates on. It also quantizes the pinned deployment to
//! the i16 artifact the brownout ladder's bottom serving rung uses.
//!
//! All timing is virtual and every draw derives from the root seed, so the
//! output is **byte-identical** on every run (ci.sh checks with `cmp`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving_resilience
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::farm::{CoalescePolicy, HedgePolicy};
use photon_zo::faults::ReplicaChaos;
use photon_zo::photonics::{Architecture, ErrorModel, FabricatedChip};
use photon_zo::sim::{
    run_resilient, run_resilient_on_chip, ArrivalProcess, ReplicaSpec, ResilientConfig,
    TenantLoad,
};

const ROOT_SEED: u64 = 7117;
/// 20 virtual ms of open-loop traffic.
const WINDOW_NS: u64 = 20_000_000;
const KILL_AT_NS: u64 = 5_000_000;
const HANG_FROM_NS: u64 = 4_000_000;
const HANG_UNTIL_NS: u64 = 8_000_000;

fn scenario(label: &str, faulty: bool) -> ResilientConfig {
    let beta_chaos = if faulty {
        ReplicaChaos::none().kill_at(KILL_AT_NS)
    } else {
        ReplicaChaos::none()
    };
    let gamma_chaos = if faulty {
        ReplicaChaos::none().hang_between(HANG_FROM_NS, HANG_UNTIL_NS)
    } else {
        ReplicaChaos::none()
    };
    ResilientConfig::new(ROOT_SEED, WINDOW_NS)
        .with_label(label)
        .with_replica(ReplicaSpec::clean("alpha"))
        .with_replica(ReplicaSpec::clean("beta").with_chaos(beta_chaos))
        .with_replica(ReplicaSpec::clean("gamma").with_chaos(gamma_chaos))
        .with_tenant(TenantLoad::new(
            "steady",
            ArrivalProcess::Poisson { rate_hz: 60_000.0 },
        ))
        .with_tenant(TenantLoad::new(
            "bursty",
            ArrivalProcess::Bursty {
                on_rate_hz: 120_000.0,
                off_rate_hz: 10_000.0,
                mean_on_ns: 3_000_000.0,
                mean_off_ns: 4_000_000.0,
            },
        ))
        .with_coalescer(CoalescePolicy::new(16, 100_000))
        .with_default_deadline_ns(2_000_000)
        .with_hedge(Some(HedgePolicy {
            quantile: 0.5,
            min_delay_ns: 50_000,
            window: 256,
            min_samples: 16,
        }))
}

fn main() {
    // The deployment: one fabricated chip, pinned — all three replicas
    // serve the same theta, so one chip instance stands in for the group.
    let mut rng = StdRng::seed_from_u64(ROOT_SEED);
    let arch = Architecture::single_mesh(8, 8).expect("8x8 single mesh");
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    chip.pin_compile_base(&theta);

    // The brownout ladder's bottom serving rung (i16) is a real artifact:
    // quantize the pinned deployment once, off the serving path.
    let quantized = chip
        .quantize_pinned()
        .expect("a pinned linear mesh quantizes");
    println!(
        "quantized deployment artifact: {} -> {} ports, {} bytes (brownout rung 2 / i16)",
        quantized.input_dim(),
        quantized.output_dim(),
        quantized.to_bytes().len()
    );
    println!();

    let healthy = run_resilient(&scenario("healthy", false));
    print!("{}", healthy.render());
    println!();

    let before = chip.query_count();
    let resilient = run_resilient_on_chip(&scenario("resilient", true), &chip);
    let spent = chip.query_count() - before;
    print!("{}", resilient.render());
    for r in &resilient.replicas {
        for t in &r.breaker_transitions {
            println!(
                "  breaker[{}] {:>9} -> {:<9} at {:.3} ms",
                r.name,
                t.from.label(),
                t.to.label(),
                t.at_ns as f64 / 1e6
            );
        }
    }
    println!();

    let control = run_resilient(&scenario("control", true).without_resilience());
    print!("{}", control.render());
    println!();

    // The invariants ci.sh gates on.
    assert!(
        resilient.conserves_requests() && control.conserves_requests(),
        "every arrival must be completed, shed, or expired"
    );
    assert_eq!(
        Some(spent),
        resilient.chip_queries,
        "chip spend must match the report"
    );
    assert_eq!(
        spent,
        resilient.eval_queries + resilient.hedge_queries,
        "chip spend must reconcile with the eval+hedge ledger"
    );
    println!(
        "chip reconciliation: {spent} chip queries == {} eval + {} hedge",
        resilient.eval_queries, resilient.hedge_queries
    );

    let bound_ns = 2.0 * healthy.aggregate.p99_ns;
    let p99_held = resilient.aggregate.p99_ns <= bound_ns;
    let sheds_less = resilient.lost() < control.lost();
    println!(
        "p99 bound: resilient {:.1} us <= 2x healthy {:.1} us: {}",
        resilient.aggregate.p99_ns / 1e3,
        healthy.aggregate.p99_ns / 1e3,
        if p99_held { "yes" } else { "NO" }
    );
    println!(
        "resilient sheds less than control: {} < {}: {}",
        resilient.lost(),
        control.lost(),
        if sheds_less { "yes" } else { "NO" }
    );
    assert!(p99_held, "resilient arm must hold the 2x tail-latency bound");
    assert!(sheds_less, "resilient arm must lose strictly less than control");
}
