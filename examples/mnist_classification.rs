//! Image classification on the synthetic MNIST substitute: the evaluation
//! pipeline of the paper (28×28 image → 784-point DFT → K complex feature
//! bins → two-mesh ONN → central-port power readout), comparing vanilla ZO
//! against the paper's ZO-LCNG at an equal chip-query budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mnist_classification [-- --quick]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::TextTable;
use photon_zo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 11;
    let k = 16;

    let spec = TaskSpec {
        train_size: if quick { 200 } else { 600 },
        test_size: if quick { 100 } else { 300 },
        ..TaskSpec::image(TaskKind::MnistLike, k)
    };
    println!("synthetic-MNIST classification, K={k}, Clements({k},{k}) x2 + modReLU (seed {seed})");

    let mut config = TrainConfig::for_network(0, k);
    config.warm_epochs = if quick { 3 } else { 8 };
    config.epochs = if quick { 6 } else { 25 };
    config.batch_size = 50;

    let mut table = TextTable::new(&["method", "test acc", "test loss", "train queries"]);
    for method in [
        Method::ZoGaussian,
        Method::ZoCoordinate,
        Method::Lcng {
            model: ModelChoice::Ideal,
        },
        Method::BpIdeal,
        Method::BpOracle,
    ] {
        // Fresh but identically seeded task per method: same chip, same data.
        let task = build_task(&spec, seed)?;
        let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let out = trainer.train(method, &config, &mut rng)?;
        table.row_owned(vec![
            out.method.clone(),
            format!("{:.1}%", 100.0 * out.final_eval.accuracy),
            format!("{:.4}", out.final_eval.loss),
            format!("{}", out.training_queries),
        ]);
        println!("  finished {}", out.method);
    }
    println!("\n{}", table.render());
    println!(
        "(BP-ideal trains blind to fabrication errors; BP-oracle is the unrealistic upper bound.)"
    );
    Ok(())
}
