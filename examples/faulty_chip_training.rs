//! Self-healing training on a faulty chip: wrap a fabricated ONN in a
//! seeded fault layer — thermal drift, dropped reads, outlier spikes and a
//! dead phase shifter — and let the recovery-enabled trainer ride through
//! it with retries, outlier rejection, divergence rollbacks and automatic
//! recalibration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example faulty_chip_training
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::recovery_report;
use photon_zo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 81;
    println!("photon-zo self-healing training demo (seed {seed})");
    println!("=================================================");

    let spec = TaskSpec::quick(4);
    let task = build_task(&spec, seed)?;

    // An initial calibration of the still-healthy chip: this model supplies
    // the LCNG curvature and is what the fidelity monitor watches degrade.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
    let calibration = calibrate(&task.chip, &CalibrationSettings::default(), &mut rng)?;
    println!(
        "initial calibration: {} chip queries, fit cost {:.3e} -> {:.3e}",
        calibration.chip_queries, calibration.initial_cost, calibration.fit_cost
    );

    // Then the lab heats up: slow thermal drift on every phase shifter,
    // occasional dropped reads and detector spikes, and one actuator dies
    // outright. Everything is derived from one seed, so the whole failure
    // story replays bitwise — at any worker-pool size.
    let plan = FaultPlan::new(42)
        .with_drift(DriftConfig {
            sigma: 0.04,
            tau: 20.0,
        })
        .with_transients(TransientConfig {
            drop_prob: 0.004,
            spike_prob: 0.01,
            spike_scale: 1e4,
            burst_prob: 0.0,
            burst_sigma: 0.0,
        })
        .with_stuck(StuckShifter {
            index: 3,
            value: 0.4,
        });
    let faulty = FaultyChip::new(task.chip, plan);
    println!(
        "fault schedule: OU drift sigma 0.04, drops 0.4%, spikes 1.0%, shifter 3 stuck at 0.4 rad"
    );

    let trainer = Trainer::new(&faulty, &task.train, &task.test, task.head)
        .with_calibrated_model(calibration.model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 6;
    config.eval_every = 2;
    config.recovery = RecoveryPolicy::standard();

    let result = trainer.train(
        Method::Lcng {
            model: ModelChoice::Calibrated,
        },
        &config,
        &mut rng,
    )?;

    println!();
    for rec in &result.history {
        let r = rec.recovery;
        print!(
            "epoch {:>2}: train loss {:>8.4} | {} retries, {} rejected, {} rollbacks, {} recals",
            rec.epoch, rec.train_loss, r.retries, r.rejected_probes, r.rollbacks, r.recalibrations
        );
        match rec.test {
            Some(test) => println!(" | test acc {:.1}%", 100.0 * test.accuracy),
            None => println!(),
        }
    }

    println!();
    println!("{}", recovery_report(&result));
    let counts = faulty.fault_counts();
    println!(
        "faults injected: {} dropped reads, {} spikes, {} bursts",
        counts.dropped, counts.spiked, counts.bursts
    );
    println!(
        "final: test accuracy {:.1}%, {} training queries",
        100.0 * result.final_eval.accuracy,
        result.training_queries
    );
    Ok(())
}
