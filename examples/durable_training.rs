//! Durable training demo: a journaled, kill-resilient run that survives
//! `kill -9` at any instant and resumes bitwise-identically.
//!
//! The run appends its full loop-carried state to a write-ahead journal
//! after every epoch; on `--resume` the journal is replayed (truncating any
//! torn tail left by the kill) and training continues exactly where it
//! stopped. The final parameters are written as a checkpoint whose bytes
//! are a pure function of `(task, config, seed)` — the CI chaos gate
//! (`scripts/chaos_resume.sh`) `cmp`s a killed-and-resumed run's checkpoint
//! against an uninterrupted control's.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example durable_training -- \
//!     --journal results/durable.journal --checkpoint results/durable.ckpt
//! # ... kill -9 it mid-run, then:
//! cargo run --release --example durable_training -- \
//!     --journal results/durable.journal --checkpoint results/durable.ckpt --resume
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use photon_zo::core::{
    build_task, AbortReason, Checkpoint, DurableOptions, Method, RunOutcome, TaskSpec,
    TrainConfig, Trainer,
};
use photon_zo::trace::{TraceEvent, TraceHandle, TraceSink};

/// Slows the run down by sleeping after each journal flush, widening the
/// window in which the chaos script's `kill -9` can land mid-run. Purely
/// observational: the trace layer never influences training results.
struct FlushThrottle {
    delay: Duration,
}

impl TraceSink for FlushThrottle {
    fn record(&self, event: &TraceEvent) {
        if matches!(event, TraceEvent::JournalFlush { .. }) {
            std::thread::sleep(self.delay);
        }
    }
}

struct Args {
    journal: PathBuf,
    checkpoint: PathBuf,
    epochs: usize,
    seed: u64,
    threads: usize,
    resume: bool,
    flush_delay_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        journal: PathBuf::from("results/durable.journal"),
        checkpoint: PathBuf::from("results/durable.ckpt"),
        epochs: 6,
        seed: 7,
        threads: 1,
        resume: false,
        flush_delay_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--journal" => args.journal = PathBuf::from(value("--journal")?),
            "--checkpoint" => args.checkpoint = PathBuf::from(value("--checkpoint")?),
            "--epochs" => {
                args.epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--flush-delay-ms" => {
                args.flush_delay_ms = value("--flush-delay-ms")?
                    .parse()
                    .map_err(|e| format!("--flush-delay-ms: {e}"))?;
            }
            "--resume" => args.resume = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("durable_training: {msg}");
            return ExitCode::from(2);
        }
    };

    let task = build_task(&TaskSpec::quick(4), 11).expect("task");
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
    let mut config = TrainConfig::quick(4);
    config.epochs = args.epochs;
    config.eval_every = 2;
    config.threads = Some(args.threads);
    if args.flush_delay_ms > 0 {
        config.trace = TraceHandle::new(Arc::new(FlushThrottle {
            delay: Duration::from_millis(args.flush_delay_ms),
        }) as Arc<dyn TraceSink>);
    }
    let opts = DurableOptions::new(&args.journal, args.seed);

    let result = if args.resume {
        println!("resuming from journal {}", args.journal.display());
        trainer.resume(&config, &opts)
    } else {
        println!("starting durable run, journal {}", args.journal.display());
        trainer.train_durable(Method::ZoGaussian, &config, &opts)
    };

    match result {
        Ok(RunOutcome::Completed(outcome)) => {
            println!(
                "run complete: {} epochs, final accuracy {:.3}, {} training queries",
                outcome.history.len(),
                outcome.final_eval.accuracy,
                outcome.training_queries
            );
            let ckpt = Checkpoint::new(
                task.chip.architecture().clone(),
                outcome.theta,
                None,
            );
            if let Err(e) = ckpt.save(&args.checkpoint) {
                eprintln!("durable_training: checkpoint save failed: {e}");
                return ExitCode::from(1);
            }
            println!("checkpoint written to {}", args.checkpoint.display());
            ExitCode::SUCCESS
        }
        Ok(RunOutcome::Aborted {
            resumable,
            epochs_completed,
            reason,
        }) => {
            match reason {
                AbortReason::QueryDeadline { epoch, timeouts } => eprintln!(
                    "run aborted at epoch {epoch} after {timeouts} timed-out attempts \
                     ({epochs_completed} epochs journaled, resumable: {resumable})"
                ),
                AbortReason::Preempted { epoch } => eprintln!(
                    "run preempted before epoch {epoch} \
                     ({epochs_completed} epochs journaled, resumable: {resumable})"
                ),
            }
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("durable_training: {e}");
            ExitCode::from(1)
        }
    }
}
