//! Chip calibration walkthrough: estimate a fabricated chip's hidden
//! per-component errors from black-box power measurements, score the
//! calibrated model against the ideal model, and show how calibration
//! quality scales with the probe budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chip_calibration
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::calib::{calibrate, evaluate_model, CalibrationSettings};
use photon_zo::core::TextTable;
use photon_zo::photonics::{ideal_model, Architecture, ErrorModel, FabricatedChip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 21;
    let k = 6;
    let arch = Architecture::single_mesh(k, k)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(2.0), &mut rng);
    let (n_bs, n_ps) = arch.error_slots();
    println!(
        "fabricated Clements({k},{k})+PSdiag chip: {} hidden error parameters ({n_bs} BS + {n_ps} PS)",
        n_bs + 2 * n_ps
    );

    // Baseline: the ideal (uncalibrated) model.
    let ideal = ideal_model(&arch);
    let ideal_fid = evaluate_model(&chip, &ideal, 20, 4, &mut rng);
    println!(
        "ideal model fidelity:  power {:.4}, field {:.4}\n",
        ideal_fid.power, ideal_fid.field
    );

    let mut table = TextTable::new(&[
        "probe budget",
        "chip queries",
        "power fid",
        "field fid",
        "gamma RMSE",
        "phase RMSE",
    ]);
    for (random_inputs, num_settings) in [(2usize, 2usize), (8, 3), (24, 5)] {
        let settings = CalibrationSettings {
            include_basis: true,
            random_inputs,
            num_settings,
            ..CalibrationSettings::default()
        };
        let mut cal_rng = StdRng::seed_from_u64(seed ^ 0xca11);
        let outcome = calibrate(&chip, &settings, &mut cal_rng)?;
        let fid = evaluate_model(&chip, &outcome.model, 20, 4, &mut cal_rng);
        let rmse = chip.oracle_errors().rmse(&outcome.errors);
        table.row_owned(vec![
            format!("{}x{}", k + random_inputs, num_settings),
            format!("{}", outcome.chip_queries),
            format!("{:.4}", fid.power),
            format!("{:.4}", fid.field),
            format!("{:.2e}", rmse.gamma),
            format!("{:.2e}", rmse.phase),
        ]);
    }
    println!("{}", table.render());
    println!("More probes → higher held-out fidelity; the calibrated model is the");
    println!("curvature source for ZO-LCNG (see the quickstart example).");
    Ok(())
}
