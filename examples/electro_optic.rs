//! Electro-optic activation study: swap modReLU for the Williamson-style
//! electro-optic nonlinearity and train the resulting chip black-box with
//! ZO-LCNG.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example electro_optic
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{
    evaluate_chip, ClassificationHead, Method, ModelChoice, TextTable, TrainConfig, Trainer,
};
use photon_zo::data::GaussianClusters;
use photon_zo::photonics::{Architecture, ErrorModel, FabricatedChip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 41;
    let k = 8;
    println!("electro-optic vs modReLU activation, K={k} cluster task (seed {seed})\n");

    let mut table = TextTable::new(&["activation", "params", "test acc", "test loss"]);
    let architectures = [
        ("modReLU", Architecture::two_mesh_classifier(k, k)?),
        (
            "EO (α=0.1, g=1.0)",
            Architecture::two_mesh_eo_classifier(k, k, 0.1, 1.0)?,
        ),
    ];
    for (label, arch) in architectures {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let data = GaussianClusters::new(k, 4, 0.15).generate(360, &mut rng)?;
        let (train, test) = data.split(2.0 / 3.0, &mut rng);
        let head = ClassificationHead::new(k, 4, 10.0)?;
        let trainer =
            Trainer::new(&chip, &train, &test, head).with_calibrated_model(chip.oracle_network());

        let mut config = TrainConfig::quick(k);
        config.epochs = 15;
        let theta0 = trainer.warm_start(&config, &mut rng);
        let warm = evaluate_chip(&chip, &test, trainer.head(), &theta0);
        let mut theta = theta0;
        let out = trainer.finetune(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut theta,
            &mut rng,
        )?;
        println!(
            "  {label}: warm-start acc {:.1}% → LCNG acc {:.1}%",
            100.0 * warm.accuracy,
            100.0 * out.final_eval.accuracy
        );
        table.row_owned(vec![
            label.to_string(),
            format!("{}", chip.param_count()),
            format!("{:.1}%", 100.0 * out.final_eval.accuracy),
            format!("{:.4}", out.final_eval.loss),
        ]);
    }
    println!("\n{}", table.render());
    println!("Both activations train through the same black-box pipeline — the");
    println!("module abstraction carries exact JVP/VJP for each, so LCNG's Fisher");
    println!("metric is available regardless of the nonlinearity on the chip.");
    Ok(())
}
