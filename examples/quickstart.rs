//! Quickstart: fabricate a noisy 8-port ONN chip, warm-start it on the
//! ideal model, then fine-tune it in the black-box setting with the paper's
//! ZO-LCNG — all in a few seconds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;
    println!("photon-zo quickstart (seed {seed})");
    println!("==================================");

    // A reproducible task: 8-port single-mesh ONN, Gaussian-cluster data,
    // fabrication errors at the calibrated-chip magnitude (β = 1).
    let spec = TaskSpec {
        train_size: 240,
        test_size: 120,
        ..TaskSpec::quick(8)
    };
    let task = build_task(&spec, seed)?;
    println!(
        "chip: {} parameters on {} ports, {} train / {} test samples",
        task.chip.param_count(),
        task.chip.input_dim(),
        task.train.len(),
        task.test.len(),
    );

    // Step 1: calibrate the chip so LCNG has a faithful curvature model.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
    let outcome = calibrate(&task.chip, &CalibrationSettings::default(), &mut rng)?;
    println!(
        "calibration: {} chip queries, fit cost {:.3e} → {:.3e}",
        outcome.chip_queries, outcome.initial_cost, outcome.fit_cost
    );

    // Step 2: two-stage training with the calibrated-metric LCNG.
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(outcome.model);
    let mut config = TrainConfig::quick(8);
    config.epochs = 20;
    config.eval_every = 5;

    let result = trainer.train(
        Method::Lcng {
            model: ModelChoice::Calibrated,
        },
        &config,
        &mut rng,
    )?;

    for rec in &result.history {
        if let Some(test) = rec.test {
            println!(
                "epoch {:>3}: train loss {:.4}, test acc {:.1}% ({} training queries)",
                rec.epoch,
                rec.train_loss,
                100.0 * test.accuracy,
                rec.training_queries
            );
        }
    }
    println!(
        "final: test accuracy {:.1}%, test loss {:.4}, {} chip queries for training",
        100.0 * result.final_eval.accuracy,
        result.final_eval.loss,
        result.training_queries
    );
    Ok(())
}
