//! Truncated-mesh study: can a Clements mesh with half the layers — half
//! the MZIs, half the chip area — match the full mesh when trained with a
//! better black-box optimizer?
//!
//! This mirrors the circuit-size-savings observation of the research line:
//! a stronger training method lets truncated meshes close the gap to full
//! meshes trained with weaker methods.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example truncated_mesh
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::TextTable;
use photon_zo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 31;
    let k = 8;
    println!("truncated-mesh study on K={k} cluster task (seed {seed})\n");

    let mut table = TextTable::new(&["mesh", "params", "method", "test acc", "test loss"]);
    for (l, label) in [(k, "full"), (k / 2, "truncated")] {
        for method in [
            Method::ZoGaussian,
            Method::Lcng {
                model: ModelChoice::OracleTrue,
            },
        ] {
            let spec = TaskSpec {
                l,
                train_size: 240,
                test_size: 120,
                ..TaskSpec::quick(k)
            };
            let task = build_task(&spec, seed)?;
            let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            let mut config = TrainConfig::quick(k);
            config.epochs = 15;
            let out = trainer.train(method, &config, &mut rng)?;
            table.row_owned(vec![
                format!("Clements({k},{l}) [{label}]"),
                format!("{}", task.chip.param_count()),
                out.method.clone(),
                format!("{:.1}%", 100.0 * out.final_eval.accuracy),
                format!("{:.4}", out.final_eval.loss),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Watch for: LCNG on the truncated mesh approaching (or beating) vanilla");
    println!("ZO on the full mesh — the same classification power from half the MZIs.");
    Ok(())
}
