//! In-situ continual recalibration demo: a deployed theta keeps serving
//! on a drifting chip while the online controller probes, shadow
//! fine-tunes, canaries, and atomically promotes — recovering the
//! accuracy the drift took away, without ever taking the chip offline.
//!
//! The controller's write-ahead journal lives in `--dir`; `kill -9` the
//! process at any instant and re-run the same command line — completed
//! cycles replay from the journal and the loop continues bitwise
//! identically (the CI gate `cmp`s two runs' stdout byte for byte).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_recal -- --dir results/online
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::{
    build_task, evaluate_chip_pooled, Method, ModelChoice, TaskSpec, TrainConfig, Trainer,
};
use photon_zo::exec::ExecPool;
use photon_zo::farm::{run_online, OnlineOptions};
use photon_zo::faults::{DriftConfig, FaultPlan, FaultyChip};
use photon_zo::photonics::{ErrorVector, OnnChip};

const TASK_SEED: u64 = 17;
const THETA_SEED: u64 = 18;
const ROOT_SEED: u64 = 19;
const DRIFT_SEED: u64 = 41;

struct Args {
    dir: PathBuf,
    cycles: usize,
    epochs: usize,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: PathBuf::from("results/online-recal"),
        cycles: 2,
        epochs: 5,
        threads: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--dir" => args.dir = PathBuf::from(val("--dir")?),
            "--cycles" => args.cycles = val("--cycles")?.parse().map_err(|e| format!("{e}"))?,
            "--epochs" => args.epochs = val("--epochs")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => args.threads = val("--threads")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn drift_plan() -> FaultPlan {
    FaultPlan::new(DRIFT_SEED).with_drift(DriftConfig {
        sigma: 0.05,
        tau: 20.0,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("online_recal: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The deployment story: theta trained on the just-fabricated chip,
    // pinned, and left serving while the chip drifts underneath it.
    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(task.chip.oracle_network());
    let mut config = TrainConfig::quick(4);
    config.epochs = 6;
    config.threads = Some(args.threads);
    let mut rng = StdRng::seed_from_u64(THETA_SEED);
    let deployed = trainer
        .train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        )
        .unwrap();
    println!(
        "deployed theta (trained pre-drift): accuracy {:.4}, loss {:.6}",
        deployed.final_eval.accuracy, deployed.final_eval.loss
    );

    // The live chip: same fabrication, drifting thermally step by step.
    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let chip = FaultyChip::new(task.chip, drift_plan());
    let (n_bs, n_ps) = chip.architecture().error_slots();

    let mut shadow = TrainConfig::quick(4);
    shadow.epochs = args.epochs;
    shadow.threads = Some(args.threads);
    let opts = OnlineOptions::new(args.cycles, ROOT_SEED, shadow)
        .with_canary(8, 0.05)
        .with_canary_batch(5);

    let outcome = match run_online(
        &chip,
        &task.train,
        &task.test,
        task.head,
        &deployed.theta,
        &ErrorVector::zeros(n_bs, n_ps),
        &opts,
        &args.dir,
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("online_recal: {e}");
            return ExitCode::FAILURE;
        }
    };

    for c in &outcome.cycles {
        println!(
            "cycle {}: steps {}..{}, shadow {} epochs, canary p {:.6}, \
             loss {:.6} -> {:.6}, {}",
            c.cycle,
            c.base_step,
            c.next_step,
            c.shadow_epochs,
            c.p_value,
            c.baseline_loss,
            c.shadow_loss,
            if c.promoted { "PROMOTED" } else { "rolled back" }
        );
    }
    println!(
        "promotions: {}, rollbacks: {}",
        outcome.promotions, outcome.rollbacks
    );

    // What would have happened without recalibration: the original theta
    // left serving on the drifted chip.
    let task = build_task(&TaskSpec::quick(4), TASK_SEED).unwrap();
    let stale_chip = FaultyChip::new(task.chip, drift_plan());
    let final_step = outcome.cycles.last().map_or(1, |c| c.next_step);
    stale_chip.advance_to(final_step);
    stale_chip.pin_compile_base(&deployed.theta);
    let pool = ExecPool::with_threads(Some(args.threads));
    let stale = evaluate_chip_pooled(&stale_chip, &task.test, &task.head, &deployed.theta, &pool);
    println!(
        "stale deployment at step {final_step}: accuracy {:.4}, loss {:.6}",
        stale.accuracy, stale.loss
    );
    println!(
        "online deployment at step {final_step}: accuracy {:.4}, loss {:.6}",
        outcome.final_eval.accuracy, outcome.final_eval.loss
    );

    let recovered = outcome.promotions >= 1
        && outcome.final_eval.loss < stale.loss
        && outcome.final_eval.accuracy >= stale.accuracy;
    println!(
        "recovered: {}",
        if recovered { "yes" } else { "NO" }
    );
    if recovered {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
