//! The serving simulator end to end: an 8x8 fabricated chip pinned at its
//! deployment parameters, two tenants (steady Poisson + bursty on/off)
//! plus periodic background recalibration, simulated uncoalesced and then
//! with microbatch coalescing — every simulated dispatch executed on the
//! real chip through the pinned serving path, with the chip's query
//! counter reconciled against the simulated completion count.
//!
//! All timing is virtual, every random draw derives from the root seed,
//! and the report renderings are pure functions of the simulation state,
//! so this example prints **byte-identical** output on every run (ci.sh
//! checks that with `cmp`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving_sim
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::core::trace_summary;
use photon_zo::farm::CoalescePolicy;
use photon_zo::sim::{run_on_chip, RecalTraffic};
use photon_zo::prelude::*;

const ROOT_SEED: u64 = 4242;
/// 25 virtual ms of open-loop traffic.
const WINDOW_NS: u64 = 25_000_000;

fn workload(label: &str, coalescer: CoalescePolicy) -> SimConfig {
    SimConfig::new(ROOT_SEED, WINDOW_NS)
        .with_label(label)
        .with_workers(2)
        .with_coalescer(coalescer)
        .with_tenant(
            TenantLoad::new("steady", ArrivalProcess::Poisson { rate_hz: 250_000.0 })
                .with_queue_cap(1024),
        )
        .with_tenant(
            TenantLoad::new(
                "bursty",
                ArrivalProcess::Bursty {
                    on_rate_hz: 400_000.0,
                    off_rate_hz: 10_000.0,
                    mean_on_ns: 3_000_000.0,
                    mean_off_ns: 4_000_000.0,
                },
            )
            .with_queue_cap(1024),
        )
        .with_recalibration(RecalTraffic {
            start_ns: 5_000_000,
            period_ns: 10_000_000,
        })
}

fn main() {
    println!("photon-zo serving simulator demo");
    println!("================================");

    // A real 8x8 chip, pinned at its deployment parameters. The cost
    // model's virtual timings were calibrated on this mesh size.
    let mut rng = StdRng::seed_from_u64(ROOT_SEED);
    let arch = Architecture::single_mesh(8, 8).expect("8x8 single mesh");
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    chip.pin_compile_base(&theta);

    let (trace, sink) = TraceHandle::memory(0);
    let mut reports = Vec::new();
    for (label, policy) in [
        ("uncoalesced", CoalescePolicy::uncoalesced()),
        ("coalesced-16", CoalescePolicy::new(16, 100_000)),
    ] {
        let before = chip.query_count();
        let report = run_on_chip(&workload(label, policy), &chip);
        let spent = chip.query_count() - before;
        assert_eq!(
            Some(spent),
            report.chip_queries,
            "chip queries must reconcile with the simulation"
        );
        assert_eq!(report.chip_queries, Some(report.aggregate.completed));
        println!();
        print!("{}", report.render());
        report.emit(&trace);
        reports.push(report);
    }

    let un = &reports[0].aggregate;
    let co = &reports[1].aggregate;
    println!();
    println!(
        "coalescing lifted saturation throughput {:.2}x ({:.0} -> {:.0} rps) at p99 {:.1} -> {:.1} us",
        co.throughput_rps / un.throughput_rps,
        un.throughput_rps,
        co.throughput_rps,
        un.p99_ns / 1e3,
        co.p99_ns / 1e3,
    );

    println!();
    println!("telemetry summary");
    println!("-----------------");
    print!("{}", trace_summary(&sink.events()));
}
