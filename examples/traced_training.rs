//! Structured telemetry end to end: run a calibrated ZO-LCNG training with
//! a trace handle fanning out to an in-memory sink (for the summary below)
//! and a JSONL file (`results/trace_demo.jsonl`, one event per line), then
//! reconcile the per-category query ledger against the chip's own counter.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example traced_training
//! ```

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_zo::prelude::*;
use photon_zo::trace::{LedgerCounts, TraceSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;
    println!("photon-zo traced training demo (seed {seed})");
    println!("============================================");

    let jsonl_path = "results/trace_demo.jsonl";
    let memory = Arc::new(MemorySink::new(0));
    let jsonl = Arc::new(JsonlSink::create(jsonl_path)?);
    let trace = TraceHandle::tee(vec![
        memory.clone() as Arc<dyn TraceSink>,
        jsonl as Arc<dyn TraceSink>,
    ]);

    // A fresh chip, so every query it will ever serve happens under the
    // trace: the ledger must sum exactly to `chip.query_count()`.
    let task = build_task(&TaskSpec::quick(4), seed)?;
    assert_eq!(task.chip.query_count(), 0, "chip must start unqueried");

    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
    let calibration = calibrate_traced(
        &task.chip,
        &CalibrationSettings::default(),
        &mut rng,
        &trace,
    )?;
    println!(
        "calibration: {} chip queries, fit cost {:.3e} -> {:.3e}",
        calibration.chip_queries, calibration.initial_cost, calibration.fit_cost
    );

    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(calibration.model);
    let mut config = TrainConfig::quick(4);
    config.epochs = 4;
    config.eval_every = 2;
    config.trace = trace;
    let outcome = trainer.train(
        Method::Lcng {
            model: ModelChoice::Calibrated,
        },
        &config,
        &mut rng,
    )?;

    // Reconciliation: every chip query — calibration sweep, probes, batch
    // losses, evaluations — is attributed to exactly one ledger category.
    let events = memory.events();
    let mut ledger = LedgerCounts::new();
    for event in &events {
        if let TraceEvent::QueryLedger {
            category, queries, ..
        } = event
        {
            ledger.add(*category, *queries);
        }
    }
    assert_eq!(
        ledger.total(),
        task.chip.query_count(),
        "query ledger must reconcile with the chip's query counter"
    );

    println!();
    println!("{}", photon_zo::core::trace_summary(&events));
    println!(
        "ledger reconciles: {} ledgered == {} counted by the chip",
        ledger.total(),
        task.chip.query_count()
    );
    println!(
        "final: test accuracy {:.1}%, trace written to {jsonl_path} ({} events)",
        100.0 * outcome.final_eval.accuracy,
        events.len()
    );
    Ok(())
}
