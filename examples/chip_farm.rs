//! The chip farm end to end: three workers (one scripted to die, one with
//! a hang-prone lab link), two tenants with different fair-share quanta and
//! one metered budget, six jobs — run under chaos until every job is
//! `Completed` or cleanly `Rejected`, then print the reconciled ledgers and
//! the farm's telemetry summary.
//!
//! One job is re-run solo on a single chip to show the farm's headline
//! guarantee: a job that was preempted, killed mid-slice, and migrated
//! between workers finishes **bitwise identical** to an uninterrupted run.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chip_farm
//! ```

use std::process::ExitCode;
use std::time::Duration;

use photon_zo::core::{trace_summary, RunOutcome};
use photon_zo::farm::JobResult;
use photon_zo::faults::FaultyChip;
use photon_zo::prelude::*;

fn job(name: &str, tenant: &str, epochs: usize, task_seed: u64, root_seed: u64) -> JobSpec {
    let mut config = TrainConfig::quick(4);
    config.epochs = epochs;
    config.threads = Some(1);
    JobSpec::new(name, tenant, TaskSpec::quick(4), Method::ZoGaussian, config)
        .with_task_seed(task_seed)
        .with_root_seed(root_seed)
}

fn main() -> ExitCode {
    println!("photon-zo chip farm demo");
    println!("========================");

    let dir = std::env::temp_dir().join(format!("photon-chip-farm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (trace, sink) = TraceHandle::memory(0);

    // Fast watchdog so the hang-prone link costs milliseconds per
    // discarded attempt instead of the 30 s lab default.
    let watchdog = WatchdogPolicy {
        deadline: Duration::from_millis(300),
        max_timeouts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        jitter_seed: 5,
    };
    let chaos = ChaosPlan::none().with_kill("w0", 2, 1);
    let config = FarmConfig::new(&dir)
        .with_watchdog(watchdog)
        .with_health(HealthPolicy::strict())
        .with_chaos(chaos)
        .with_trace(trace);
    let workers = vec![
        WorkerSpec::clean("w0"),
        WorkerSpec::hanging("w1", 0.02, 3),
        WorkerSpec::clean("w2"),
    ];
    let tenants = vec![
        TenantSpec::new("alice").with_quantum(2),
        TenantSpec::new("bob").with_quantum(3).with_query_budget(400_000),
    ];
    println!(
        "workers: w0 (clean, chaos-killed on dispatch 2), w1 (link hangs 2%), w2 (clean)"
    );
    println!("tenants: alice (quantum 2) | bob (quantum 3, budget 400k queries)\n");

    let mut farm = Farm::new(config, workers, tenants);
    let specs = vec![
        job("a0", "alice", 6, 11, 21),
        job("a1", "alice", 3, 12, 22),
        job("a2", "alice", 2, 13, 23),
        job("b0", "bob", 5, 14, 24),
        job("b1", "bob", 4, 15, 25),
        job("b2", "bob", 2, 16, 26),
    ];
    for spec in &specs {
        match farm.submit(spec.clone()) {
            Ok(id) => println!("submitted {id}: {} [{}]", spec.name, spec.tenant),
            Err(rejection) => println!("rejected at admission: {rejection}"),
        }
    }

    let report = farm.run();

    println!("\njobs ({} rounds):", report.rounds);
    for j in &report.jobs {
        let place = j.last_worker.as_deref().unwrap_or("-");
        match &j.result {
            Some(JobResult::Completed(out)) => println!(
                "  {:<3} [{:<5}] completed  acc {:.3}  {} queries, {} slices, {} migrations, last on {place}",
                j.name,
                j.tenant,
                out.final_eval.accuracy,
                j.queries,
                j.slices,
                j.migrations
            ),
            Some(JobResult::Rejected(reason)) => {
                println!("  {:<3} [{:<5}] REJECTED: {reason}", j.name, j.tenant)
            }
            None => println!("  {:<3} [{:<5}] LOST (bug!)", j.name, j.tenant),
        }
    }

    println!("\nworkers:");
    for w in &report.workers {
        println!(
            "  {:<3} {:<11} {} slices, {} queries, {} hangs, {} timeouts",
            w.name,
            w.health.label(),
            w.slices,
            w.queries,
            w.hangs,
            w.timeouts
        );
    }

    println!("\ntenants:");
    for t in &report.tenants {
        println!(
            "  {:<5} {} queries, {} completed, {} rejected",
            t.name, t.queries, t.completed, t.rejected
        );
    }

    // The farm's headline guarantee: pick the job the chaos kill
    // interrupted and check it against an uninterrupted single-chip run.
    let interrupted = report
        .jobs
        .iter()
        .find(|j| j.migrations > 0 && j.result.as_ref().is_some_and(|r| r.completed().is_some()));
    if let Some(j) = interrupted {
        let spec = specs.iter().find(|s| s.name == j.name).unwrap();
        let task = build_task(&spec.task, spec.task_seed).expect("task");
        let chip = FaultyChip::new(task.chip, FaultPlan::new(spec.task_seed));
        let trainer = Trainer::new(&chip, &task.train, &task.test, task.head);
        let opts = DurableOptions::new(dir.join("solo-control.journal"), spec.root_seed);
        let control = match trainer.train_durable(spec.method, &spec.config, &opts) {
            Ok(RunOutcome::Completed(out)) => out,
            other => {
                eprintln!("solo control did not complete: {other:?}");
                return ExitCode::from(2);
            }
        };
        let farmed = report.completed(&j.name).unwrap();
        let identical = farmed.theta.as_slice() == control.theta.as_slice();
        println!(
            "\nmigrated job {} vs uninterrupted single-chip control: {}",
            j.name,
            if identical { "BITWISE IDENTICAL" } else { "DIVERGED" }
        );
        if !identical {
            return ExitCode::from(2);
        }
    }

    println!(
        "\nledgers reconcile (tenant == worker == job totals): {}",
        report.ledgers_reconcile()
    );
    if report.lost() != 0 || !report.ledgers_reconcile() {
        return ExitCode::from(2);
    }

    println!("\ntelemetry summary");
    println!("-----------------");
    println!("{}", trace_summary(&sink.events()));

    let _ = std::fs::remove_dir_all(&dir);
    ExitCode::SUCCESS
}
