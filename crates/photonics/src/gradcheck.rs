//! Gradient checking utilities.
//!
//! Anyone implementing a new [`OnnModule`] must uphold two contracts:
//! the JVP must match finite differences of the forward pass, and the VJP
//! must be the exact real-adjoint of the JVP. These helpers verify both on
//! random probes; the crate's own modules are validated with them in tests,
//! and downstream implementations can (and should) do the same.

use rand::Rng;

use photon_linalg::random::{normal_cvector, normal_rvector};
use photon_linalg::CVector;

use crate::module::OnnModule;

/// The outcome of one gradient check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Worst absolute deviation observed.
    pub max_error: f64,
    /// The tolerance the check was run with.
    pub tolerance: f64,
    /// Number of random probes exercised.
    pub probes: usize,
}

impl GradCheck {
    /// Whether the check passed.
    pub fn passed(&self) -> bool {
        self.max_error <= self.tolerance
    }
}

/// Real inner product on complex vectors: `Σ Re(uᵢ)Re(vᵢ) + Im(uᵢ)Im(vᵢ)`.
fn real_dot(a: &CVector, b: &CVector) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(u, v)| u.re * v.re + u.im * v.im)
        .sum()
}

/// Checks that the module's JVP matches central finite differences of
/// `forward` along random joint (input, parameter) tangents.
///
/// # Panics
///
/// Panics when `theta.len() != module.param_count()`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_photonics::{gradcheck, MeshModule, OnnModule};
///
/// let mesh = MeshModule::clements(4, 2);
/// let theta = vec![0.3; mesh.param_count()];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let check = gradcheck::check_jvp(&mesh, &theta, 5, 1e-6, &mut rng);
/// assert!(check.passed(), "max error {}", check.max_error);
/// ```
pub fn check_jvp<R: Rng + ?Sized>(
    module: &dyn OnnModule,
    theta: &[f64],
    probes: usize,
    tolerance: f64,
    rng: &mut R,
) -> GradCheck {
    assert_eq!(
        theta.len(),
        module.param_count(),
        "parameter count mismatch"
    );
    let eps = 1e-6;
    let mut max_error = 0.0f64;
    for _ in 0..probes {
        let x = normal_cvector(module.input_dim(), rng);
        let dx = normal_cvector(module.input_dim(), rng);
        let dtheta = normal_rvector(module.param_count(), rng);

        let (_, tape) = module.forward_tape(&x, theta);
        let dy = module.jvp(&tape, theta, &dx, dtheta.as_slice());

        let shifted = |sign: f64| -> CVector {
            let th: Vec<f64> = theta
                .iter()
                .zip(dtheta.iter())
                .map(|(t, d)| t + sign * eps * d)
                .collect();
            let xx = &x + &dx.scale_real(sign * eps);
            module.forward(&xx, &th)
        };
        let fd = (&shifted(1.0) - &shifted(-1.0)).scale_real(0.5 / eps);
        max_error = max_error.max((&dy - &fd).max_abs());
    }
    GradCheck {
        max_error,
        tolerance,
        probes,
    }
}

/// Checks the adjoint contract `⟨jvp(dx, dθ), g⟩ = ⟨dx, vjp_state⟩ +
/// dθ·vjp_params` on random probes — the exactness property that makes
/// `vjp ∘ jvp` a true Fisher-metric product.
///
/// # Panics
///
/// Panics when `theta.len() != module.param_count()`.
pub fn check_adjoint<R: Rng + ?Sized>(
    module: &dyn OnnModule,
    theta: &[f64],
    probes: usize,
    tolerance: f64,
    rng: &mut R,
) -> GradCheck {
    assert_eq!(
        theta.len(),
        module.param_count(),
        "parameter count mismatch"
    );
    let mut max_error = 0.0f64;
    for _ in 0..probes {
        let x = normal_cvector(module.input_dim(), rng);
        let dx = normal_cvector(module.input_dim(), rng);
        let dtheta = normal_rvector(module.param_count(), rng);
        let g = normal_cvector(module.output_dim(), rng);

        let (_, tape) = module.forward_tape(&x, theta);
        let dy = module.jvp(&tape, theta, &dx, dtheta.as_slice());
        let mut gtheta = vec![0.0; module.param_count()];
        let gx = module.vjp(&tape, theta, &g, &mut gtheta);

        let lhs = real_dot(&dy, &g);
        let rhs = real_dot(&dx, &gx) + dtheta.iter().zip(&gtheta).map(|(a, b)| a * b).sum::<f64>();
        max_error = max_error.max((lhs - rhs).abs());
    }
    GradCheck {
        max_error,
        tolerance,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ErrorCursor, ErrorModel, ErrorVector};
    use crate::mesh::MeshModule;
    use crate::modrelu::ModRelu;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn all_builtin_modules_pass_jvp_check() {
        let mut rng = StdRng::seed_from_u64(61);
        let modules: Vec<Box<dyn OnnModule>> = vec![
            Box::new(MeshModule::clements(4, 4)),
            Box::new(MeshModule::clements(5, 2)),
            Box::new(MeshModule::reck(4)),
            Box::new(MeshModule::phase_diag(4)),
            Box::new(ModRelu::new(4)),
        ];
        for m in &modules {
            let theta: Vec<f64> = (0..m.param_count())
                .map(|_| rng.gen::<f64>() * 0.8 + 0.1)
                .collect();
            let check = check_jvp(m.as_ref(), &theta, 6, 1e-5, &mut rng);
            assert!(
                check.passed(),
                "{}: jvp error {}",
                m.name(),
                check.max_error
            );
        }
    }

    #[test]
    fn all_builtin_modules_pass_adjoint_check() {
        let mut rng = StdRng::seed_from_u64(62);
        let modules: Vec<Box<dyn OnnModule>> = vec![
            Box::new(MeshModule::clements(4, 4)),
            Box::new(MeshModule::reck(5)),
            Box::new(MeshModule::phase_diag(3)),
            Box::new(ModRelu::new(6)),
        ];
        for m in &modules {
            let theta: Vec<f64> = (0..m.param_count())
                .map(|_| rng.gen::<f64>() - 0.3)
                .collect();
            let check = check_adjoint(m.as_ref(), &theta, 8, 1e-9, &mut rng);
            assert!(
                check.passed(),
                "{}: adjoint error {}",
                m.name(),
                check.max_error
            );
        }
    }

    #[test]
    fn noisy_mesh_passes_both_checks() {
        let mut rng = StdRng::seed_from_u64(63);
        let ideal = MeshModule::clements(4, 3);
        let (n_bs, n_ps) = ideal.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(3.0), &mut rng);
        let noisy = ideal.with_errors(&mut ErrorCursor::new(&ev)).unwrap();
        let theta: Vec<f64> = (0..noisy.param_count()).map(|_| rng.gen()).collect();
        assert!(check_jvp(noisy.as_ref(), &theta, 4, 1e-5, &mut rng).passed());
        assert!(check_adjoint(noisy.as_ref(), &theta, 4, 1e-9, &mut rng).passed());
    }

    #[test]
    fn gradcheck_reports_probe_count() {
        let mut rng = StdRng::seed_from_u64(64);
        let m = MeshModule::phase_diag(2);
        let check = check_jvp(&m, &[0.1, 0.2], 3, 1e-5, &mut rng);
        assert_eq!(check.probes, 3);
        assert_eq!(check.tolerance, 1e-5);
    }
}
