//! Opt-in quantized serving mode: i16 fixed-point inference for all-linear
//! networks.
//!
//! NNUE-style deployment tier: the network's fused transfer matrix is
//! quantized once to `i16` with one `f32` scale per output row, and every
//! serve runs on integer multiply-accumulate (four integer MACs per complex
//! term, accumulated in `i64` so no intermediate can overflow). Activations
//! are quantized dynamically per input vector with a single symmetric scale.
//!
//! This tier is for *serving only*. Training and calibration keep the `f64`
//! interpreted walk as the bitwise oracle; the quantized path trades ≈0.5 %
//! accuracy-class error for integer-width arithmetic and a 4× smaller
//! weight footprint, and [`QuantizedNetwork::to_bytes`] /
//! [`QuantizedNetwork::from_bytes`] give a byte-exact deployable artifact.

use photon_linalg::{CMatrix, CVector, RVector, C64};

use crate::network::Network;

/// Serialization magic prefix (`b"PQNT"`).
const MAGIC: [u8; 4] = *b"PQNT";
/// Serialization format version.
const VERSION: u32 = 1;
/// Symmetric i16 quantization ceiling.
const QMAX: f32 = i16::MAX as f32;

/// One quantized dense complex matrix: row-major `i16` real/imaginary
/// planes with a per-row `f32` dequantization scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QMatrix {
    rows: usize,
    cols: usize,
    /// Per-row scale: `true_value ≈ scale[r] · q[r, c]`.
    row_scale: Vec<f32>,
    re: Vec<i16>,
    im: Vec<i16>,
}

impl QMatrix {
    /// Quantizes a dense complex matrix with one symmetric scale per row
    /// (the row's max absolute *finite* real/imaginary component maps to
    /// `i16::MAX`). An all-zero row gets scale `0`, reproducing it
    /// exactly; non-finite components saturate per component (±`i16::MAX`
    /// for ±∞, `0` for NaN) instead of poisoning the row scale — a row
    /// scale of `0`, a denormal, or ∞ would dequantize every entry of the
    /// row into NaN or garbage.
    pub fn quantize(m: &CMatrix) -> QMatrix {
        let (rows, cols) = (m.rows(), m.cols());
        let mut row_scale = Vec::with_capacity(rows);
        let mut re = Vec::with_capacity(rows * cols);
        let mut im = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row = m.row(r);
            let amax = row
                .iter()
                .flat_map(|z| [z.re, z.im])
                .filter(|v| v.is_finite())
                .fold(0.0f64, |acc, v| acc.max(v.abs()));
            let scale = row_quant_scale(amax);
            row_scale.push(scale);
            let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale as f64 };
            for z in row {
                re.push(quantize_component(z.re, inv));
                im.push(quantize_component(z.im, inv));
            }
        }
        QMatrix {
            rows,
            cols,
            row_scale,
            re,
            im,
        }
    }

    /// Number of output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Applies the quantized matrix to a dynamically quantized activation
    /// vector, writing the dequantized `f64` result into `out`.
    ///
    /// The input is quantized with one symmetric scale for the whole
    /// vector, the complex MAC runs as four integer multiplies per term
    /// accumulated in `i64` (`i16·i16` products are ≤ 2³⁰, so billions of
    /// terms fit without overflow), and the row scale × activation scale
    /// product dequantizes the accumulator.
    fn apply(&self, qx: &QActivations, out: &mut CVector) {
        debug_assert_eq!(qx.re.len(), self.cols, "activation/matrix dim mismatch");
        out.resize_zeroed(self.rows);
        for r in 0..self.rows {
            let (mut acc_re, mut acc_im) = (0i64, 0i64);
            let base = r * self.cols;
            let wr = &self.re[base..base + self.cols];
            let wi = &self.im[base..base + self.cols];
            for c in 0..self.cols {
                let (ar, ai) = (wr[c] as i64, wi[c] as i64);
                let (xr, xi) = (qx.re[c] as i64, qx.im[c] as i64);
                acc_re += ar * xr - ai * xi;
                acc_im += ar * xi + ai * xr;
            }
            let s = self.row_scale[r] as f64 * qx.scale;
            out.as_mut_slice()[r] = C64::new(acc_re as f64 * s, acc_im as f64 * s);
        }
    }

    fn byte_len(&self) -> usize {
        4 + 4 + self.rows * 4 + self.rows * self.cols * 4
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        for s in &self.row_scale {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for q in &self.re {
            out.extend_from_slice(&q.to_le_bytes());
        }
        for q in &self.im {
            out.extend_from_slice(&q.to_le_bytes());
        }
    }

    fn read_bytes(r: &mut ByteReader<'_>) -> Option<QMatrix> {
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let n = rows.checked_mul(cols)?;
        let mut row_scale = Vec::with_capacity(rows);
        for _ in 0..rows {
            row_scale.push(f32::from_le_bytes(r.take::<4>()?));
        }
        let mut re = Vec::with_capacity(n);
        for _ in 0..n {
            re.push(i16::from_le_bytes(r.take::<2>()?));
        }
        let mut im = Vec::with_capacity(n);
        for _ in 0..n {
            im.push(i16::from_le_bytes(r.take::<2>()?));
        }
        Some(QMatrix {
            rows,
            cols,
            row_scale,
            re,
            im,
        })
    }
}

/// Guarded per-row dequantization scale for a row whose largest finite
/// component magnitude is `amax`: `0` for an all-zero (or all-non-finite)
/// row, and otherwise clamped into `[f32::MIN_POSITIVE, f32::MAX]` so the
/// stored `f32` scale can never be zero, subnormal, or infinite — a
/// subnormal scale flushes rows to garbage on dequantize and an infinite
/// one turns the whole row into NaN via `0 · ∞`.
fn row_quant_scale(amax: f64) -> f32 {
    if amax.is_nan() || amax <= 0.0 {
        return 0.0;
    }
    ((amax / QMAX as f64) as f32).clamp(f32::MIN_POSITIVE, f32::MAX)
}

/// Rounds `v / scale` to the nearest representable `i16` step
/// (`inv = 1/scale`, `0` for an all-zero row), saturating explicitly:
/// out-of-range and ±∞ values clamp to the `i16` range and NaN maps to
/// `0` (NaN passes through `clamp` into Rust's saturating float→int
/// cast), so no input can overflow the integer plane.
fn quantize_component(v: f64, inv: f64) -> i16 {
    let q = (v * inv).round();
    q.clamp(i16::MIN as f64, i16::MAX as f64) as i16
}

/// A dynamically quantized activation vector (one symmetric scale for the
/// whole vector), reused across stages.
struct QActivations {
    re: Vec<i16>,
    im: Vec<i16>,
    /// Dequantization scale: `true_value ≈ scale · q`.
    scale: f64,
}

impl QActivations {
    fn from_field(x: &CVector) -> QActivations {
        let amax = x
            .iter()
            .map(|z| z.re.abs().max(z.im.abs()))
            .fold(0.0f64, f64::max);
        let scale = if amax == 0.0 { 0.0 } else { amax / QMAX as f64 };
        let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
        let mut re = Vec::with_capacity(x.len());
        let mut im = Vec::with_capacity(x.len());
        for z in x.iter() {
            re.push(quantize_component(z.re, inv));
            im.push(quantize_component(z.im, inv));
        }
        QActivations { re, im, scale }
    }
}

/// A network frozen at a fixed `theta` and quantized to `i16` fixed point
/// for serving.
///
/// Built by [`QuantizedNetwork::quantize`] from an *all-linear* network
/// (every module compilable): the whole pipeline fuses into one dense
/// transfer matrix before quantization, so a serve is a single integer
/// matrix-vector product. Networks containing nonlinear modules (modReLU,
/// electro-optic activations) cannot be frozen this way and return `None`
/// — between-stage activations would need requantization around a float
/// nonlinearity, which this format does not yet encode (the serialized
/// layout already carries a stage list for forward compatibility).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    stages: Vec<QMatrix>,
}

impl QuantizedNetwork {
    /// Fuses `net` at `theta` into one transfer matrix and quantizes it.
    /// Returns `None` when any module is nonlinear (not compilable).
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != net.param_count()`.
    pub fn quantize(net: &Network, theta: &RVector) -> Option<QuantizedNetwork> {
        assert_eq!(theta.len(), net.param_count(), "theta length mismatch");
        let mut acc = CMatrix::identity(net.input_dim());
        for (i, m) in net.modules().iter().enumerate() {
            let range = net.module_param_range(i);
            if !m.compile_apply(&theta.as_slice()[range], &mut acc) {
                return None;
            }
        }
        Some(QuantizedNetwork {
            stages: vec![QMatrix::quantize(&acc)],
        })
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.stages[0].cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.stages[self.stages.len() - 1].rows()
    }

    /// Serves one field measurement on the integer path.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &CVector) -> CVector {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut cur = QActivations::from_field(x);
        let mut out = CVector::zeros(0);
        for (k, stage) in self.stages.iter().enumerate() {
            stage.apply(&cur, &mut out);
            if k + 1 < self.stages.len() {
                cur = QActivations::from_field(&out);
            }
        }
        out
    }

    /// Serves one power measurement (|field|² per port) on the integer
    /// path.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.input_dim()`.
    pub fn forward_powers(&self, x: &CVector) -> RVector {
        let y = self.forward(x);
        let mut p = RVector::zeros(y.len());
        for (dst, z) in p.iter_mut().zip(y.iter()) {
            *dst = z.norm_sqr();
        }
        p
    }

    /// Serializes to the `PQNT` byte format: magic, version, stage count,
    /// then per stage `rows·cols` header, `f32` LE row scales and `i16` LE
    /// real/imaginary planes. The encoding is canonical — equal networks
    /// produce identical bytes, so `from_bytes ∘ to_bytes` is the identity
    /// and `to_bytes ∘ from_bytes` reproduces the input byte-exactly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: usize = self.stages.iter().map(QMatrix::byte_len).sum();
        let mut out = Vec::with_capacity(4 + 4 + 4 + body);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.stages.len() as u32).to_le_bytes());
        for s in &self.stages {
            s.write_bytes(&mut out);
        }
        out
    }

    /// Parses the `PQNT` byte format. Returns `None` on a bad magic,
    /// unknown version, truncated buffer, or trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Option<QuantizedNetwork> {
        let mut r = ByteReader { buf: bytes };
        if r.take::<4>()? != MAGIC || r.u32()? != VERSION {
            return None;
        }
        let n_stages = r.u32()? as usize;
        if n_stages == 0 {
            return None;
        }
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            stages.push(QMatrix::read_bytes(&mut r)?);
        }
        r.buf.is_empty().then_some(QuantizedNetwork { stages })
    }
}

/// Minimal cursor over a byte buffer for [`QuantizedNetwork::from_bytes`].
struct ByteReader<'a> {
    buf: &'a [u8],
}

impl ByteReader<'_> {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        if self.buf.len() < N {
            return None;
        }
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        Some(head.try_into().expect("split_at guarantees length"))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Architecture;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_net(dim: usize) -> (Network, RVector) {
        let arch = Architecture::single_mesh(dim, dim).expect("valid architecture");
        let net = crate::chip::ideal_model(&arch);
        let mut rng = StdRng::seed_from_u64(11);
        let theta = net.init_params(&mut rng);
        (net, theta)
    }

    #[test]
    fn quantized_forward_tracks_f64_network() {
        let (net, theta) = linear_net(8);
        let q = QuantizedNetwork::quantize(&net, &theta).expect("all-linear net");
        for s in 0..8 {
            let x = CVector::basis(8, s);
            let exact = net.forward(&x, &theta);
            let served = q.forward(&x);
            for (a, b) in exact.iter().zip(served.iter()) {
                assert!(
                    (*a - *b).norm_sqr().sqrt() < 2e-3,
                    "exact {a:?} vs quantized {b:?}"
                );
            }
        }
    }

    #[test]
    fn nonlinear_networks_are_rejected() {
        let arch = Architecture::two_mesh_classifier(4, 4).expect("valid architecture");
        let net = crate::chip::ideal_model(&arch);
        let mut rng = StdRng::seed_from_u64(3);
        let theta = net.init_params(&mut rng);
        assert!(QuantizedNetwork::quantize(&net, &theta).is_none());
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let (net, theta) = linear_net(6);
        let q = QuantizedNetwork::quantize(&net, &theta).expect("all-linear net");
        let bytes = q.to_bytes();
        let back = QuantizedNetwork::from_bytes(&bytes).expect("valid buffer");
        assert_eq!(back, q);
        assert_eq!(back.to_bytes(), bytes, "re-serialization is byte-exact");
    }

    /// Regression test for the row-scale guard: a non-finite component
    /// used to drive the row scale to ∞ (`inv = 0`, every quantized entry
    /// NaN→0, dequantize `0 · ∞ = NaN`), poisoning the whole row. Now it
    /// saturates per component and every served value stays finite.
    #[test]
    fn non_finite_rows_saturate_instead_of_nan() {
        let m = CMatrix::from_rows(&[
            vec![C64::new(1.0, 0.0), C64::new(f64::INFINITY, 0.0)],
            vec![C64::new(0.5, f64::NAN), C64::new(-0.25, 0.0)],
            vec![C64::new(f64::NEG_INFINITY, f64::NAN), C64::new(f64::INFINITY, 0.0)],
        ]);
        let qm = QMatrix::quantize(&m);
        assert!(
            qm.row_scale.iter().all(|s| s.is_finite()),
            "row scales must be finite: {:?}",
            qm.row_scale
        );
        let q = QuantizedNetwork { stages: vec![qm] };
        let x = CVector::from_vec(vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)]);
        let y = q.forward(&x);
        assert!(
            y.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
            "serving a quantized non-finite row must stay finite: {y:?}"
        );
        // The ∞ component saturated to the quantization ceiling rather
        // than flattening its row to zero.
        assert_eq!(q.stages[0].re[1], i16::MAX);
        // The finite neighbours of a poisoned component survive.
        assert!(q.stages[0].re[0] > 0);
        assert!(q.stages[0].re[3] < 0);
    }

    /// A huge-but-finite row must not overflow the f32 row scale into ∞,
    /// and a tiny row must not store a zero/subnormal scale.
    #[test]
    fn extreme_magnitude_rows_keep_normal_scales() {
        let m = CMatrix::from_rows(&[
            vec![C64::new(1e300, 0.0), C64::new(-1e299, 0.0)],
            vec![C64::new(1e-44, 0.0), C64::new(0.0, -1e-45)],
            vec![C64::new(0.0, 0.0), C64::new(0.0, 0.0)],
        ]);
        let qm = QMatrix::quantize(&m);
        assert_eq!(qm.row_scale[0], f32::MAX, "huge rows clamp, not overflow");
        assert!(
            qm.row_scale[1] == 0.0 || qm.row_scale[1].is_normal(),
            "tiny rows must not store a subnormal scale: {:?}",
            qm.row_scale[1]
        );
        assert_eq!(qm.row_scale[2], 0.0, "all-zero row keeps scale 0");
        assert!(qm.re.iter().chain(&qm.im).skip(4).all(|&v| v == 0));
        let q = QuantizedNetwork { stages: vec![qm] };
        let y = q.forward(&CVector::from_vec(vec![C64::new(1.0, 0.5), C64::new(-0.5, 1.0)]));
        assert!(y.iter().all(|z| z.re.is_finite() && z.im.is_finite()), "{y:?}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// One matrix row drawn from the adversarial classes the scale
        /// guard must survive: all-zero, near the f64 magnitude ceiling,
        /// and ordinary O(1) values.
        fn arb_component() -> impl Strategy<Value = f64> {
            prop_oneof![
                Just(0.0f64),
                (0.5f64..1e308).prop_flat_map(|m| prop_oneof![Just(m), Just(-m)]),
                -2.0f64..2.0,
            ]
        }

        fn arb_row(cols: usize) -> impl Strategy<Value = Vec<C64>> {
            prop_oneof![
                Just(vec![C64::new(0.0, 0.0); cols]),
                proptest::collection::vec(
                    (arb_component(), arb_component()).prop_map(|(re, im)| C64::new(re, im)),
                    cols
                ),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Quantizing any mix of zero / max-magnitude / ordinary rows
            /// yields finite normal-or-zero scales, and the serialized
            /// artifact round-trips byte-exactly in both directions.
            #[test]
            fn adversarial_rows_roundtrip_byte_exactly(
                rows in proptest::collection::vec(arb_row(3), 1..5),
            ) {
                let m = CMatrix::from_rows(&rows);
                let qm = QMatrix::quantize(&m);
                for s in &qm.row_scale {
                    prop_assert!(*s == 0.0 || s.is_normal(), "bad scale {s:?}");
                }
                let q = QuantizedNetwork { stages: vec![qm] };
                let bytes = q.to_bytes();
                let back = QuantizedNetwork::from_bytes(&bytes).expect("valid buffer");
                prop_assert_eq!(&back, &q);
                prop_assert_eq!(back.to_bytes(), bytes);
                let x = CVector::from_vec(vec![
                    C64::new(1.0, 0.0),
                    C64::new(0.0, -1.0),
                    C64::new(0.5, 0.5),
                ]);
                let y = q.forward(&x);
                prop_assert!(
                    y.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
                    "quantized serve must stay finite: {:?}", y
                );
            }
        }
    }

    #[test]
    fn malformed_buffers_are_rejected() {
        let (net, theta) = linear_net(4);
        let q = QuantizedNetwork::quantize(&net, &theta).expect("all-linear net");
        let bytes = q.to_bytes();
        assert!(QuantizedNetwork::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(QuantizedNetwork::from_bytes(&bad_magic).is_none());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(QuantizedNetwork::from_bytes(&trailing).is_none());
    }
}
