//! Fisher-information machinery.
//!
//! The LCNG optimizer needs Fisher-metric products `F·v` where
//! `F = E_x[Jᵀ_r J_r]` is the (real-linearized) Gauss-Newton/Fisher metric
//! of the network output with respect to all parameters, averaged over a set
//! of input vectors. Because the module `vjp`s are exact real-adjoints of
//! the `jvp`s, the product is computed matrix-free as `vjp(jvp(v))` — one
//! forward-tangent and one reverse pass per input, never materializing the
//! `N × N` matrix.
//!
//! For diagnostics (the Fisher-spectrum figure) the module-level dense
//! blocks and output covariances are also provided.

use photon_exec::{tree_reduce, ExecPool};
use rand::Rng;

use photon_linalg::{hermitian_eig, CMatrix, CVector, RMatrix, RVector};

use crate::module::OnnModule;
use crate::network::Network;

/// Matrix-free Fisher-metric product `F·v` averaged over `inputs`, where
/// `F = (1/|inputs|) Σᵢ J(xᵢ)ᵀ_r J(xᵢ)_r` at parameters `theta`.
///
/// # Panics
///
/// Panics when `inputs` is empty or shapes mismatch the network.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_linalg::random::{normal_cvector, normal_rvector};
/// use photon_photonics::{fisher_vector_product, Architecture};
///
/// let net = Architecture::single_mesh(4, 4)?.build_ideal();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let theta = net.init_params(&mut rng);
/// let inputs: Vec<_> = (0..3).map(|_| normal_cvector(4, &mut rng)).collect();
/// let v = normal_rvector(net.param_count(), &mut rng);
/// let fv = fisher_vector_product(&net, &theta, &inputs, &v);
/// assert_eq!(fv.len(), net.param_count());
/// # Ok::<(), photon_photonics::NetworkError>(())
/// ```
pub fn fisher_vector_product(
    net: &Network,
    theta: &RVector,
    inputs: &[CVector],
    v: &RVector,
) -> RVector {
    assert!(
        !inputs.is_empty(),
        "fisher product needs at least one input"
    );
    let mut acc = RVector::zeros(net.param_count());
    for x in inputs {
        let (_, tape) = net.forward_tape(x, theta);
        let dy = net.jvp(&tape, theta, &CVector::zeros(net.input_dim()), v);
        let (_, grad) = net.vjp(&tape, theta, &dy);
        acc += &grad;
    }
    acc.scale(1.0 / inputs.len() as f64)
}

/// Fisher-metric products for a batch of directions, reusing the forward
/// tapes across directions (the LCNG Gram assembly path).
///
/// Returns one `F·v` per direction, in order.
///
/// # Panics
///
/// Panics when `inputs` is empty or shapes mismatch.
pub fn fisher_vector_products(
    net: &Network,
    theta: &RVector,
    inputs: &[CVector],
    directions: &[RVector],
) -> Vec<RVector> {
    assert!(
        !inputs.is_empty(),
        "fisher product needs at least one input"
    );
    let n = net.param_count();
    let mut acc: Vec<RVector> = directions.iter().map(|_| RVector::zeros(n)).collect();
    let zero_in = CVector::zeros(net.input_dim());
    for x in inputs {
        let (_, tape) = net.forward_tape(x, theta);
        for (k, v) in directions.iter().enumerate() {
            let dy = net.jvp(&tape, theta, &zero_in, v);
            let (_, grad) = net.vjp(&tape, theta, &dy);
            acc[k] += &grad;
        }
    }
    let scale = 1.0 / inputs.len() as f64;
    acc.into_iter().map(|a| a.scale(scale)).collect()
}

/// Pool-parallel variant of [`fisher_vector_products`], fanning the inputs
/// out across the pool's workers.
///
/// Each worker records the forward tape of its input once and pushes every
/// direction through it (the same tape reuse as the serial variant); the
/// per-input contributions are then combined along a fixed-shape reduction
/// tree, so the result is bitwise identical for every pool size.
///
/// # Panics
///
/// Panics when `inputs` is empty or shapes mismatch.
pub fn fisher_vector_products_pooled(
    net: &Network,
    theta: &RVector,
    inputs: &[CVector],
    directions: &[RVector],
    pool: &ExecPool,
) -> Vec<RVector> {
    assert!(
        !inputs.is_empty(),
        "fisher product needs at least one input"
    );
    let zero_in = CVector::zeros(net.input_dim());
    let per_input: Vec<Vec<RVector>> = pool.map(inputs, |_, x| {
        let (_, tape) = net.forward_tape(x, theta);
        directions
            .iter()
            .map(|v| {
                let dy = net.jvp(&tape, theta, &zero_in, v);
                let (_, grad) = net.vjp(&tape, theta, &dy);
                grad
            })
            .collect()
    });
    let summed = tree_reduce(per_input, &|mut a: Vec<RVector>, b: Vec<RVector>| {
        for (ga, gb) in a.iter_mut().zip(&b) {
            *ga += gb;
        }
        a
    })
    .expect("inputs is non-empty");
    let scale = 1.0 / inputs.len() as f64;
    summed.into_iter().map(|g| g.scale(scale)).collect()
}

/// Dense complex Jacobian `∂y/∂θ ∈ ℂ^{M×N}` of a single module at `(x, θ)`,
/// built column-by-column from JVPs.
///
/// Exact for linear (holomorphic) modules; for modReLU it is the ℂ-linear
/// part evaluated along real parameter tangents, which is what the output
/// perturbation analysis uses.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn module_jacobian(module: &dyn OnnModule, x: &CVector, theta: &[f64]) -> CMatrix {
    let n = module.param_count();
    let m = module.output_dim();
    let (_, tape) = module.forward_tape(x, theta);
    let mut j = CMatrix::zeros(m, n);
    let zero_in = CVector::zeros(module.input_dim());
    let mut dtheta = vec![0.0; n];
    for col in 0..n {
        dtheta[col] = 1.0;
        let dy = module.jvp(&tape, theta, &zero_in, &dtheta);
        j.set_col(col, &dy);
        dtheta[col] = 0.0;
    }
    j
}

/// Dense module Fisher block `F_u = Re(JᴴJ)` averaged over `inputs`.
///
/// This is the real Gauss-Newton metric restricted to one module's
/// parameters — the quantity whose spectrum demonstrates how interrelated
/// layered parameters are.
///
/// # Panics
///
/// Panics when `inputs` is empty.
pub fn module_fisher_block(module: &dyn OnnModule, theta: &[f64], inputs: &[CVector]) -> RMatrix {
    assert!(!inputs.is_empty(), "fisher block needs at least one input");
    let n = module.param_count();
    let mut f = RMatrix::zeros(n, n);
    for x in inputs {
        let j = module_jacobian(module, x, theta);
        // Re(JᴴJ)[a, b] = Σ_m Re(conj(J_ma)·J_mb)
        for a in 0..n {
            for b in a..n {
                let mut acc = 0.0;
                for m in 0..j.rows() {
                    let ja = j[(m, a)];
                    let jb = j[(m, b)];
                    acc += ja.re * jb.re + ja.im * jb.im;
                }
                f[(a, b)] += acc;
                f[(b, a)] = f[(a, b)];
            }
        }
    }
    f.scale(1.0 / inputs.len() as f64)
}

/// Empirical output covariance `C_y = (1/Q) Σ_q δy_q δy_qᴴ` of a module under
/// parameter perturbations `δθ_q`.
///
/// `perturbations` are mapped through the module Jacobian at `(x, θ)`.
/// The eigenvalue spread of the result measures how *isotropic* the output
/// perturbations are — the diagnostic motivating natural-gradient
/// preconditioning.
///
/// # Panics
///
/// Panics when `perturbations` is empty.
pub fn output_covariance(
    module: &dyn OnnModule,
    x: &CVector,
    theta: &[f64],
    perturbations: &[RVector],
) -> CMatrix {
    assert!(
        !perturbations.is_empty(),
        "output covariance needs at least one perturbation"
    );
    let m = module.output_dim();
    let (_, tape) = module.forward_tape(x, theta);
    let zero_in = CVector::zeros(module.input_dim());
    let mut c = CMatrix::zeros(m, m);
    for dtheta in perturbations {
        let dy = module.jvp(&tape, theta, &zero_in, dtheta.as_slice());
        for r in 0..m {
            for col in 0..m {
                let add = dy[r] * dy[col].conj();
                c[(r, col)] += add;
            }
        }
    }
    c.scale_real(1.0 / perturbations.len() as f64)
}

/// Eigenvalues (ascending) of an output covariance matrix — the isotropy
/// diagnostic series plotted in the Fisher-spectrum figure.
///
/// # Panics
///
/// Panics if the covariance is not square (never produced by
/// [`output_covariance`]).
pub fn covariance_eigenvalues(c: &CMatrix) -> RVector {
    hermitian_eig(c)
        .expect("covariance matrices are Hermitian and square")
        .values
}

/// Ratio of the largest to smallest eigenvalue of a PSD matrix, with
/// `floor` guarding the denominator. `1.0` means perfectly isotropic.
pub fn anisotropy_ratio(eigs: &RVector, floor: f64) -> f64 {
    if eigs.is_empty() {
        return 1.0;
    }
    let max = eigs.max();
    let min = eigs.min().max(floor);
    max / min
}

/// Draws `q` standard-normal perturbation directions of dimension `n`.
pub fn standard_perturbations<R: Rng + ?Sized>(n: usize, q: usize, rng: &mut R) -> Vec<RVector> {
    (0..q)
        .map(|_| photon_linalg::random::normal_rvector(n, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshModule;
    use crate::network::Architecture;
    use photon_linalg::random::{normal_cvector, normal_rvector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_theta<R: Rng>(n: usize, rng: &mut R) -> Vec<f64> {
        (0..n)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect()
    }

    #[test]
    fn fvp_matches_dense_fisher_on_linear_module() {
        // For a single linear module, the network FVP must equal the dense
        // module Fisher block applied to the direction.
        let mut rng = StdRng::seed_from_u64(51);
        let arch = Architecture::new(vec![crate::network::ModuleSpec::Clements {
            dim: 4,
            layers: 2,
        }])
        .unwrap();
        let net = arch.build_ideal();
        let theta = net.init_params(&mut rng);
        let inputs: Vec<CVector> = (0..3).map(|_| normal_cvector(4, &mut rng)).collect();
        let v = normal_rvector(net.param_count(), &mut rng);

        let fv = fisher_vector_product(&net, &theta, &inputs, &v);

        let module = &net.modules()[0];
        let f = module_fisher_block(module.as_ref(), theta.as_slice(), &inputs);
        let dense_fv = f.mul_vec(&v).unwrap();
        assert!((&fv - &dense_fv).max_abs() < 1e-10);
    }

    #[test]
    fn fisher_block_is_symmetric_psd() {
        let mut rng = StdRng::seed_from_u64(52);
        let mesh = MeshModule::clements(4, 4);
        let theta = random_theta(mesh.param_count(), &mut rng);
        let inputs: Vec<CVector> = (0..5).map(|_| normal_cvector(4, &mut rng)).collect();
        let f = module_fisher_block(&mesh, &theta, &inputs);
        assert!(f.is_symmetric(1e-12));
        // PSD: vᵀFv ≥ 0 for a few random v.
        for _ in 0..5 {
            let v = normal_rvector(f.rows(), &mut rng);
            let q = v.dot(&f.mul_vec(&v).unwrap()).unwrap();
            assert!(q >= -1e-10, "negative quadratic form {q}");
        }
    }

    #[test]
    fn layered_mesh_fisher_has_off_diagonal_mass() {
        // Interrelated layered parameters ⇒ non-negligible off-diagonals;
        // a diagonal phase layer ⇒ (near-)diagonal Fisher.
        let mut rng = StdRng::seed_from_u64(53);
        let mesh = MeshModule::clements(4, 4);
        let theta = random_theta(mesh.param_count(), &mut rng);
        let inputs: Vec<CVector> = (0..10).map(|_| normal_cvector(4, &mut rng)).collect();
        let f = module_fisher_block(&mesh, &theta, &inputs);
        let mut off = 0.0f64;
        for a in 0..f.rows() {
            for b in 0..f.cols() {
                if a != b {
                    off = off.max(f[(a, b)].abs());
                }
            }
        }
        assert!(off > 0.05, "expected interrelation, max off-diag {off}");

        let diag = MeshModule::phase_diag(4);
        let theta_d = random_theta(4, &mut rng);
        let fd = module_fisher_block(&diag, &theta_d, &inputs);
        let mut off_d = 0.0f64;
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    off_d = off_d.max(fd[(a, b)].abs());
                }
            }
        }
        assert!(off_d < 1e-10, "phase diag should be uncorrelated, {off_d}");
    }

    #[test]
    fn module_jacobian_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(54);
        let mesh = MeshModule::clements(3, 3);
        let theta = random_theta(mesh.param_count(), &mut rng);
        let x = normal_cvector(3, &mut rng);
        let j = module_jacobian(&mesh, &x, &theta);

        let eps = 1e-6;
        for col in 0..mesh.param_count() {
            let mut tp = theta.clone();
            tp[col] += eps;
            let mut tm = theta.clone();
            tm[col] -= eps;
            let fd = (&mesh.forward(&x, &tp) - &mesh.forward(&x, &tm)).scale_real(0.5 / eps);
            assert!((&j.col(col) - &fd).max_abs() < 1e-6, "column {col}");
        }
    }

    #[test]
    fn output_covariance_isotropy_improves_with_whitening() {
        // Perturbing with Σ = (F + ρI)⁻¹-shaped noise must reduce output
        // anisotropy versus identity perturbations — the core premise of
        // natural-gradient preconditioning.
        let mut rng = StdRng::seed_from_u64(55);
        let mesh = MeshModule::clements(4, 4);
        let n = mesh.param_count();
        let theta = random_theta(n, &mut rng);
        let inputs: Vec<CVector> = (0..20).map(|_| normal_cvector(4, &mut rng)).collect();

        let mut f = module_fisher_block(&mesh, &theta, &inputs);
        f.add_diagonal(0.1);
        let chol = photon_linalg::RCholesky::new(&f.inverse().unwrap().scale(1.1)).unwrap();

        let x = normal_cvector(4, &mut rng);
        let iso_pert: Vec<RVector> = (0..400).map(|_| normal_rvector(n, &mut rng)).collect();
        let nat_pert: Vec<RVector> = (0..400)
            .map(|_| photon_linalg::random::sample_gaussian(&chol, &mut rng).unwrap())
            .collect();

        let c_iso = output_covariance(&mesh, &x, &theta, &iso_pert);
        let c_nat = output_covariance(&mesh, &x, &theta, &nat_pert);
        let r_iso = anisotropy_ratio(&covariance_eigenvalues(&c_iso), 1e-12);
        let r_nat = anisotropy_ratio(&covariance_eigenvalues(&c_nat), 1e-12);
        assert!(
            r_nat < r_iso,
            "whitened perturbations should be more isotropic: {r_nat} vs {r_iso}"
        );
    }

    #[test]
    fn anisotropy_edge_cases() {
        assert_eq!(anisotropy_ratio(&RVector::zeros(0), 1e-12), 1.0);
        let flat = RVector::from_slice(&[2.0, 2.0, 2.0]);
        assert!((anisotropy_ratio(&flat, 1e-12) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_fvp_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(57);
        let net = Architecture::single_mesh(4, 2).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let inputs: Vec<CVector> = (0..5).map(|_| normal_cvector(4, &mut rng)).collect();
        let dirs: Vec<RVector> = (0..4)
            .map(|_| normal_rvector(net.param_count(), &mut rng))
            .collect();
        let serial =
            fisher_vector_products_pooled(&net, &theta, &inputs, &dirs, &ExecPool::serial());
        for threads in [2usize, 4, 8] {
            let pooled = fisher_vector_products_pooled(
                &net,
                &theta,
                &inputs,
                &dirs,
                &ExecPool::new(threads),
            );
            for (a, b) in serial.iter().zip(&pooled) {
                for (va, vb) in a.iter().zip(b.iter()) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
        // Same operator as the linear-accumulation variant, up to fp
        // reassociation.
        let linear = fisher_vector_products(&net, &theta, &inputs, &dirs);
        for (a, b) in serial.iter().zip(&linear) {
            assert!((a - b).max_abs() < 1e-12);
        }
    }

    #[test]
    fn batched_fvp_matches_single() {
        let mut rng = StdRng::seed_from_u64(56);
        let net = Architecture::single_mesh(4, 2).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let inputs: Vec<CVector> = (0..2).map(|_| normal_cvector(4, &mut rng)).collect();
        let dirs: Vec<RVector> = (0..3)
            .map(|_| normal_rvector(net.param_count(), &mut rng))
            .collect();
        let batched = fisher_vector_products(&net, &theta, &inputs, &dirs);
        for (k, d) in dirs.iter().enumerate() {
            let single = fisher_vector_product(&net, &theta, &inputs, d);
            assert!((&batched[k] - &single).max_abs() < 1e-12);
        }
    }
}
