//! Compiled forward plans: cached dense unitaries + batched GEMM execution.
//!
//! A mesh is linear in the optical field, so for a fixed `theta` every run
//! of consecutive linear modules collapses to one dense `N×N` matrix. A
//! [`CompiledNetwork`] caches those matrices (keyed by the exact `theta`
//! they were compiled at, with a generation counter exposed for cache
//! observability) and evaluates a whole `B`-sample batch per stage:
//! linear stages as one multi-RHS GEMM, nonlinear stages (modReLU,
//! electro-optic) element-wise per column. Per probe point this replaces
//! `O(ops·B)` interpreted op applications — each with its own trig — by an
//! `O(ops·N)` compile plus an `O(N²·B)` GEMM.
//!
//! Numerical contract: compiled evaluation matches the interpreted op walk
//! to rounding (≤1e-12 observed at the dimensions used here), but is *not*
//! bitwise-identical to it — summation orders differ. The single-sample
//! `forward_into` paths therefore stay interpreted; only the batched entry
//! points use compiled plans. Within the compiled path, every output value
//! is bitwise-independent of the batch partition, which preserves
//! worker-pool determinism.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use photon_linalg::{
    gemm32_into, gemm_into, CMatrix, CPanel, CVector, Matrix32, Panel32, RVector, C64,
};

use crate::module::PsSnapshot;
use crate::network::Network;

/// Maximum number of changed phases an incremental serve will absorb; any
/// wider theta-diff falls back to a full recompile.
pub const MAX_INCREMENTAL_PHASES: usize = 4;

/// Multi-phase incremental serves additionally require every `|Δθ|` below
/// this bound: the per-phase rank-1 updates are applied against the shared
/// pinned base, so cross-terms of order `O(Δ²)` are dropped. A
/// single-phase serve is mathematically exact and is accepted at any `Δ`.
pub const MULTI_PHASE_DELTA_LIMIT: f64 = 1e-4;

/// Incremental serves a plan performs between forced full f64 recompiles.
///
/// Every incremental serve is computed from the pristine pinned base, so no
/// error accumulates serve-over-serve; this cadence is defense-in-depth for
/// long-lived serving plans whose pin is never refreshed. Per-call training
/// plans serve far fewer thetas than this between full compiles, so the
/// counter never trips there and pool-size determinism is preserved.
pub const FORCED_RECOMPILE_PERIOD: u64 = 256;

/// One execution stage of a compiled plan.
#[derive(Debug, Clone)]
enum Stage {
    /// A fused run of consecutive compilable (linear) modules, evaluated as
    /// a single GEMM with the cached product matrix.
    Linear {
        /// Dense transfer matrix of the fused module run at the cached
        /// `theta`.
        matrix: CMatrix,
        /// Indices into `Network::modules()` of the fused run, in order.
        modules: std::ops::Range<usize>,
        /// Optical dimension of the run (rows of `matrix`).
        dim: usize,
    },
    /// A nonlinear module applied element-wise, column by column.
    Pointwise {
        /// Index into `Network::modules()`.
        module: usize,
    },
}

/// One stage of a [`PinnedBase`]: the compiled matrix of a fused linear run
/// plus the per-phase-shifter snapshots that make rank-1 incremental
/// updates possible, or a marker for a nonlinear stage (which reads live
/// theta at evaluation time and needs no compiled state).
#[derive(Debug)]
enum BaseStage {
    Linear {
        /// Fused transfer matrix at the pinned theta.
        matrix: CMatrix,
        /// Global theta indices covered by this stage's modules.
        params: Range<usize>,
        /// Global theta index → entry in `snaps`. Phases driven by more
        /// than one shifter (never produced by this crate's meshes) are
        /// excluded, downgrading changes to them to a full recompile.
        lookup: HashMap<usize, usize>,
        /// Prefix/suffix snapshots recorded at compile time, in op order.
        snaps: Vec<PsSnapshot>,
    },
    Pointwise,
}

/// An immutable, fully compiled forward plan pinned at one exact `theta`,
/// shared (via `Arc`) by every transient per-worker [`CompiledNetwork`] of
/// a chip.
///
/// A pinned plan lets a worker serve a request as a *pure function* of
/// `(base, request theta)`: an exact theta match copies the base matrices,
/// a sparse diff (≤[`MAX_INCREMENTAL_PHASES`] phases) applies per-phase
/// rank-1 corrections in `O(N²)` per stage instead of an `O(ops·N)` mesh
/// recompile, and anything wider falls back to a full compile. Because the
/// base is never mutated, results are independent of serve order and
/// worker count — the property the pool-size determinism suite pins down.
///
/// Compile one at a serial control point (the trainer does this once per
/// iteration, next to `OnnChip::advance_to`) and install it with
/// [`CompiledNetwork::set_pinned`].
#[derive(Debug)]
pub struct PinnedBase {
    stages: Vec<BaseStage>,
    theta: RVector,
}

impl PinnedBase {
    /// Compiles a pinned base for `net` at `theta`, returning `None` when
    /// the network has a module that cannot be compiled (the caller then
    /// simply serves without a pin — today's behavior).
    ///
    /// The forward walk is arithmetic-for-arithmetic identical to the plain
    /// stage compile, so an exact-match serve from the base is bitwise
    /// equal to a fresh full compile.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != net.param_count()`.
    pub fn compile(net: &Network, theta: &RVector) -> Option<Arc<PinnedBase>> {
        assert_eq!(theta.len(), net.param_count(), "parameter count mismatch");
        let modules = net.modules();
        let mut stages = Vec::new();
        let mut run_start = None;
        for (i, m) in modules.iter().enumerate() {
            if m.is_compilable() {
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else {
                if let Some(start) = run_start.take() {
                    stages.push(Self::compile_linear(net, theta, start..i)?);
                }
                stages.push(BaseStage::Pointwise);
            }
        }
        if let Some(start) = run_start {
            stages.push(Self::compile_linear(net, theta, start..modules.len())?);
        }
        Some(Arc::new(PinnedBase {
            stages,
            theta: theta.clone(),
        }))
    }

    /// The exact theta this base was compiled at.
    #[must_use]
    pub fn theta(&self) -> &RVector {
        &self.theta
    }

    fn compile_linear(net: &Network, theta: &RVector, range: Range<usize>) -> Option<BaseStage> {
        let modules = net.modules();
        let dim = modules[range.start].input_dim();
        let mut matrix = CMatrix::identity(dim);
        let mut snaps: Vec<PsSnapshot> = Vec::new();
        // (module index, snapshot span) per module, for the reverse walk.
        let mut spans = Vec::new();
        for i in range.clone() {
            let pr = net.module_param_range(i);
            let before = snaps.len();
            if !modules[i].compile_apply_probed(&theta.as_slice()[pr.clone()], &mut matrix, &mut snaps)
            {
                return None;
            }
            for s in &mut snaps[before..] {
                s.param += pr.start;
            }
            spans.push((i, before, snaps.len()));
        }
        // Reverse walk fills the suffix columns. A module that does not
        // support the walk breaks the suffix products of everything before
        // it, so probing is abandoned for the whole stage (the stage still
        // serves exact-theta matches from its matrix).
        let mut acc = CMatrix::identity(dim);
        let mut probed = true;
        for &(i, s0, s1) in spans.iter().rev() {
            let pr = net.module_param_range(i);
            if !modules[i].compile_suffix_probed(&theta.as_slice()[pr], &mut acc, &mut snaps[s0..s1])
            {
                probed = false;
                break;
            }
        }
        if !probed {
            snaps.clear();
        }
        let params =
            net.module_param_range(range.start).start..net.module_param_range(range.end - 1).end;
        let mut lookup = HashMap::new();
        let mut dup = Vec::new();
        for (k, s) in snaps.iter().enumerate() {
            if lookup.insert(s.param, k).is_some() {
                dup.push(s.param);
            }
        }
        for p in dup {
            lookup.remove(&p);
        }
        Some(BaseStage::Linear {
            matrix,
            params,
            lookup,
            snaps,
        })
    }
}

/// A cached compiled execution plan for one [`Network`].
///
/// The stage *structure* (which modules fuse into which linear runs) is
/// theta-independent and built once; the stage *matrices* are recompiled
/// whenever the plan is asked to run at a `theta` different from the cached
/// one. [`CompiledNetwork::generation`] counts recompiles, so callers and
/// tests can observe cache behaviour.
///
/// All buffers (matrices, ping/pong panels, per-column scratch) are owned
/// and reused: steady-state re-evaluation at fixed `N`, `B` performs no
/// heap allocation.
#[derive(Debug, Clone, Default)]
pub struct CompiledNetwork {
    stages: Vec<Stage>,
    structured: bool,
    cached_theta: RVector,
    valid: bool,
    generation: u64,
    hits: u64,
    invalidations: u64,
    full_compiles: u64,
    incremental: u64,
    forced_recompiles: u64,
    serves_since_full: u64,
    pinned: Option<Arc<PinnedBase>>,
    diff_idx: Vec<usize>,
    fast32: bool,
    m32: Vec<Matrix32>,
    m32_generation: u64,
    ping32: Panel32,
    pong32: Panel32,
    ping: CPanel,
    pong: CPanel,
    col_in: CVector,
    col_out: CVector,
}

/// Cache counters for one [`CompiledNetwork`] plan (or an aggregate over
/// the transient per-worker plans of a chip — see `OnnChip::cache_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `ensure` calls served by the cached matrices (theta unchanged).
    pub hits: u64,
    /// Full f64 compilations — every `ensure` that rebuilt the stage
    /// matrices by walking the op lists.
    pub misses: u64,
    /// Rebuilds that evicted a previously valid plan (i.e. theta moved);
    /// the remainder are cold compiles.
    pub invalidations: u64,
    /// Rebuilds served incrementally from a pinned base (exact-match copy
    /// or sparse rank-1 update) instead of a full op-walk compile.
    pub incremental: u64,
    /// Full recompiles forced by the [`FORCED_RECOMPILE_PERIOD`] cadence
    /// while a pinned base was installed.
    pub forced_recompiles: u64,
}

impl CacheStats {
    /// Counterwise sum (aggregating several plans into one chip view).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.incremental += other.incremental;
        self.forced_recompiles += other.forced_recompiles;
    }

    /// Counterwise difference against an earlier snapshot of the same
    /// monotone counters.
    #[must_use]
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            incremental: self.incremental.saturating_sub(earlier.incremental),
            forced_recompiles: self.forced_recompiles.saturating_sub(earlier.forced_recompiles),
        }
    }
}

impl CompiledNetwork {
    /// An empty plan; the structure is built lazily on first use against a
    /// concrete network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recompiles performed so far. Two evaluations at the same
    /// `theta` leave this unchanged; mutating `theta` bumps it.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cache counters for this plan. `hits` counts `ensure` calls that
    /// reused the cached matrices; `misses` counts full op-walk compiles;
    /// `incremental` counts rebuilds served from the pinned base;
    /// `invalidations` counts rebuilds (of either kind) that replaced a
    /// previously valid plan. Without a pin, `misses` equals
    /// [`CompiledNetwork::generation`].
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.full_compiles,
            invalidations: self.invalidations,
            incremental: self.incremental,
            forced_recompiles: self.forced_recompiles,
        }
    }

    /// Installs (or clears) the shared pinned base this plan may serve
    /// incremental rebuilds from. Plans without a pin behave exactly as
    /// before pinning existed. Installing a different pin resets the
    /// forced-recompile cadence, since the base itself is fresh.
    pub fn set_pinned(&mut self, pin: Option<Arc<PinnedBase>>) {
        let changed = match (&self.pinned, &pin) {
            (Some(a), Some(b)) => !Arc::ptr_eq(a, b),
            (None, None) => false,
            _ => true,
        };
        if changed {
            self.serves_since_full = 0;
        }
        self.pinned = pin;
    }

    /// Switches the batched evaluation between the f64 oracle kernels and
    /// the opt-in f32 structure-of-arrays fast path. The compiled f64 stage
    /// matrices stay authoritative either way; `fast32` only changes the
    /// GEMM precision at evaluation time, bounded at ≤1e-5 relative loss
    /// error by the equivalence suite.
    pub fn set_fast32(&mut self, fast32: bool) {
        self.fast32 = fast32;
    }

    fn build_structure(&mut self, net: &Network) {
        self.stages.clear();
        let modules = net.modules();
        let mut run_start = None;
        for (i, m) in modules.iter().enumerate() {
            if m.is_compilable() {
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else {
                if let Some(start) = run_start.take() {
                    let dim = modules[start].input_dim();
                    self.stages.push(Stage::Linear {
                        matrix: CMatrix::identity(dim),
                        modules: start..i,
                        dim,
                    });
                }
                self.stages.push(Stage::Pointwise { module: i });
            }
        }
        if let Some(start) = run_start {
            let dim = modules[start].input_dim();
            self.stages.push(Stage::Linear {
                matrix: CMatrix::identity(dim),
                modules: start..modules.len(),
                dim,
            });
        }
        self.structured = true;
    }

    /// Makes the plan valid for `net` at `theta`, rebuilding the linear
    /// stage matrices only when `theta` differs from the cached value.
    /// Returns `true` when a rebuild happened.
    ///
    /// With a pinned base installed (see [`CompiledNetwork::set_pinned`]),
    /// a rebuild whose theta-diff against the pin is sparse is served as a
    /// base copy plus rank-1 corrections; everything else is a full op-walk
    /// compile, exactly as before pinning existed.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != net.param_count()`.
    pub fn ensure(&mut self, net: &Network, theta: &RVector) -> bool {
        assert_eq!(theta.len(), net.param_count(), "parameter count mismatch");
        if !self.structured {
            self.build_structure(net);
        }
        if self.valid && self.cached_theta.as_slice() == theta.as_slice() {
            self.hits += 1;
            return false;
        }
        if self.valid {
            self.invalidations += 1;
        }
        if self.try_pinned_serve(theta) {
            self.incremental += 1;
            self.serves_since_full += 1;
        } else {
            for stage in &mut self.stages {
                if let Stage::Linear {
                    matrix,
                    modules,
                    dim,
                } = stage
                {
                    matrix.reset_identity(*dim);
                    for i in modules.clone() {
                        let range = net.module_param_range(i);
                        let applied =
                            net.modules()[i].compile_apply(&theta.as_slice()[range], matrix);
                        debug_assert!(applied, "linear stage contains a non-compilable module");
                    }
                }
            }
            self.full_compiles += 1;
            self.serves_since_full = 0;
        }
        self.cached_theta.copy_from(theta);
        self.valid = true;
        self.generation += 1;
        true
    }

    /// Attempts to rebuild the stage matrices from the pinned base. On
    /// success the matrices hold `base + Σ δ·b·cᵀ` over the changed phases
    /// and `true` is returned; on any gate failure the matrices are left
    /// untouched and the caller performs a full compile.
    fn try_pinned_serve(&mut self, theta: &RVector) -> bool {
        let Some(pin) = self.pinned.as_ref() else {
            return false;
        };
        if pin.theta.len() != theta.len() || pin.stages.len() != self.stages.len() {
            return false;
        }
        if self.serves_since_full >= FORCED_RECOMPILE_PERIOD {
            self.forced_recompiles += 1;
            return false;
        }
        let base = pin.theta.as_slice();
        let req = theta.as_slice();
        self.diff_idx.clear();
        let mut max_delta = 0.0f64;
        for (k, (&a, &b)) in base.iter().zip(req).enumerate() {
            if a != b {
                if self.diff_idx.len() == MAX_INCREMENTAL_PHASES {
                    return false;
                }
                self.diff_idx.push(k);
                max_delta = max_delta.max((b - a).abs());
            }
        }
        if self.diff_idx.len() > 1 && max_delta > MULTI_PHASE_DELTA_LIMIT {
            return false;
        }
        // Feasibility pass: every changed phase inside a linear stage must
        // have a usable snapshot (changes to pointwise-module parameters
        // need no matrix work — those stages read live theta at eval time).
        for (stage, bstage) in self.stages.iter().zip(&pin.stages) {
            match (stage, bstage) {
                (Stage::Linear { .. }, BaseStage::Linear { params, lookup, .. }) => {
                    for &k in &self.diff_idx {
                        if params.contains(&k) && !lookup.contains_key(&k) {
                            return false;
                        }
                    }
                }
                (Stage::Pointwise { .. }, BaseStage::Pointwise) => {}
                _ => return false,
            }
        }
        // Commit: copy the base matrices and apply one rank-1 correction
        // per changed phase, in ascending phase order (a fixed order, so
        // the result is a pure function of the pin and the request theta).
        for (stage, bstage) in self.stages.iter_mut().zip(&pin.stages) {
            if let (
                Stage::Linear { matrix, dim, .. },
                BaseStage::Linear {
                    matrix: base_matrix,
                    params,
                    lookup,
                    snaps,
                },
            ) = (stage, bstage)
            {
                matrix.clone_from(base_matrix);
                for &k in &self.diff_idx {
                    if !params.contains(&k) {
                        continue;
                    }
                    let snap = &snaps[lookup[&k]];
                    let delta = snap.zeta * (C64::cis(req[k]) - C64::cis(base[k]));
                    for r in 0..*dim {
                        let coef = delta * snap.suffix[r];
                        for (m, &p) in matrix.row_mut(r).iter_mut().zip(&snap.prefix) {
                            *m += coef * p;
                        }
                    }
                }
            }
        }
        true
    }

    /// Evaluates the network on a whole batch of inputs, returning the
    /// packed `output_dim × B` result panel (column `b` is the output field
    /// of `xs[b]`).
    ///
    /// Compiles lazily via [`CompiledNetwork::ensure`]. Each output column
    /// is bitwise-independent of the other columns and of the batch width,
    /// so callers may partition batches freely without perturbing results.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != net.param_count()` or any input length
    /// differs from `net.input_dim()`.
    pub fn forward_batch(&mut self, net: &Network, theta: &RVector, xs: &[&CVector]) -> &CPanel {
        self.ensure(net, theta);
        if self.fast32 {
            return self.forward_batch_f32(net, theta, xs);
        }
        let n = net.input_dim();
        let b = xs.len();
        self.ping.resize(n, b);
        for (j, x) in xs.iter().enumerate() {
            // The single validated boundary check for the batched path.
            assert_eq!(x.len(), n, "input dimension mismatch");
            self.ping.col_mut(j).copy_from_slice(x.as_slice());
        }
        let CompiledNetwork {
            stages,
            ping,
            pong,
            col_in,
            col_out,
            ..
        } = self;
        let mut cur_is_ping = true;
        for stage in stages.iter() {
            let (src, dst) = if cur_is_ping {
                (&*ping, &mut *pong)
            } else {
                (&*pong, &mut *ping)
            };
            match stage {
                Stage::Linear { matrix, .. } => gemm_into(matrix, src, dst),
                Stage::Pointwise { module } => {
                    let m = &net.modules()[*module];
                    let th = &theta.as_slice()[net.module_param_range(*module)];
                    dst.resize(m.output_dim(), b);
                    for j in 0..b {
                        col_in.copy_from_slice(src.col(j));
                        m.forward_into(col_in, th, col_out);
                        dst.col_mut(j).copy_from_slice(col_out.as_slice());
                    }
                }
            }
            cur_is_ping = !cur_is_ping;
        }
        if cur_is_ping {
            &self.ping
        } else {
            &self.pong
        }
    }

    /// The f32 twin of the evaluation loop: linear stages run through the
    /// SIMD-dispatched split-plane GEMM, pointwise stages promote each
    /// column to f64, apply the module, and demote back. The final panel is
    /// promoted to f64 so callers see the same [`CPanel`] type either way.
    fn forward_batch_f32(&mut self, net: &Network, theta: &RVector, xs: &[&CVector]) -> &CPanel {
        if self.m32_generation != self.generation || self.m32.len() != self.stages.len() {
            self.m32.resize_with(self.stages.len(), Matrix32::new);
            for (si, stage) in self.stages.iter().enumerate() {
                if let Stage::Linear { matrix, .. } = stage {
                    self.m32[si].copy_from_cmatrix(matrix);
                }
            }
            self.m32_generation = self.generation;
        }
        let n = net.input_dim();
        let b = xs.len();
        self.ping32.resize(n, b);
        for (j, x) in xs.iter().enumerate() {
            // The single validated boundary check for the batched path.
            assert_eq!(x.len(), n, "input dimension mismatch");
            self.ping32.set_col_c64(j, x.as_slice());
        }
        let CompiledNetwork {
            stages,
            m32,
            ping32,
            pong32,
            col_in,
            col_out,
            ping,
            ..
        } = self;
        let mut cur_is_ping = true;
        for (si, stage) in stages.iter().enumerate() {
            let (src, dst) = if cur_is_ping {
                (&*ping32, &mut *pong32)
            } else {
                (&*pong32, &mut *ping32)
            };
            match stage {
                Stage::Linear { .. } => gemm32_into(&m32[si], src, dst),
                Stage::Pointwise { module } => {
                    let m = &net.modules()[*module];
                    let th = &theta.as_slice()[net.module_param_range(*module)];
                    dst.resize(m.output_dim(), b);
                    col_in.resize_zeroed(src.dim());
                    for j in 0..b {
                        src.col_to_c64(j, col_in.as_mut_slice());
                        m.forward_into(col_in, th, col_out);
                        dst.set_col_c64(j, col_out.as_slice());
                    }
                }
            }
            cur_is_ping = !cur_is_ping;
        }
        let winner = if cur_is_ping { &*ping32 } else { &*pong32 };
        winner.copy_to_cpanel(ping);
        &*ping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Architecture, NetworkScratch};
    use photon_linalg::random::normal_cvector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(dim: usize, b: usize, rng: &mut StdRng) -> Vec<CVector> {
        (0..b).map(|_| normal_cvector(dim, rng)).collect()
    }

    #[test]
    fn compiled_batch_matches_interpreted_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        for arch in [
            Architecture::single_mesh(6, 6).unwrap(),
            Architecture::two_mesh_classifier(6, 6).unwrap(),
        ] {
            let net = arch.build_ideal();
            let theta = net.init_params(&mut rng);
            let xs = batch(6, 5, &mut rng);
            let refs: Vec<&CVector> = xs.iter().collect();
            let mut plan = CompiledNetwork::new();
            let panel = plan.forward_batch(&net, &theta, &refs);
            let mut scratch = NetworkScratch::new();
            for (j, x) in xs.iter().enumerate() {
                let want = net.forward_into(x, &theta, &mut scratch);
                for k in 0..want.len() {
                    assert!(
                        (panel.col(j)[k] - want[k]).abs() < 1e-12,
                        "sample {j} port {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_mesh_fuses_to_one_linear_stage() {
        let net = Architecture::single_mesh(4, 4).unwrap().build_ideal();
        let mut plan = CompiledNetwork::new();
        let theta = RVector::zeros(net.param_count());
        plan.ensure(&net, &theta);
        assert_eq!(plan.stages.len(), 1);
        assert!(matches!(plan.stages[0], Stage::Linear { .. }));
    }

    #[test]
    fn pinned_exact_match_serve_is_bitwise_equal_to_full_compile() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = Architecture::two_mesh_classifier(5, 5).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs = batch(5, 4, &mut rng);
        let refs: Vec<&CVector> = xs.iter().collect();

        let mut plain = CompiledNetwork::new();
        let want = plain.forward_batch(&net, &theta, &refs).clone();

        let pin = PinnedBase::compile(&net, &theta).expect("meshes are compilable");
        let mut pinned = CompiledNetwork::new();
        pinned.set_pinned(Some(pin));
        let got = pinned.forward_batch(&net, &theta, &refs);
        assert_eq!(got.as_slice(), want.as_slice(), "exact match must be bitwise");
        assert_eq!(pinned.cache_stats().incremental, 1);
        assert_eq!(pinned.cache_stats().misses, 0);
    }

    #[test]
    fn pinned_single_phase_serve_matches_full_compile() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = Architecture::single_mesh(6, 6).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs = batch(6, 3, &mut rng);
        let refs: Vec<&CVector> = xs.iter().collect();
        let pin = PinnedBase::compile(&net, &theta).unwrap();

        for k in [0usize, 7, net.param_count() - 1] {
            let mut theta2 = theta.clone();
            theta2[k] += 0.37; // single-phase updates are exact at any Δ
            let mut plain = CompiledNetwork::new();
            let want = plain.forward_batch(&net, &theta2, &refs).clone();
            let mut pinned = CompiledNetwork::new();
            pinned.set_pinned(Some(pin.clone()));
            let got = pinned.forward_batch(&net, &theta2, &refs).clone();
            assert_eq!(pinned.cache_stats().incremental, 1, "phase {k} not incremental");
            for j in 0..3 {
                for p in 0..6 {
                    assert!(
                        (got.col(j)[p] - want.col(j)[p]).abs() < 1e-12,
                        "phase {k} sample {j} port {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_diffs_fall_back_to_full_compile() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = Architecture::single_mesh(4, 4).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs = batch(4, 2, &mut rng);
        let refs: Vec<&CVector> = xs.iter().collect();
        let pin = PinnedBase::compile(&net, &theta).unwrap();
        let mut plan = CompiledNetwork::new();
        plan.set_pinned(Some(pin));
        let mut theta2 = theta.clone();
        for k in 0..=MAX_INCREMENTAL_PHASES {
            theta2[k] += 1e-5;
        }
        plan.forward_batch(&net, &theta2, &refs);
        let stats = plan.cache_stats();
        assert_eq!(stats.incremental, 0, "diff wider than K must not be incremental");
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn forced_recompile_cadence_is_observable() {
        let mut rng = StdRng::seed_from_u64(14);
        let net = Architecture::single_mesh(3, 3).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs = batch(3, 1, &mut rng);
        let refs: Vec<&CVector> = xs.iter().collect();
        let pin = PinnedBase::compile(&net, &theta).unwrap();
        let mut plan = CompiledNetwork::new();
        plan.set_pinned(Some(pin));
        let mut theta2 = theta.clone();
        for i in 0..=FORCED_RECOMPILE_PERIOD {
            theta2[0] = theta[0] + 1e-6 * (i + 1) as f64;
            plan.forward_batch(&net, &theta2, &refs);
        }
        let stats = plan.cache_stats();
        assert_eq!(stats.forced_recompiles, 1, "cadence must force one full recompile");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.incremental, FORCED_RECOMPILE_PERIOD);
    }

    #[test]
    fn fast32_evaluation_tracks_f64_oracle() {
        let mut rng = StdRng::seed_from_u64(15);
        let net = Architecture::two_mesh_classifier(6, 6).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs = batch(6, 5, &mut rng);
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut plain = CompiledNetwork::new();
        let want = plain.forward_batch(&net, &theta, &refs).clone();
        let mut fast = CompiledNetwork::new();
        fast.set_fast32(true);
        let got = fast.forward_batch(&net, &theta, &refs);
        for j in 0..5 {
            for p in 0..6 {
                assert!(
                    (got.col(j)[p] - want.col(j)[p]).abs() < 1e-4,
                    "sample {j} port {p}"
                );
            }
        }
    }

    #[test]
    fn generation_counts_recompiles_only() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = Architecture::single_mesh(4, 4).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs = batch(4, 3, &mut rng);
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut plan = CompiledNetwork::new();
        assert_eq!(plan.generation(), 0);
        plan.forward_batch(&net, &theta, &refs);
        assert_eq!(plan.generation(), 1);
        plan.forward_batch(&net, &theta, &refs);
        assert_eq!(plan.generation(), 1, "same theta must hit the cache");
        let mut theta2 = theta.clone();
        theta2[0] += 1e-3;
        plan.forward_batch(&net, &theta2, &refs);
        assert_eq!(plan.generation(), 2, "mutated theta must recompile");
    }
}
