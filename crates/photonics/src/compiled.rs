//! Compiled forward plans: cached dense unitaries + batched GEMM execution.
//!
//! A mesh is linear in the optical field, so for a fixed `theta` every run
//! of consecutive linear modules collapses to one dense `N×N` matrix. A
//! [`CompiledNetwork`] caches those matrices (keyed by the exact `theta`
//! they were compiled at, with a generation counter exposed for cache
//! observability) and evaluates a whole `B`-sample batch per stage:
//! linear stages as one multi-RHS GEMM, nonlinear stages (modReLU,
//! electro-optic) element-wise per column. Per probe point this replaces
//! `O(ops·B)` interpreted op applications — each with its own trig — by an
//! `O(ops·N)` compile plus an `O(N²·B)` GEMM.
//!
//! Numerical contract: compiled evaluation matches the interpreted op walk
//! to rounding (≤1e-12 observed at the dimensions used here), but is *not*
//! bitwise-identical to it — summation orders differ. The single-sample
//! `forward_into` paths therefore stay interpreted; only the batched entry
//! points use compiled plans. Within the compiled path, every output value
//! is bitwise-independent of the batch partition, which preserves
//! worker-pool determinism.

use photon_linalg::{gemm_into, CMatrix, CPanel, CVector, RVector};

use crate::network::Network;

/// One execution stage of a compiled plan.
#[derive(Debug, Clone)]
enum Stage {
    /// A fused run of consecutive compilable (linear) modules, evaluated as
    /// a single GEMM with the cached product matrix.
    Linear {
        /// Dense transfer matrix of the fused module run at the cached
        /// `theta`.
        matrix: CMatrix,
        /// Indices into `Network::modules()` of the fused run, in order.
        modules: std::ops::Range<usize>,
        /// Optical dimension of the run (rows of `matrix`).
        dim: usize,
    },
    /// A nonlinear module applied element-wise, column by column.
    Pointwise {
        /// Index into `Network::modules()`.
        module: usize,
    },
}

/// A cached compiled execution plan for one [`Network`].
///
/// The stage *structure* (which modules fuse into which linear runs) is
/// theta-independent and built once; the stage *matrices* are recompiled
/// whenever the plan is asked to run at a `theta` different from the cached
/// one. [`CompiledNetwork::generation`] counts recompiles, so callers and
/// tests can observe cache behaviour.
///
/// All buffers (matrices, ping/pong panels, per-column scratch) are owned
/// and reused: steady-state re-evaluation at fixed `N`, `B` performs no
/// heap allocation.
#[derive(Debug, Clone, Default)]
pub struct CompiledNetwork {
    stages: Vec<Stage>,
    structured: bool,
    cached_theta: RVector,
    valid: bool,
    generation: u64,
    hits: u64,
    invalidations: u64,
    ping: CPanel,
    pong: CPanel,
    col_in: CVector,
    col_out: CVector,
}

/// Cache counters for one [`CompiledNetwork`] plan (or an aggregate over
/// the transient per-worker plans of a chip — see `OnnChip::cache_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `ensure` calls served by the cached matrices (theta unchanged).
    pub hits: u64,
    /// Compilations — every `ensure` that rebuilt the stage matrices.
    pub misses: u64,
    /// The subset of misses that evicted a previously valid plan (i.e.
    /// theta moved); `misses - invalidations` are cold compiles.
    pub invalidations: u64,
}

impl CacheStats {
    /// Counterwise sum (aggregating several plans into one chip view).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }

    /// Counterwise difference against an earlier snapshot of the same
    /// monotone counters.
    #[must_use]
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
        }
    }
}

impl CompiledNetwork {
    /// An empty plan; the structure is built lazily on first use against a
    /// concrete network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recompiles performed so far. Two evaluations at the same
    /// `theta` leave this unchanged; mutating `theta` bumps it.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cache counters for this plan. `misses` equals
    /// [`CompiledNetwork::generation`]; `hits` counts `ensure` calls that
    /// reused the cached matrices; `invalidations` counts recompiles that
    /// replaced a previously valid plan.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.generation,
            invalidations: self.invalidations,
        }
    }

    fn build_structure(&mut self, net: &Network) {
        self.stages.clear();
        let modules = net.modules();
        let mut run_start = None;
        for (i, m) in modules.iter().enumerate() {
            if m.is_compilable() {
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else {
                if let Some(start) = run_start.take() {
                    let dim = modules[start].input_dim();
                    self.stages.push(Stage::Linear {
                        matrix: CMatrix::identity(dim),
                        modules: start..i,
                        dim,
                    });
                }
                self.stages.push(Stage::Pointwise { module: i });
            }
        }
        if let Some(start) = run_start {
            let dim = modules[start].input_dim();
            self.stages.push(Stage::Linear {
                matrix: CMatrix::identity(dim),
                modules: start..modules.len(),
                dim,
            });
        }
        self.structured = true;
    }

    /// Makes the plan valid for `net` at `theta`, recompiling the linear
    /// stage matrices only when `theta` differs from the cached value.
    /// Returns `true` when a recompile happened.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != net.param_count()`.
    pub fn ensure(&mut self, net: &Network, theta: &RVector) -> bool {
        assert_eq!(theta.len(), net.param_count(), "parameter count mismatch");
        if !self.structured {
            self.build_structure(net);
        }
        if self.valid && self.cached_theta.as_slice() == theta.as_slice() {
            self.hits += 1;
            return false;
        }
        if self.valid {
            self.invalidations += 1;
        }
        for stage in &mut self.stages {
            if let Stage::Linear {
                matrix,
                modules,
                dim,
            } = stage
            {
                matrix.reset_identity(*dim);
                for i in modules.clone() {
                    let range = net.module_param_range(i);
                    let applied =
                        net.modules()[i].compile_apply(&theta.as_slice()[range], matrix);
                    debug_assert!(applied, "linear stage contains a non-compilable module");
                }
            }
        }
        self.cached_theta.copy_from(theta);
        self.valid = true;
        self.generation += 1;
        true
    }

    /// Evaluates the network on a whole batch of inputs, returning the
    /// packed `output_dim × B` result panel (column `b` is the output field
    /// of `xs[b]`).
    ///
    /// Compiles lazily via [`CompiledNetwork::ensure`]. Each output column
    /// is bitwise-independent of the other columns and of the batch width,
    /// so callers may partition batches freely without perturbing results.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != net.param_count()` or any input length
    /// differs from `net.input_dim()`.
    pub fn forward_batch(&mut self, net: &Network, theta: &RVector, xs: &[&CVector]) -> &CPanel {
        self.ensure(net, theta);
        let n = net.input_dim();
        let b = xs.len();
        self.ping.resize(n, b);
        for (j, x) in xs.iter().enumerate() {
            // The single validated boundary check for the batched path.
            assert_eq!(x.len(), n, "input dimension mismatch");
            self.ping.col_mut(j).copy_from_slice(x.as_slice());
        }
        let CompiledNetwork {
            stages,
            ping,
            pong,
            col_in,
            col_out,
            ..
        } = self;
        let mut cur_is_ping = true;
        for stage in stages.iter() {
            let (src, dst) = if cur_is_ping {
                (&*ping, &mut *pong)
            } else {
                (&*pong, &mut *ping)
            };
            match stage {
                Stage::Linear { matrix, .. } => gemm_into(matrix, src, dst),
                Stage::Pointwise { module } => {
                    let m = &net.modules()[*module];
                    let th = &theta.as_slice()[net.module_param_range(*module)];
                    dst.resize(m.output_dim(), b);
                    for j in 0..b {
                        col_in.copy_from_slice(src.col(j));
                        m.forward_into(col_in, th, col_out);
                        dst.col_mut(j).copy_from_slice(col_out.as_slice());
                    }
                }
            }
            cur_is_ping = !cur_is_ping;
        }
        if cur_is_ping {
            &self.ping
        } else {
            &self.pong
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Architecture, NetworkScratch};
    use photon_linalg::random::normal_cvector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(dim: usize, b: usize, rng: &mut StdRng) -> Vec<CVector> {
        (0..b).map(|_| normal_cvector(dim, rng)).collect()
    }

    #[test]
    fn compiled_batch_matches_interpreted_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        for arch in [
            Architecture::single_mesh(6, 6).unwrap(),
            Architecture::two_mesh_classifier(6, 6).unwrap(),
        ] {
            let net = arch.build_ideal();
            let theta = net.init_params(&mut rng);
            let xs = batch(6, 5, &mut rng);
            let refs: Vec<&CVector> = xs.iter().collect();
            let mut plan = CompiledNetwork::new();
            let panel = plan.forward_batch(&net, &theta, &refs);
            let mut scratch = NetworkScratch::new();
            for (j, x) in xs.iter().enumerate() {
                let want = net.forward_into(x, &theta, &mut scratch);
                for k in 0..want.len() {
                    assert!(
                        (panel.col(j)[k] - want[k]).abs() < 1e-12,
                        "sample {j} port {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_mesh_fuses_to_one_linear_stage() {
        let net = Architecture::single_mesh(4, 4).unwrap().build_ideal();
        let mut plan = CompiledNetwork::new();
        let theta = RVector::zeros(net.param_count());
        plan.ensure(&net, &theta);
        assert_eq!(plan.stages.len(), 1);
        assert!(matches!(plan.stages[0], Stage::Linear { .. }));
    }

    #[test]
    fn generation_counts_recompiles_only() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = Architecture::single_mesh(4, 4).unwrap().build_ideal();
        let theta = net.init_params(&mut rng);
        let xs = batch(4, 3, &mut rng);
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut plan = CompiledNetwork::new();
        assert_eq!(plan.generation(), 0);
        plan.forward_batch(&net, &theta, &refs);
        assert_eq!(plan.generation(), 1);
        plan.forward_batch(&net, &theta, &refs);
        assert_eq!(plan.generation(), 1, "same theta must hit the cache");
        let mut theta2 = theta.clone();
        theta2[0] += 1e-3;
        plan.forward_batch(&net, &theta2, &refs);
        assert_eq!(plan.generation(), 2, "mutated theta must recompile");
    }
}
