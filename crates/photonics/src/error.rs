//! Fabrication-variation model for silicon-photonic circuits.
//!
//! Every beam splitter carries a *splitting-angle error* `γ ∈ ℝ` and every
//! phase shifter carries an *attenuation-phase error* `ζ ∈ ℂ, |ζ| ≤ 1`.
//! Following the published estimates for calibrated Clements meshes on
//! silicon photonics, errors are drawn as
//!
//! ```text
//! γ = σ_γ · r₀                         r₀ ~ N(0, 1)
//! ζ = (1 − σ_ζ,r · r₁) · e^{j·σ_ζ,a·(2r₂−1)}    r₁, r₂ ~ U[0, 1)
//! ```
//!
//! with `σ_γ = 10⁻²·β`, `σ_ζ,r = 10⁻³·β`, `σ_ζ,a = 10⁻¹·β`; the scalar `β`
//! controls the overall error magnitude (`β = 1` models a real calibrated
//! chip; `β = 0` is the ideal error-free circuit).

use std::fmt;

use rand::Rng;

use photon_linalg::random::standard_normal;
use photon_linalg::C64;

/// Errors raised when consuming or constructing an [`ErrorVector`].
///
/// # Examples
///
/// ```
/// use photon_photonics::{ErrorVector, ErrorVectorError};
///
/// match ErrorVector::from_flat(2, 2, &[0.0; 5]) {
///     Err(ErrorVectorError::FlatLengthMismatch { expected: 6, found: 5 }) => {}
///     other => panic!("expected length mismatch, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorVectorError {
    /// A flat error buffer had the wrong length for the circuit shape.
    FlatLengthMismatch {
        /// Expected length `n_bs + 2·n_ps`.
        expected: usize,
        /// Length actually supplied.
        found: usize,
    },
    /// A circuit builder asked for more beam-splitter errors than the
    /// vector holds.
    GammaExhausted {
        /// Number of beam-splitter slots available.
        available: usize,
    },
    /// A circuit builder asked for more phase-shifter errors than the
    /// vector holds.
    ZetaExhausted {
        /// Number of phase-shifter slots available.
        available: usize,
    },
}

impl fmt::Display for ErrorVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorVectorError::FlatLengthMismatch { expected, found } => {
                write!(
                    f,
                    "flat error vector length mismatch: expected {expected}, found {found}"
                )
            }
            ErrorVectorError::GammaExhausted { available } => {
                write!(
                    f,
                    "error vector exhausted: circuit needs more than {available} beam-splitter errors"
                )
            }
            ErrorVectorError::ZetaExhausted { available } => {
                write!(
                    f,
                    "error vector exhausted: circuit needs more than {available} phase-shifter errors"
                )
            }
        }
    }
}

impl std::error::Error for ErrorVectorError {}

/// Hyperparameters of the fabrication-error distribution.
///
/// # Examples
///
/// ```
/// use photon_photonics::ErrorModel;
///
/// let nominal = ErrorModel::with_beta(1.0);
/// assert!((nominal.sigma_gamma - 1e-2).abs() < 1e-15);
/// let ideal = ErrorModel::ideal();
/// assert_eq!(ideal.sigma_gamma, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Standard deviation of beam-splitter angle errors (radians).
    pub sigma_gamma: f64,
    /// Relative attenuation scale of phase-shifter errors.
    pub sigma_zeta_r: f64,
    /// Phase-offset scale of phase-shifter errors (radians).
    pub sigma_zeta_a: f64,
}

impl ErrorModel {
    /// The paper's error setting scaled by `β`:
    /// `σ_γ = 10⁻²β`, `σ_ζ,r = 10⁻³β`, `σ_ζ,a = 10⁻¹β`.
    pub fn with_beta(beta: f64) -> Self {
        ErrorModel {
            sigma_gamma: 1e-2 * beta,
            sigma_zeta_r: 1e-3 * beta,
            sigma_zeta_a: 1e-1 * beta,
        }
    }

    /// The error-free model (`β = 0`).
    pub fn ideal() -> Self {
        ErrorModel::with_beta(0.0)
    }

    /// Draws one beam-splitter angle error.
    pub fn sample_gamma<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sigma_gamma * standard_normal(rng)
    }

    /// Draws one phase-shifter error as an `(attenuation, phase)` pair such
    /// that `ζ = (1 − attenuation)·e^{j·phase}`.
    pub fn sample_zeta_parts<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let r1: f64 = rng.gen();
        let r2: f64 = rng.gen();
        (self.sigma_zeta_r * r1, self.sigma_zeta_a * (2.0 * r2 - 1.0))
    }
}

impl Default for ErrorModel {
    /// Defaults to the calibrated-chip estimate `β = 1`.
    fn default() -> Self {
        ErrorModel::with_beta(1.0)
    }
}

/// Converts an `(attenuation, phase)` error pair to the complex factor
/// `ζ = (1 − attenuation)·e^{j·phase}`.
///
/// # Examples
///
/// ```
/// use photon_photonics::zeta_from_parts;
///
/// let z = zeta_from_parts(0.0, 0.0);
/// assert!((z.re - 1.0).abs() < 1e-15 && z.im.abs() < 1e-15);
/// ```
pub fn zeta_from_parts(attenuation: f64, phase: f64) -> C64 {
    C64::from_polar(1.0 - attenuation, phase)
}

/// The complete error assignment of a circuit, flattened in component order.
///
/// Beam splitters contribute one `gamma` each; phase shifters contribute one
/// `(attenuation, phase)` pair each, in the order the components appear in
/// the circuit netlist. This is the unknown vector the calibrator estimates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorVector {
    /// Beam-splitter angle errors, in netlist order.
    pub gamma: Vec<f64>,
    /// Phase-shifter attenuations, in netlist order.
    pub attenuation: Vec<f64>,
    /// Phase-shifter phase offsets, in netlist order.
    pub phase: Vec<f64>,
}

impl ErrorVector {
    /// The zero (ideal) error vector for a circuit with `n_bs` beam
    /// splitters and `n_ps` phase shifters.
    pub fn zeros(n_bs: usize, n_ps: usize) -> Self {
        ErrorVector {
            gamma: vec![0.0; n_bs],
            attenuation: vec![0.0; n_ps],
            phase: vec![0.0; n_ps],
        }
    }

    /// Samples an error vector from `model`.
    pub fn sample<R: Rng + ?Sized>(
        n_bs: usize,
        n_ps: usize,
        model: &ErrorModel,
        rng: &mut R,
    ) -> Self {
        let gamma = (0..n_bs).map(|_| model.sample_gamma(rng)).collect();
        let mut attenuation = Vec::with_capacity(n_ps);
        let mut phase = Vec::with_capacity(n_ps);
        for _ in 0..n_ps {
            let (a, p) = model.sample_zeta_parts(rng);
            attenuation.push(a);
            phase.push(p);
        }
        ErrorVector {
            gamma,
            attenuation,
            phase,
        }
    }

    /// Number of beam splitters covered.
    pub fn n_beam_splitters(&self) -> usize {
        self.gamma.len()
    }

    /// Number of phase shifters covered.
    pub fn n_phase_shifters(&self) -> usize {
        self.attenuation.len()
    }

    /// Total number of scalar error parameters (`n_bs + 2·n_ps`).
    pub fn len(&self) -> usize {
        self.gamma.len() + self.attenuation.len() + self.phase.len()
    }

    /// Returns `true` when the circuit has no error slots at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens to `[γ…, attenuation…, phase…]` for the calibrator.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.gamma);
        out.extend_from_slice(&self.attenuation);
        out.extend_from_slice(&self.phase);
        out
    }

    /// Rebuilds from the flat layout produced by [`ErrorVector::to_flat`].
    ///
    /// # Errors
    ///
    /// Returns [`ErrorVectorError::FlatLengthMismatch`] when
    /// `flat.len() != n_bs + 2·n_ps`.
    pub fn from_flat(n_bs: usize, n_ps: usize, flat: &[f64]) -> Result<Self, ErrorVectorError> {
        let expected = n_bs + 2 * n_ps;
        if flat.len() != expected {
            return Err(ErrorVectorError::FlatLengthMismatch {
                expected,
                found: flat.len(),
            });
        }
        Ok(ErrorVector {
            gamma: flat[..n_bs].to_vec(),
            attenuation: flat[n_bs..n_bs + n_ps].to_vec(),
            phase: flat[n_bs + n_ps..].to_vec(),
        })
    }

    /// Root-mean-square distance to another error vector of the same shape,
    /// reported per error family. Used to score calibration quality.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn rmse(&self, other: &ErrorVector) -> ErrorRmse {
        assert_eq!(self.gamma.len(), other.gamma.len());
        assert_eq!(self.attenuation.len(), other.attenuation.len());
        fn rms(a: &[f64], b: &[f64]) -> f64 {
            if a.is_empty() {
                return 0.0;
            }
            let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            (s / a.len() as f64).sqrt()
        }
        ErrorRmse {
            gamma: rms(&self.gamma, &other.gamma),
            attenuation: rms(&self.attenuation, &other.attenuation),
            phase: rms(&self.phase, &other.phase),
        }
    }
}

/// Per-family RMS distances between two error assignments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRmse {
    /// RMS over beam-splitter angle errors.
    pub gamma: f64,
    /// RMS over phase-shifter attenuations.
    pub attenuation: f64,
    /// RMS over phase-shifter phase offsets.
    pub phase: f64,
}

/// Sequential reader over an [`ErrorVector`], consumed by circuit builders
/// while instantiating components in netlist order.
#[derive(Debug)]
pub struct ErrorCursor<'a> {
    errors: &'a ErrorVector,
    next_bs: usize,
    next_ps: usize,
}

impl<'a> ErrorCursor<'a> {
    /// Starts reading `errors` from the beginning.
    pub fn new(errors: &'a ErrorVector) -> Self {
        ErrorCursor {
            errors,
            next_bs: 0,
            next_ps: 0,
        }
    }

    /// Takes the next beam-splitter angle error.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorVectorError::GammaExhausted`] when the error vector
    /// has fewer beam-splitter slots than the circuit being built.
    pub fn next_gamma(&mut self) -> Result<f64, ErrorVectorError> {
        let g = *self.errors.gamma.get(self.next_bs).ok_or(
            ErrorVectorError::GammaExhausted {
                available: self.errors.n_beam_splitters(),
            },
        )?;
        self.next_bs += 1;
        Ok(g)
    }

    /// Takes the next phase-shifter error as a complex factor `ζ`.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorVectorError::ZetaExhausted`] when the error vector
    /// has fewer phase-shifter slots than the circuit being built.
    pub fn next_zeta(&mut self) -> Result<C64, ErrorVectorError> {
        if self.next_ps >= self.errors.n_phase_shifters() {
            return Err(ErrorVectorError::ZetaExhausted {
                available: self.errors.n_phase_shifters(),
            });
        }
        let z = zeta_from_parts(
            self.errors.attenuation[self.next_ps],
            self.errors.phase[self.next_ps],
        );
        self.next_ps += 1;
        Ok(z)
    }

    /// Number of beam-splitter slots consumed so far.
    pub fn beam_splitters_used(&self) -> usize {
        self.next_bs
    }

    /// Number of phase-shifter slots consumed so far.
    pub fn phase_shifters_used(&self) -> usize {
        self.next_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_scaling() {
        let m = ErrorModel::with_beta(2.0);
        assert!((m.sigma_gamma - 2e-2).abs() < 1e-15);
        assert!((m.sigma_zeta_r - 2e-3).abs() < 1e-15);
        assert!((m.sigma_zeta_a - 2e-1).abs() < 1e-15);
        assert_eq!(ErrorModel::default(), ErrorModel::with_beta(1.0));
    }

    #[test]
    fn ideal_model_samples_zero() {
        let m = ErrorModel::ideal();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample_gamma(&mut rng), 0.0);
        let (a, p) = m.sample_zeta_parts(&mut rng);
        assert_eq!(a, 0.0);
        assert_eq!(p, 0.0);
        let z = zeta_from_parts(a, p);
        assert!((z - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn sampled_errors_respect_scales() {
        let m = ErrorModel::with_beta(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let ev = ErrorVector::sample(500, 500, &m, &mut rng);
        let gamma_rms =
            (ev.gamma.iter().map(|g| g * g).sum::<f64>() / ev.gamma.len() as f64).sqrt();
        assert!(
            (gamma_rms - m.sigma_gamma).abs() < 0.3 * m.sigma_gamma,
            "gamma rms {gamma_rms}"
        );
        // attenuation in [0, σ_ζ,r); phase in [-σ_ζ,a, σ_ζ,a).
        assert!(ev
            .attenuation
            .iter()
            .all(|&a| (0.0..m.sigma_zeta_r).contains(&a)));
        assert!(ev
            .phase
            .iter()
            .all(|&p| p >= -m.sigma_zeta_a && p < m.sigma_zeta_a));
        // |ζ| ≤ 1 always.
        for (&a, &p) in ev.attenuation.iter().zip(&ev.phase) {
            assert!(zeta_from_parts(a, p).abs() <= 1.0 + 1e-15);
        }
    }

    #[test]
    fn flat_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let ev = ErrorVector::sample(4, 6, &ErrorModel::with_beta(1.0), &mut rng);
        let flat = ev.to_flat();
        assert_eq!(flat.len(), 4 + 12);
        let back = ErrorVector::from_flat(4, 6, &flat).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn from_flat_rejects_bad_length() {
        let err = ErrorVector::from_flat(2, 2, &[0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            ErrorVectorError::FlatLengthMismatch {
                expected: 6,
                found: 5
            }
        );
        assert!(err.to_string().contains("length mismatch"));
    }

    #[test]
    fn cursor_over_consumption_is_an_error() {
        let ev = ErrorVector::zeros(1, 1);
        let mut cur = ErrorCursor::new(&ev);
        assert!(cur.next_gamma().is_ok());
        assert!(cur.next_zeta().is_ok());
        assert_eq!(
            cur.next_gamma().unwrap_err(),
            ErrorVectorError::GammaExhausted { available: 1 }
        );
        assert_eq!(
            cur.next_zeta().unwrap_err(),
            ErrorVectorError::ZetaExhausted { available: 1 }
        );
    }

    #[test]
    fn rmse_zero_for_identical() {
        let mut rng = StdRng::seed_from_u64(9);
        let ev = ErrorVector::sample(3, 3, &ErrorModel::with_beta(1.0), &mut rng);
        let r = ev.rmse(&ev);
        assert_eq!(r.gamma, 0.0);
        assert_eq!(r.attenuation, 0.0);
        assert_eq!(r.phase, 0.0);
    }

    #[test]
    fn rmse_measures_distance() {
        let a = ErrorVector::zeros(2, 1);
        let mut b = a.clone();
        b.gamma[0] = 0.3;
        b.gamma[1] = -0.3;
        b.phase[0] = 0.1;
        let r = a.rmse(&b);
        assert!((r.gamma - 0.3).abs() < 1e-12);
        assert!((r.phase - 0.1).abs() < 1e-12);
        assert_eq!(r.attenuation, 0.0);
    }

    #[test]
    fn cursor_walks_in_order() {
        let ev = ErrorVector {
            gamma: vec![0.1, 0.2],
            attenuation: vec![0.01],
            phase: vec![0.5],
        };
        let mut cur = ErrorCursor::new(&ev);
        assert_eq!(cur.next_gamma().unwrap(), 0.1);
        let z = cur.next_zeta().unwrap();
        assert!((z.abs() - 0.99).abs() < 1e-12);
        assert!((z.arg() - 0.5).abs() < 1e-12);
        assert_eq!(cur.next_gamma().unwrap(), 0.2);
        assert_eq!(cur.beam_splitters_used(), 2);
        assert_eq!(cur.phase_shifters_used(), 1);
    }

    #[test]
    fn empty_error_vector() {
        let ev = ErrorVector::zeros(0, 0);
        assert!(ev.is_empty());
        assert_eq!(ev.len(), 0);
        assert_eq!(ev.to_flat().len(), 0);
    }
}
