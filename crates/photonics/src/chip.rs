//! The black-box chip abstraction.
//!
//! A [`FabricatedChip`] wraps a [`Network`] whose fabrication errors were
//! sampled at "fabrication time" and are *hidden* from training algorithms:
//! the public surface exposes only forward evaluations (optical field or
//! detector powers) and a query counter — exactly what a physical chip in
//! the lab offers. The gradient-free optimizers in `photon-opt` and the
//! calibrator in `photon-calib` interact with the chip solely through this
//! surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use photon_linalg::random::standard_normal;
use photon_linalg::{CVector, RVector, C64};

use crate::compiled::{CacheStats, CompiledNetwork, PinnedBase};
use crate::error::{ErrorModel, ErrorVector};
use crate::network::{Architecture, Network, NetworkError, NetworkScratch};

/// Reusable buffers for the allocation-free chip measurement paths
/// ([`FabricatedChip::forward_into`],
/// [`FabricatedChip::forward_powers_into`]).
///
/// One scratch belongs to one evaluation thread: build it once, then reuse
/// it for every measurement. After the first call at a given architecture no
/// heap allocation is performed.
#[derive(Debug, Clone, Default)]
pub struct ChipScratch {
    net: NetworkScratch,
    theta_eff: RVector,
    out: CVector,
    powers: RVector,
}

impl ChipScratch {
    /// An empty scratch; buffers grow to the chip's dimensions on first use.
    pub fn new() -> Self {
        ChipScratch::default()
    }

    /// Mutable access to the field-readout buffer the last
    /// [`OnnChip::forward_into`] wrote. Fault layers use this to corrupt a
    /// reading in place after the underlying chip produced it.
    pub fn field_mut(&mut self) -> &mut CVector {
        &mut self.out
    }

    /// Mutable access to the power-readout buffer the last
    /// [`OnnChip::forward_powers_into`] wrote. Fault layers use this to
    /// corrupt a reading in place after the underlying chip produced it.
    pub fn powers_mut(&mut self) -> &mut RVector {
        &mut self.powers
    }
}

/// Reusable buffers for the batched chip measurement paths
/// ([`OnnChip::forward_batch_into`],
/// [`OnnChip::forward_powers_batch_into`]).
///
/// Owns the [`CompiledNetwork`] plan (cached compiled unitaries), the
/// per-sample output buffers, and an inner [`ChipScratch`] used by
/// decorators and default implementations that fall back to per-sample
/// evaluation. One scratch belongs to one evaluation thread; after the
/// first batch at fixed dimensions no heap allocation is performed.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    plan: CompiledNetwork,
    theta_eff: RVector,
    fields: Vec<CVector>,
    powers: Vec<RVector>,
    chip: ChipScratch,
}

impl BatchScratch {
    /// An empty scratch; buffers grow to the chip's dimensions on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Mutable access to the per-sample field buffers the last
    /// [`OnnChip::forward_batch_into`] wrote (may be longer than the last
    /// batch; entry `b` holds sample `b`). Fault layers use this to corrupt
    /// readings in place after the underlying chip produced them.
    pub fn fields_mut(&mut self) -> &mut [CVector] {
        &mut self.fields
    }

    /// Mutable access to the per-sample power buffers the last
    /// [`OnnChip::forward_powers_batch_into`] wrote. Fault layers use this
    /// to corrupt readings in place after the underlying chip produced them.
    pub fn powers_mut(&mut self) -> &mut [RVector] {
        &mut self.powers
    }

    /// Recompile count of the owned compiled plan — see
    /// [`CompiledNetwork::generation`].
    pub fn generation(&self) -> u64 {
        self.plan.generation()
    }
}

/// A shared cooperative-cancellation flag for in-flight chip queries.
///
/// A watchdog raises the flag from another thread when a query blows its
/// deadline; a chip whose measurement path can block (e.g. a fault injector
/// simulating a hung readout) polls it and bails out with a poisoned
/// reading instead of blocking forever. Cloning shares the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct AbortFlag(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl AbortFlag {
    /// A fresh, lowered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag: pending blockable queries should give up promptly.
    pub fn raise(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Lowers the flag (e.g. before retrying after a timeout).
    pub fn clear(&self) {
        self.0.store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether the flag is currently raised.
    pub fn is_raised(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// The black-box chip interface all training, calibration and fault-layer
/// code is written against.
///
/// [`FabricatedChip`] is the baseline implementation; wrappers (e.g. the
/// fault injector in `photon-faults`) decorate another `OnnChip` while
/// keeping the same measurement surface. The trait uses generic methods and
/// is therefore consumed through generics (`C: OnnChip`), not trait objects.
pub trait OnnChip: Sync {
    /// The chip's architecture (the netlist is public, the errors are not).
    fn architecture(&self) -> &Architecture;

    /// Number of input waveguides.
    fn input_dim(&self) -> usize;

    /// Number of output waveguides.
    fn output_dim(&self) -> usize;

    /// Number of programmable parameters.
    fn param_count(&self) -> usize;

    /// Draws the standard initial parameter vector for this architecture.
    fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> RVector;

    /// Programs the phases to `theta` and measures the output *field* for
    /// input `x`, writing into caller-owned scratch. Counts one chip query.
    fn forward_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s CVector;

    /// Programs the phases to `theta` and measures the per-port output
    /// *powers*, writing into caller-owned scratch. Counts one chip query.
    fn forward_powers_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s RVector;

    /// Programs the phases to `theta` once and measures the output *fields*
    /// for a whole batch of inputs, counting `xs.len()` chip queries.
    /// Returns one output vector per input, in order.
    ///
    /// The default falls back to per-sample [`OnnChip::forward_into`] calls
    /// — bitwise-identical to a caller-side loop, so decorators that only
    /// override the per-sample path keep their exact semantics.
    /// [`FabricatedChip`] overrides this with the compiled-plan GEMM path,
    /// which matches the interpreted walk to rounding (≤1e-12) but not
    /// bitwise.
    fn forward_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [CVector] {
        if scratch.fields.len() < xs.len() {
            scratch.fields.resize_with(xs.len(), CVector::default);
        }
        let BatchScratch { fields, chip, .. } = scratch;
        for (slot, x) in fields.iter_mut().zip(xs.iter()) {
            slot.copy_from(self.forward_into(x, theta, chip));
        }
        &scratch.fields[..xs.len()]
    }

    /// Programs the phases to `theta` once and measures the per-port output
    /// *powers* for a whole batch of inputs, counting `xs.len()` chip
    /// queries. Returns one power vector per input, in order.
    ///
    /// Default and override semantics mirror
    /// [`OnnChip::forward_batch_into`].
    fn forward_powers_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [RVector] {
        if scratch.powers.len() < xs.len() {
            scratch.powers.resize_with(xs.len(), RVector::default);
        }
        let BatchScratch { powers, chip, .. } = scratch;
        for (slot, x) in powers.iter_mut().zip(xs.iter()) {
            slot.copy_from(self.forward_powers_into(x, theta, chip));
        }
        &scratch.powers[..xs.len()]
    }

    /// Allocating convenience wrapper over [`OnnChip::forward_into`].
    fn forward(&self, x: &CVector, theta: &RVector) -> CVector {
        let mut scratch = ChipScratch::new();
        self.forward_into(x, theta, &mut scratch).clone()
    }

    /// Allocating convenience wrapper over
    /// [`OnnChip::forward_powers_into`].
    fn forward_powers(&self, x: &CVector, theta: &RVector) -> RVector {
        let mut scratch = ChipScratch::new();
        self.forward_powers_into(x, theta, &mut scratch).clone()
    }

    /// Total number of forward queries issued so far.
    fn query_count(&self) -> u64;

    /// Resets the query counter (e.g. between experiment phases).
    fn reset_query_count(&self);

    /// **Oracle access** to the hidden error assignment (scoring only).
    fn oracle_errors(&self) -> ErrorVector;

    /// **Oracle access** to a white-box clone of the chip's true network
    /// (upper-bound baselines only).
    fn oracle_network(&self) -> Network;

    /// Advances time-dependent chip state (thermal drift, fault schedules)
    /// to logical step `step`.
    ///
    /// Called once per training iteration from a *serial* control point so
    /// that slow state evolves identically regardless of how the iteration's
    /// measurements are scheduled across worker threads. Static chips ignore
    /// it.
    fn advance_to(&self, step: u64) {
        let _ = step;
    }

    /// The chip's cooperative-cancellation flag, shared with watchdogs.
    ///
    /// Chips whose measurement path can block override this to hand out
    /// their real flag; the default returns a fresh disconnected flag, so
    /// raising it is a harmless no-op on chips that never block.
    fn abort_flag(&self) -> AbortFlag {
        AbortFlag::new()
    }

    /// Aggregate compiled-plan cache counters across every batched
    /// evaluation this chip served (per-worker plans are transient, so the
    /// chip is the only place their counters survive). Chips without a
    /// compiled path report zeros.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Compiles and installs a shared pinned base at `theta`, so that
    /// subsequent batched evaluations whose theta differs from `theta` in
    /// only a few phases (ZO coordinate probes) are served by `O(N²)`
    /// incremental rank-1 updates instead of full mesh recompiles.
    ///
    /// Like [`OnnChip::advance_to`], call this only from a *serial* control
    /// point (the trainer does, once per iteration): the pin is shared by
    /// every worker, and every serve is a pure function of the pin and the
    /// request theta, which preserves pool-size determinism. Chips without
    /// a compiled path ignore it.
    fn pin_compile_base(&self, theta: &RVector) {
        let _ = theta;
    }

    /// The logical theta currently deployed via
    /// [`pin_compile_base`](Self::pin_compile_base), or `None` when the
    /// chip has no pin (including chips that ignore pinning entirely).
    ///
    /// Wrapper chips report the theta *they* were pinned with, not
    /// whatever transformed phases they forwarded to an inner chip.
    fn pinned_theta(&self) -> Option<RVector> {
        None
    }
}

/// Optional measurement-noise model of the chip's readout chain.
///
/// Real labs never see noiseless detector values; this model adds
/// signal-dependent shot noise plus a noise floor to power readouts and
/// complex Gaussian noise to coherent field readouts. ZO training must
/// remain functional under it (the difference quotients become noisy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementNoise {
    /// Shot-noise coefficient: power readouts get `σ_shot·√p·r` added.
    pub shot: f64,
    /// Additive noise floor on power readouts.
    pub floor: f64,
    /// Per-quadrature standard deviation of coherent field readout noise.
    pub field: f64,
}

impl MeasurementNoise {
    /// A realistic mild-readout-noise preset.
    pub fn realistic() -> Self {
        MeasurementNoise {
            shot: 5e-3,
            floor: 1e-4,
            field: 2e-3,
        }
    }
}

/// Thread-safe aggregate of [`CacheStats`] deltas from transient
/// per-worker compiled plans.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    incremental: AtomicU64,
    forced_recompiles: AtomicU64,
}

impl CacheCounters {
    fn add(&self, d: CacheStats) {
        if d.hits > 0 {
            self.hits.fetch_add(d.hits, Ordering::Relaxed);
        }
        if d.misses > 0 {
            self.misses.fetch_add(d.misses, Ordering::Relaxed);
        }
        if d.invalidations > 0 {
            self.invalidations.fetch_add(d.invalidations, Ordering::Relaxed);
        }
        if d.incremental > 0 {
            self.incremental.fetch_add(d.incremental, Ordering::Relaxed);
        }
        if d.forced_recompiles > 0 {
            self.forced_recompiles
                .fetch_add(d.forced_recompiles, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            incremental: self.incremental.load(Ordering::Relaxed),
            forced_recompiles: self.forced_recompiles.load(Ordering::Relaxed),
        }
    }
}

/// A simulated fabricated ONN chip with hidden fabrication errors.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_linalg::CVector;
/// use photon_photonics::{Architecture, ErrorModel, FabricatedChip};
///
/// let arch = Architecture::single_mesh(4, 4)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
///
/// let theta = chip.init_params(&mut rng);
/// let y = chip.forward(&CVector::basis(4, 0), &theta);
/// assert_eq!(y.len(), 4);
/// assert_eq!(chip.query_count(), 1);
/// # Ok::<(), photon_photonics::NetworkError>(())
/// ```
#[derive(Debug)]
pub struct FabricatedChip {
    network: Network,
    queries: AtomicU64,
    cache: CacheCounters,
    noise: Option<MeasurementNoise>,
    noise_rng: Mutex<StdRng>,
    crosstalk: f64,
    pinned: Mutex<Option<Arc<PinnedBase>>>,
    /// The *raw* deployment theta the pin was compiled from. The pin itself
    /// stores post-crosstalk effective phases; serving must re-enter through
    /// the raw theta so crosstalk is resolved exactly once.
    pinned_theta: Mutex<Option<RVector>>,
    fast32: bool,
}

impl FabricatedChip {
    /// "Fabricates" a chip: samples an error assignment from `model` and
    /// bakes it into the architecture.
    ///
    /// # Panics
    ///
    /// Never panics for architectures produced by [`Architecture::new`]
    /// (slot counts always match the freshly sampled error vector).
    pub fn fabricate<R: Rng + ?Sized>(
        arch: &Architecture,
        model: &ErrorModel,
        rng: &mut R,
    ) -> Self {
        let (n_bs, n_ps) = arch.error_slots();
        let errors = ErrorVector::sample(n_bs, n_ps, model, rng);
        let network = arch
            .build_with_errors(&errors)
            .expect("sampled error vector always matches the architecture");
        FabricatedChip {
            network,
            queries: AtomicU64::new(0),
            cache: CacheCounters::default(),
            noise: None,
            noise_rng: Mutex::new(StdRng::seed_from_u64(rng.gen())),
            crosstalk: 0.0,
            pinned: Mutex::new(None),
            pinned_theta: Mutex::new(None),
            fast32: false,
        }
    }

    /// Wraps an explicit error assignment (useful in tests and when
    /// replaying a known chip).
    ///
    /// # Errors
    ///
    /// [`NetworkError::ErrorSlotMismatch`] when `errors` does not match the
    /// architecture.
    pub fn with_errors(arch: &Architecture, errors: &ErrorVector) -> Result<Self, NetworkError> {
        Ok(FabricatedChip {
            network: arch.build_with_errors(errors)?,
            queries: AtomicU64::new(0),
            cache: CacheCounters::default(),
            noise: None,
            noise_rng: Mutex::new(StdRng::seed_from_u64(0)),
            crosstalk: 0.0,
            pinned: Mutex::new(None),
            pinned_theta: Mutex::new(None),
            fast32: false,
        })
    }

    /// Switches the batched measurement paths onto the opt-in f32
    /// structure-of-arrays GEMM kernels (AVX2/NEON dispatched — see
    /// `photon_linalg::kernel_tier`). Off by default: the f64 path stays
    /// the oracle, and training-grade equivalence (≤1e-12 vs the
    /// interpreted walk) only holds with this disabled. Enable for serving
    /// and evaluation traffic where ≤1e-5 relative loss error is
    /// acceptable.
    pub fn with_f32_fast_path(mut self) -> Self {
        self.fast32 = true;
        self
    }

    /// `true` when the f32 fast path is enabled for batched measurements.
    pub fn f32_fast_path(&self) -> bool {
        self.fast32
    }

    /// Enables nearest-neighbour thermal heater crosstalk: every
    /// measurement uses the effective phases
    /// `θ_eff = θ + coupling·(chain neighbours)` — see
    /// [`Network::apply_thermal_crosstalk`].
    ///
    /// Crosstalk is an *unmodeled* error: the [`Architecture`] error family
    /// (γ, ζ) cannot represent it, so even a perfectly calibrated model
    /// remains wrong about the chip. Use it to study robustness of
    /// chip-in-the-loop methods against model mismatch.
    pub fn with_thermal_crosstalk(mut self, coupling: f64) -> Self {
        self.crosstalk = coupling;
        self
    }

    /// The thermal-crosstalk coupling (0 when disabled).
    pub fn thermal_crosstalk(&self) -> f64 {
        self.crosstalk
    }

    /// Enables readout noise on every subsequent measurement, seeded for
    /// reproducibility.
    pub fn with_measurement_noise(mut self, noise: MeasurementNoise, seed: u64) -> Self {
        self.noise = Some(noise);
        self.noise_rng = Mutex::new(StdRng::seed_from_u64(seed));
        self
    }

    /// The active measurement-noise model, if any.
    pub fn measurement_noise(&self) -> Option<MeasurementNoise> {
        self.noise
    }

    /// The chip's architecture (public: the designer knows the netlist, just
    /// not the per-component errors).
    pub fn architecture(&self) -> &Architecture {
        self.network.architecture()
    }

    /// Number of input waveguides.
    pub fn input_dim(&self) -> usize {
        self.network.input_dim()
    }

    /// Number of output waveguides.
    pub fn output_dim(&self) -> usize {
        self.network.output_dim()
    }

    /// Number of programmable parameters.
    pub fn param_count(&self) -> usize {
        self.network.param_count()
    }

    /// Draws the standard initial parameter vector for this architecture.
    pub fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> RVector {
        self.network.init_params(rng)
    }

    /// Programs the phases to `theta` and measures the output *field* for
    /// input `x` (coherent detection). Counts one chip query.
    ///
    /// # Panics
    ///
    /// Panics on input/parameter shape mismatch.
    pub fn forward(&self, x: &CVector, theta: &RVector) -> CVector {
        let mut scratch = ChipScratch::new();
        self.forward_into(x, theta, &mut scratch).clone()
    }

    /// Allocation-free variant of [`FabricatedChip::forward`] writing into
    /// caller-owned scratch buffers. Counts one chip query.
    ///
    /// # Panics
    ///
    /// Panics on input/parameter shape mismatch.
    pub fn forward_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s CVector {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let ChipScratch {
            net,
            theta_eff,
            out,
            ..
        } = scratch;
        let th = if self.crosstalk == 0.0 {
            theta
        } else {
            self.network
                .apply_thermal_crosstalk_into(theta, self.crosstalk, theta_eff);
            &*theta_eff
        };
        out.copy_from(self.network.forward_into(x, th, net));
        if let Some(noise) = self.noise {
            let mut rng = self.noise_rng.lock();
            for v in out.iter_mut() {
                *v += C64::new(
                    noise.field * standard_normal(&mut *rng),
                    noise.field * standard_normal(&mut *rng),
                );
            }
        }
        out
    }

    /// Programs the phases to `theta` and measures the per-port output
    /// *powers* (photodetector array). Counts one chip query.
    ///
    /// # Panics
    ///
    /// Panics on input/parameter shape mismatch.
    pub fn forward_powers(&self, x: &CVector, theta: &RVector) -> RVector {
        let mut scratch = ChipScratch::new();
        self.forward_powers_into(x, theta, &mut scratch).clone()
    }

    /// Allocation-free variant of [`FabricatedChip::forward_powers`] writing
    /// into caller-owned scratch buffers. Counts one chip query.
    ///
    /// # Panics
    ///
    /// Panics on input/parameter shape mismatch.
    pub fn forward_powers_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s RVector {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let ChipScratch {
            net,
            theta_eff,
            powers,
            ..
        } = scratch;
        let th = if self.crosstalk == 0.0 {
            theta
        } else {
            self.network
                .apply_thermal_crosstalk_into(theta, self.crosstalk, theta_eff);
            &*theta_eff
        };
        let y = self.network.forward_into(x, th, net);
        powers.resize_zeroed(y.len());
        for (p, z) in powers.iter_mut().zip(y.iter()) {
            *p = z.norm_sqr();
        }
        if let Some(noise) = self.noise {
            let mut rng = self.noise_rng.lock();
            for p in powers.iter_mut() {
                *p = (*p
                    + noise.shot * p.sqrt() * standard_normal(&mut *rng)
                    + noise.floor * standard_normal(&mut *rng))
                .max(0.0);
            }
        }
        powers
    }

    /// Batched field measurement through the compiled plan: one cached
    /// `theta`-compile plus one multi-RHS GEMM per linear stage, instead of
    /// `xs.len()` interpreted op walks. Counts `xs.len()` chip queries.
    ///
    /// Thermal crosstalk is resolved once per batch (it depends only on
    /// `theta`); readout noise is drawn per sample in batch order from the
    /// same seeded stream as the per-sample path.
    ///
    /// # Panics
    ///
    /// Panics on input/parameter shape mismatch.
    pub fn forward_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [CVector] {
        if xs.is_empty() {
            return &scratch.fields[..0];
        }
        self.queries.fetch_add(xs.len() as u64, Ordering::Relaxed);
        let BatchScratch {
            plan,
            theta_eff,
            fields,
            ..
        } = scratch;
        let th = self.effective_theta(theta, theta_eff);
        plan.set_pinned(self.pinned.lock().clone());
        plan.set_fast32(self.fast32);
        let cache_before = plan.cache_stats();
        let panel = plan.forward_batch(&self.network, th, xs);
        if fields.len() < xs.len() {
            fields.resize_with(xs.len(), CVector::default);
        }
        for (j, slot) in fields.iter_mut().take(xs.len()).enumerate() {
            slot.copy_from_slice(panel.col(j));
        }
        self.cache.add(plan.cache_stats().since(cache_before));
        if let Some(noise) = self.noise {
            let mut rng = self.noise_rng.lock();
            for slot in fields.iter_mut().take(xs.len()) {
                for v in slot.iter_mut() {
                    *v += C64::new(
                        noise.field * standard_normal(&mut *rng),
                        noise.field * standard_normal(&mut *rng),
                    );
                }
            }
        }
        &scratch.fields[..xs.len()]
    }

    /// Batched power measurement through the compiled plan — see
    /// [`FabricatedChip::forward_batch_into`]. Counts `xs.len()` chip
    /// queries.
    ///
    /// # Panics
    ///
    /// Panics on input/parameter shape mismatch.
    pub fn forward_powers_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [RVector] {
        if xs.is_empty() {
            return &scratch.powers[..0];
        }
        self.queries.fetch_add(xs.len() as u64, Ordering::Relaxed);
        let BatchScratch {
            plan,
            theta_eff,
            powers,
            ..
        } = scratch;
        let th = self.effective_theta(theta, theta_eff);
        plan.set_pinned(self.pinned.lock().clone());
        plan.set_fast32(self.fast32);
        let cache_before = plan.cache_stats();
        let panel = plan.forward_batch(&self.network, th, xs);
        if powers.len() < xs.len() {
            powers.resize_with(xs.len(), RVector::default);
        }
        for (j, slot) in powers.iter_mut().take(xs.len()).enumerate() {
            let col = panel.col(j);
            slot.resize_zeroed(col.len());
            for (p, z) in slot.iter_mut().zip(col.iter()) {
                *p = z.norm_sqr();
            }
        }
        self.cache.add(plan.cache_stats().since(cache_before));
        if let Some(noise) = self.noise {
            let mut rng = self.noise_rng.lock();
            for slot in powers.iter_mut().take(xs.len()) {
                for p in slot.iter_mut() {
                    *p = (*p
                        + noise.shot * p.sqrt() * standard_normal(&mut *rng)
                        + noise.floor * standard_normal(&mut *rng))
                    .max(0.0);
                }
            }
        }
        &scratch.powers[..xs.len()]
    }

    /// Probe-compiles the fused linear stages at `theta` (after thermal
    /// crosstalk, so the base matches what a batched measurement at the
    /// same request phases would compile) and pins the result. Subsequent
    /// batched measurements whose phases differ from the pin in at most
    /// [`MAX_INCREMENTAL_PHASES`](crate::MAX_INCREMENTAL_PHASES) phase
    /// shifters are served by rank-1 updates of the pinned matrices
    /// instead of a full mesh recompile.
    ///
    /// Call from a serial control point (e.g. once per training
    /// iteration, before the probe fan-out): the pin is shared read-only
    /// by every worker's transient plan, so serving stays a pure function
    /// of `(pin, request theta)` and results are independent of pool
    /// size. Compiling costs one full probed walk — the payoff is the
    /// probe loop that follows.
    pub fn pin_compile_base(&self, theta: &RVector) {
        let mut eff = RVector::zeros(0);
        let th = self.effective_theta(theta, &mut eff);
        *self.pinned.lock() = PinnedBase::compile(&self.network, th);
        *self.pinned_theta.lock() = Some(theta.clone());
    }

    /// Atomically replaces the deployed pin with `theta`, returning the
    /// previously deployed theta (if any) — the promote primitive of
    /// online recalibration. The new base is compiled *before* either pin
    /// slot changes, so the swap itself is a pointer exchange.
    ///
    /// Like [`pin_compile_base`](Self::pin_compile_base), call only from a
    /// serial control point: a serve racing the swap could pair the old
    /// deployed theta with the new base.
    pub fn swap_pinned_base(&self, theta: &RVector) -> Option<RVector> {
        let mut eff = RVector::zeros(0);
        let th = self.effective_theta(theta, &mut eff);
        let pin = PinnedBase::compile(&self.network, th);
        let prev = self.pinned_theta.lock().replace(theta.clone());
        *self.pinned.lock() = pin;
        prev
    }

    /// Drops the pinned compile base, if any: batched measurements fall
    /// back to plain per-theta compiles.
    pub fn unpin_compile_base(&self) {
        *self.pinned.lock() = None;
        *self.pinned_theta.lock() = None;
    }

    /// Whether a compile base is currently pinned.
    pub fn has_pinned_base(&self) -> bool {
        self.pinned_theta.lock().is_some()
    }

    /// The deployed theta — the raw phases
    /// [`pin_compile_base`](Self::pin_compile_base) was last called with,
    /// or `None` when nothing is pinned.
    pub fn pinned_theta(&self) -> Option<RVector> {
        self.pinned_theta.lock().clone()
    }

    /// Serving entry point: measures a whole microbatch at the *deployed*
    /// theta — the phases [`pin_compile_base`](Self::pin_compile_base) was
    /// last called with. Returns `None` when nothing is pinned.
    ///
    /// This is the coalesced path the farm's serving layer drains request
    /// queues into: because every request in the batch shares the pinned
    /// base, the walk reduces to the pin's precompiled stage matrices plus
    /// one multi-RHS GEMM per stage, amortizing per-call setup over the
    /// whole batch. The request theta is looked up here (not passed by the
    /// caller) so crosstalk is resolved exactly once — the pin stores
    /// post-crosstalk phases, and re-submitting those through the public
    /// batch path would apply crosstalk twice.
    ///
    /// Counts `xs.len()` chip queries, like every measurement path.
    pub fn serve_pinned_batch_into<'s>(
        &self,
        xs: &[&CVector],
        scratch: &'s mut BatchScratch,
    ) -> Option<&'s [CVector]> {
        // Clone out of the lock: `forward_batch_into` re-locks `pinned`
        // internally, and holding one chip lock across that call is a
        // deadlock with a non-reentrant mutex.
        let theta = self.pinned_theta.lock().clone()?;
        Some(self.forward_batch_into(xs, &theta, scratch))
    }

    /// Freezes the *deployed* theta — the phases
    /// [`pin_compile_base`](Self::pin_compile_base) was last called with —
    /// into an `i16` fixed-point [`QuantizedNetwork`] serving artifact, the
    /// bottom rung of the evaluation-tier ladder
    /// ([`ServingTier`](crate::ServingTier)).
    ///
    /// Crosstalk is resolved exactly once (like the pin itself), so the
    /// artifact answers at the same effective phases the pinned f64 path
    /// serves. Returns `None` when nothing is pinned or when the network
    /// contains a nonlinear module (not compilable to one dense transfer
    /// matrix). Quantizing reads no measurements, so it counts zero chip
    /// queries; serves on the artifact are off-chip electronics and are
    /// not metered here either.
    pub fn quantize_pinned(&self) -> Option<crate::QuantizedNetwork> {
        let theta = self.pinned_theta.lock().clone()?;
        let mut eff = RVector::zeros(0);
        let th = self.effective_theta(&theta, &mut eff);
        crate::QuantizedNetwork::quantize(&self.network, th)
    }

    /// Resolves thermal crosstalk once per measurement: returns `theta`
    /// unchanged when crosstalk is disabled, otherwise the effective phases
    /// written into `theta_eff`.
    fn effective_theta<'t>(&self, theta: &'t RVector, theta_eff: &'t mut RVector) -> &'t RVector {
        if self.crosstalk == 0.0 {
            theta
        } else {
            self.network
                .apply_thermal_crosstalk_into(theta, self.crosstalk, theta_eff);
            theta_eff
        }
    }

    /// Total number of forward queries issued so far — the currency every
    /// black-box training method is charged in.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Resets the query counter (e.g. between experiment phases).
    pub fn reset_query_count(&self) {
        self.queries.store(0, Ordering::Relaxed);
    }

    /// Aggregate compiled-plan cache counters over every batched
    /// evaluation this chip served. The per-worker [`BatchScratch`] plans
    /// are transient (created per map call), so their counter deltas are
    /// folded into the chip here — the only place a run-level cache view
    /// survives.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.snapshot()
    }

    /// **Oracle access** to the hidden error assignment.
    ///
    /// This exists only for the "BP with perfect error information" upper
    /// bound and for scoring calibration quality; no training or calibration
    /// algorithm may call it. Reading the errors does not count as a chip
    /// query precisely because no physical measurement could provide it.
    pub fn oracle_errors(&self) -> ErrorVector {
        self.network.collect_errors()
    }

    /// **Oracle access** to a white-box differentiable clone of the chip's
    /// true network, for upper-bound baselines only.
    pub fn oracle_network(&self) -> Network {
        self.network.clone()
    }
}

impl OnnChip for FabricatedChip {
    fn architecture(&self) -> &Architecture {
        FabricatedChip::architecture(self)
    }

    fn input_dim(&self) -> usize {
        FabricatedChip::input_dim(self)
    }

    fn output_dim(&self) -> usize {
        FabricatedChip::output_dim(self)
    }

    fn param_count(&self) -> usize {
        FabricatedChip::param_count(self)
    }

    fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> RVector {
        FabricatedChip::init_params(self, rng)
    }

    fn forward_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s CVector {
        FabricatedChip::forward_into(self, x, theta, scratch)
    }

    fn forward_powers_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s RVector {
        FabricatedChip::forward_powers_into(self, x, theta, scratch)
    }

    fn forward_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [CVector] {
        FabricatedChip::forward_batch_into(self, xs, theta, scratch)
    }

    fn forward_powers_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [RVector] {
        FabricatedChip::forward_powers_batch_into(self, xs, theta, scratch)
    }

    fn query_count(&self) -> u64 {
        FabricatedChip::query_count(self)
    }

    fn reset_query_count(&self) {
        FabricatedChip::reset_query_count(self)
    }

    fn cache_stats(&self) -> CacheStats {
        FabricatedChip::cache_stats(self)
    }

    fn pin_compile_base(&self, theta: &RVector) {
        FabricatedChip::pin_compile_base(self, theta)
    }

    fn pinned_theta(&self) -> Option<RVector> {
        FabricatedChip::pinned_theta(self)
    }

    fn oracle_errors(&self) -> ErrorVector {
        FabricatedChip::oracle_errors(self)
    }

    fn oracle_network(&self) -> Network {
        FabricatedChip::oracle_network(self)
    }
}

/// Convenience constructors for the two software models that accompany a
/// chip during training.
///
/// Both are plain [`Network`]s — they differ from the chip only in the
/// error assignment baked into their components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Error-free model (`γ = 0`, `ζ = 1`): what a designer has before any
    /// measurement.
    Ideal,
    /// Model carrying an estimated error assignment from `photon-calib`.
    Calibrated,
    /// Oracle model carrying the chip's true errors (upper bound only).
    OracleTrue,
}

/// Builds the ideal (error-free) software model of an architecture.
pub fn ideal_model(arch: &Architecture) -> Network {
    arch.build_ideal()
}

/// Builds a software model carrying an estimated error assignment.
///
/// # Errors
///
/// [`NetworkError::ErrorSlotMismatch`] when the estimate does not match the
/// architecture.
pub fn calibrated_model(
    arch: &Architecture,
    estimated_errors: &ErrorVector,
) -> Result<Network, NetworkError> {
    arch.build_with_errors(estimated_errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chip_and_rng() -> (FabricatedChip, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        (chip, rng)
    }

    #[test]
    fn query_counting() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        assert_eq!(chip.query_count(), 0);
        let x = CVector::basis(4, 1);
        let _ = chip.forward(&x, &theta);
        let _ = chip.forward_powers(&x, &theta);
        assert_eq!(chip.query_count(), 2);
        chip.reset_query_count();
        assert_eq!(chip.query_count(), 0);
    }

    #[test]
    fn chip_differs_from_ideal_model() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        let ideal = ideal_model(chip.architecture());
        let x = CVector::basis(4, 0);
        let y_chip = chip.forward(&x, &theta);
        let y_ideal = ideal.forward(&x, &theta);
        // β=1 errors are small but nonzero.
        let dev = (&y_chip - &y_ideal).max_abs();
        assert!(dev > 1e-6, "chip should deviate from ideal, dev={dev}");
        assert!(dev < 0.5, "deviation should be small at β=1, dev={dev}");
    }

    #[test]
    fn oracle_model_matches_chip_exactly() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        let oracle = chip.oracle_network();
        let x = photon_linalg::random::normal_cvector(4, &mut rng);
        let y_chip = chip.forward(&x, &theta);
        let y_oracle = oracle.forward(&x, &theta);
        assert!((&y_chip - &y_oracle).max_abs() < 1e-15);
    }

    #[test]
    fn calibrated_model_roundtrip() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        // Perfect calibration (oracle errors) reproduces the chip.
        let model = calibrated_model(chip.architecture(), &chip.oracle_errors()).unwrap();
        let x = CVector::basis(4, 2);
        assert!((&chip.forward(&x, &theta) - &model.forward(&x, &theta)).max_abs() < 1e-15);
        // Wrong slot count is rejected.
        assert!(calibrated_model(chip.architecture(), &ErrorVector::zeros(1, 1)).is_err());
    }

    #[test]
    fn explicit_errors_constructor() {
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let (n_bs, n_ps) = arch.error_slots();
        let ev = ErrorVector::zeros(n_bs, n_ps);
        let chip = FabricatedChip::with_errors(&arch, &ev).unwrap();
        // Zero errors: chip == ideal model.
        let mut rng = StdRng::seed_from_u64(1);
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(4, 3);
        let ideal = ideal_model(&arch);
        assert!((&chip.forward(&x, &theta) - &ideal.forward(&x, &theta)).max_abs() < 1e-15);
    }

    #[test]
    fn fabrication_is_reproducible_from_seed() {
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let e1 = {
            let mut rng = StdRng::seed_from_u64(5);
            FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng).oracle_errors()
        };
        let e2 = {
            let mut rng = StdRng::seed_from_u64(5);
            FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng).oracle_errors()
        };
        assert_eq!(e1, e2);
    }

    #[test]
    fn serve_pinned_batch_requires_a_pin() {
        let (chip, mut rng) = chip_and_rng();
        let x = photon_linalg::random::normal_cvector(4, &mut rng);
        let mut scratch = BatchScratch::new();
        assert!(!chip.has_pinned_base());
        assert!(chip.serve_pinned_batch_into(&[&x], &mut scratch).is_none());
        assert_eq!(chip.query_count(), 0, "a refused serve must not count");
    }

    #[test]
    fn serve_pinned_batch_matches_batch_path_and_hits_the_pin() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        let xs: Vec<CVector> = (0..6)
            .map(|_| photon_linalg::random::normal_cvector(4, &mut rng))
            .collect();
        let refs: Vec<&CVector> = xs.iter().collect();

        chip.pin_compile_base(&theta);
        assert!(chip.has_pinned_base());
        let mut scratch = BatchScratch::new();
        let served: Vec<CVector> = chip
            .serve_pinned_batch_into(&refs, &mut scratch)
            .unwrap()
            .to_vec();
        // The serve is the exact-theta fast path: the request phases match
        // the pin, so the plan commits the pinned base matrices instead of
        // recompiling — visible as an incremental serve in cache stats.
        let stats = chip.cache_stats();
        assert_eq!(stats.incremental, 1, "{stats:?}");
        assert_eq!(stats.misses, 0, "{stats:?}");
        assert_eq!(chip.query_count(), 6);

        // And it agrees exactly with the public batch path at the deployed
        // theta.
        let mut scratch2 = BatchScratch::new();
        let direct = chip.forward_batch_into(&refs, &theta, &mut scratch2);
        for (a, b) in served.iter().zip(direct.iter()) {
            assert!((a - b).max_abs() == 0.0, "serve must equal batch path");
        }

        chip.unpin_compile_base();
        assert!(!chip.has_pinned_base());
        assert!(chip.serve_pinned_batch_into(&refs, &mut scratch).is_none());
    }

    #[test]
    fn swap_pinned_base_promotes_atomically() {
        let (chip, mut rng) = chip_and_rng();
        let old = chip.init_params(&mut rng);
        let new = chip.init_params(&mut rng);
        assert!(chip.pinned_theta().is_none());

        // First deployment: swap on an unpinned chip returns no predecessor.
        assert!(chip.swap_pinned_base(&old).is_none());
        assert_eq!(chip.pinned_theta().unwrap(), old);

        // Promotion: the old theta comes back for rollback bookkeeping and
        // serves immediately reflect the new deployment.
        let prev = chip.swap_pinned_base(&new).expect("old pin returned");
        assert_eq!(prev, old);
        assert_eq!(chip.pinned_theta().unwrap(), new);

        let x = photon_linalg::random::normal_cvector(4, &mut rng);
        let mut scratch = BatchScratch::new();
        let served = chip.serve_pinned_batch_into(&[&x], &mut scratch).unwrap()[0].clone();
        let mut scratch2 = BatchScratch::new();
        let direct = chip.forward_batch_into(&[&x], &new, &mut scratch2)[0].clone();
        assert!((&served - &direct).max_abs() == 0.0);
    }

    #[test]
    fn serve_pinned_batch_applies_crosstalk_once() {
        // With crosstalk enabled, the pin stores *effective* phases. The
        // serve path must reproduce forward_batch_into(raw theta), which
        // resolves crosstalk once — not forward at the effective phases
        // with crosstalk applied again.
        let mut rng = StdRng::seed_from_u64(42);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng)
            .with_thermal_crosstalk(0.05);
        let theta = chip.init_params(&mut rng);
        let x = photon_linalg::random::normal_cvector(4, &mut rng);

        chip.pin_compile_base(&theta);
        let mut scratch = BatchScratch::new();
        let served = chip.serve_pinned_batch_into(&[&x], &mut scratch).unwrap()[0].clone();
        let mut scratch2 = BatchScratch::new();
        let direct = chip.forward_batch_into(&[&x], &theta, &mut scratch2)[0].clone();
        assert!((&served - &direct).max_abs() == 0.0);
    }

    #[test]
    fn measurement_noise_perturbs_readouts() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(4, 0);
        let clean_field = chip.forward(&x, &theta);
        let clean_power = chip.forward_powers(&x, &theta);

        let arch = Architecture::single_mesh(4, 4).unwrap();
        let noisy_chip = FabricatedChip::with_errors(&arch, &chip.oracle_errors())
            .unwrap()
            .with_measurement_noise(MeasurementNoise::realistic(), 99);
        assert!(noisy_chip.measurement_noise().is_some());

        let noisy_field = noisy_chip.forward(&x, &theta);
        let noisy_power = noisy_chip.forward_powers(&x, &theta);
        // Noise is visible but small.
        let fdev = (&noisy_field - &clean_field).max_abs();
        assert!(fdev > 0.0 && fdev < 0.1, "field dev {fdev}");
        let pdev = (&noisy_power - &clean_power).max_abs();
        assert!(pdev > 0.0 && pdev < 0.1, "power dev {pdev}");
        // Powers never go negative.
        assert!(noisy_power.iter().all(|&p| p >= 0.0));
        // Two measurements of the same condition differ (noise is fresh).
        let again = noisy_chip.forward_powers(&x, &theta);
        assert!((&again - &noisy_power).max_abs() > 0.0);
        // Query accounting still exact.
        assert_eq!(noisy_chip.query_count(), 3);
    }

    #[test]
    fn thermal_crosstalk_changes_response() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(4, 0);
        let clean = chip.forward(&x, &theta);

        let xtalk_chip = FabricatedChip::with_errors(
            &Architecture::single_mesh(4, 4).unwrap(),
            &chip.oracle_errors(),
        )
        .unwrap()
        .with_thermal_crosstalk(0.02);
        assert_eq!(xtalk_chip.thermal_crosstalk(), 0.02);
        let warped = xtalk_chip.forward(&x, &theta);
        let dev = (&warped - &clean).max_abs();
        assert!(dev > 1e-4, "crosstalk should be visible, dev {dev}");
        // Zero coupling is the identity.
        let zero = FabricatedChip::with_errors(
            &Architecture::single_mesh(4, 4).unwrap(),
            &chip.oracle_errors(),
        )
        .unwrap()
        .with_thermal_crosstalk(0.0);
        assert!((&zero.forward(&x, &theta) - &clean).max_abs() < 1e-15);
    }

    #[test]
    fn crosstalk_map_is_linear_and_module_local() {
        let net = Architecture::two_mesh_classifier(4, 2)
            .unwrap()
            .build_ideal();
        let n = net.param_count();
        let coupling = 0.05;
        // Linearity.
        let a = photon_linalg::RVector::from_fn(n, |i| (i as f64 * 0.37).sin());
        let b = photon_linalg::RVector::from_fn(n, |i| (i as f64 * 0.11).cos());
        let lhs = net.apply_thermal_crosstalk(&(&a + &b), coupling);
        let rhs =
            &net.apply_thermal_crosstalk(&a, coupling) + &net.apply_thermal_crosstalk(&b, coupling);
        assert!((&lhs - &rhs).max_abs() < 1e-12);
        // Module-local: a basis vector at the last index of module 0 leaks
        // to its previous neighbour but not into module 1.
        let m0 = net.module_param_range(0);
        let m1 = net.module_param_range(1);
        let e = photon_linalg::RVector::basis(n, m0.end - 1);
        let out = net.apply_thermal_crosstalk(&e, coupling);
        assert_eq!(out[m0.end - 2], coupling);
        assert_eq!(out[m1.start], 0.0);
    }

    #[test]
    fn batched_forward_matches_per_sample() {
        let (chip, mut rng) = chip_and_rng();
        let crosstalk_chip = FabricatedChip::with_errors(
            &Architecture::single_mesh(4, 4).unwrap(),
            &chip.oracle_errors(),
        )
        .unwrap()
        .with_thermal_crosstalk(0.02);
        let theta = chip.init_params(&mut rng);
        let xs: Vec<CVector> = (0..5)
            .map(|_| photon_linalg::random::normal_cvector(4, &mut rng))
            .collect();
        let refs: Vec<&CVector> = xs.iter().collect();
        for c in [&chip, &crosstalk_chip] {
            let mut batch = BatchScratch::new();
            let mut single = ChipScratch::new();
            let fields: Vec<CVector> = c
                .forward_batch_into(&refs, &theta, &mut batch)
                .to_vec();
            let powers: Vec<RVector> = c
                .forward_powers_batch_into(&refs, &theta, &mut batch)
                .to_vec();
            assert_eq!(fields.len(), 5);
            for (j, x) in xs.iter().enumerate() {
                let want_f = c.forward_into(x, &theta, &mut single).clone();
                assert!((&fields[j] - &want_f).max_abs() < 1e-12, "field {j}");
                let want_p = c.forward_powers_into(x, &theta, &mut single).clone();
                assert!((&powers[j] - &want_p).max_abs() < 1e-12, "powers {j}");
            }
        }
    }

    #[test]
    fn batched_forward_counts_batch_queries() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        let xs: Vec<CVector> = (0..6).map(|k| CVector::basis(4, k % 4)).collect();
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut scratch = BatchScratch::new();
        chip.forward_batch_into(&refs, &theta, &mut scratch);
        assert_eq!(chip.query_count(), 6);
        chip.forward_powers_batch_into(&refs[..2], &theta, &mut scratch);
        assert_eq!(chip.query_count(), 8);
        // Same theta: the second call must have reused the compiled plan.
        assert_eq!(scratch.generation(), 1);
    }

    #[test]
    fn noise_free_chip_is_deterministic() {
        let (chip, mut rng) = chip_and_rng();
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(4, 1);
        let a = chip.forward_powers(&x, &theta);
        let b = chip.forward_powers(&x, &theta);
        assert_eq!(a, b);
    }
}
