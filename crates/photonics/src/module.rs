//! The module abstraction: the unit an ONN is composed of.

use std::fmt;

use photon_linalg::{CMatrix, CVector, C64};

use crate::error::{ErrorCursor, ErrorVector, ErrorVectorError};

/// Compile-time snapshot of one phase shifter inside a fused linear stage,
/// recorded by [`OnnModule::compile_apply_probed`] and completed by
/// [`OnnModule::compile_suffix_probed`].
///
/// With the stage product written `M = U_n···U_1` and shifter `i` sitting on
/// port `p`, a change of its phase from `θ` to `θ'` moves the stage matrix by
/// the exact rank-1 update
///
/// ```text
/// M' = M + ζ·(e^{jθ'} − e^{jθ}) · b · cᵀ,
///   b = (U_n···U_{i+1})·e_p   (the suffix column),
///   c = e_pᵀ·(U_{i−1}···U_1)  (the prefix row),
/// ```
///
/// so a snapshot holding `b` and `c` lets the compiled-plan cache absorb a
/// sparse phase perturbation in `O(N²)` instead of a full mesh recompile.
#[derive(Debug, Clone)]
pub struct PsSnapshot {
    /// Parameter index driving the shifter. Module-local as recorded; the
    /// stage compiler rebases it to the network's global theta indexing.
    pub param: usize,
    /// Waveguide index the shifter sits on.
    pub port: usize,
    /// Fabrication error factor `ζ` baked into the shifter.
    pub zeta: C64,
    /// Prefix row `e_pᵀ·(U_{i−1}···U_1)` at the compile point.
    pub prefix: Vec<C64>,
    /// Suffix column `(U_n···U_{i+1})·e_p` at the compile point. Empty until
    /// the reverse walk fills it.
    pub suffix: Vec<C64>,
}

/// Saved forward-pass state needed by [`OnnModule::jvp`] and
/// [`OnnModule::vjp`].
///
/// For a mesh of `n` ops the tape holds `n + 1` states: the input, the state
/// after each op, the last being the module output. Element-wise modules
/// store only the input.
#[derive(Debug, Clone)]
pub struct ModuleTape {
    /// Intermediate amplitude states, in forward order.
    pub states: Vec<CVector>,
}

impl ModuleTape {
    /// An empty tape, ready to be filled by
    /// [`OnnModule::forward_tape_into`]. Reusing one tape across calls keeps
    /// the recorded state buffers alive, so steady-state re-recording
    /// performs no heap allocation.
    pub fn empty() -> Self {
        ModuleTape { states: Vec::new() }
    }

    /// Truncates to `len` recorded states (buffer capacity is retained).
    pub fn truncate(&mut self, len: usize) {
        self.states.truncate(len);
    }

    /// Overwrites slot `i` with a copy of `src`, growing the tape by one
    /// slot when `i == self.states.len()`. Existing slot buffers are reused.
    ///
    /// # Panics
    ///
    /// Panics when `i > self.states.len()` (slots must be recorded in
    /// order).
    pub fn record(&mut self, i: usize, src: &CVector) {
        if i == self.states.len() {
            self.states.push(src.clone());
        } else {
            self.states[i].copy_from(src);
        }
    }

    /// Copies state `i` into slot `i + 1` (growing the tape if needed) and
    /// returns a mutable reference to the new slot, so an op can be applied
    /// to it in place — the push-then-apply tape recording pattern.
    ///
    /// # Panics
    ///
    /// Panics when slot `i` does not exist yet.
    pub fn advance(&mut self, i: usize) -> &mut CVector {
        assert!(i < self.states.len(), "tape slot {i} not recorded yet");
        if i + 1 == self.states.len() {
            let next = self.states[i].clone();
            self.states.push(next);
        } else {
            let (head, tail) = self.states.split_at_mut(i + 1);
            tail[0].copy_from(&head[i]);
        }
        &mut self.states[i + 1]
    }

    /// The module input recorded on this tape.
    ///
    /// # Panics
    ///
    /// Panics on an empty tape (never produced by this crate).
    pub fn input(&self) -> &CVector {
        self.states.first().expect("tape has at least the input")
    }

    /// The module output recorded on this tape.
    ///
    /// # Panics
    ///
    /// Panics on an empty tape (never produced by this crate).
    pub fn output(&self) -> &CVector {
        self.states.last().expect("tape has at least the input")
    }
}

/// A differentiable ONN module: a map `y = f(x, θ)` from a complex state and
/// real parameters to a complex state.
///
/// Implementations must satisfy the adjoint contract: for any tape,
/// `⟨jvp(dx, dθ), g⟩_R = ⟨dx, vjp-state⟩_R + dθ·(vjp-params)`, where
/// `⟨u, v⟩_R = Σ Re(uᵢ)Re(vᵢ) + Im(uᵢ)Im(vᵢ)`. This makes
/// `vjp ∘ jvp` an exact Fisher-metric (Gauss-Newton) product, which the
/// LCNG optimizer relies on.
pub trait OnnModule: fmt::Debug + Send + Sync {
    /// Short human-readable name, e.g. `Clements(8,8)`.
    fn name(&self) -> String;

    /// Number of input waveguides.
    fn input_dim(&self) -> usize;

    /// Number of output waveguides.
    fn output_dim(&self) -> usize;

    /// Number of trainable real parameters.
    fn param_count(&self) -> usize;

    /// `true` when the parameters are arranged in interrelated optical
    /// layers (Clements meshes); `false` for element-wise modules.
    fn is_layered(&self) -> bool;

    /// `(beam splitters, phase shifters)` — the fabrication-error slots this
    /// module consumes, in netlist order.
    fn error_slots(&self) -> (usize, usize);

    /// Whether parameters should be randomly initialized (layered meshes)
    /// rather than zero-initialized (diagonal phases, modReLU biases).
    fn random_init(&self) -> bool {
        self.is_layered()
    }

    /// Applies the module.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.input_dim()` or
    /// `theta.len() != self.param_count()`.
    fn forward(&self, x: &CVector, theta: &[f64]) -> CVector;

    /// Applies the module, recording the tape needed for differentiation.
    fn forward_tape(&self, x: &CVector, theta: &[f64]) -> (CVector, ModuleTape);

    /// Applies the module into a caller-owned output buffer.
    ///
    /// The default delegates to [`OnnModule::forward`] (one allocation); the
    /// modules in this crate override it with a true in-place evaluation so
    /// steady-state reuse of `out` performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Same as [`OnnModule::forward`].
    fn forward_into(&self, x: &CVector, theta: &[f64], out: &mut CVector) {
        *out = self.forward(x, theta);
    }

    /// Applies the module, recording into caller-owned output and tape
    /// buffers.
    ///
    /// The default delegates to [`OnnModule::forward_tape`]; the modules in
    /// this crate override it to reuse the buffers already held by `out` and
    /// `tape`.
    ///
    /// # Panics
    ///
    /// Same as [`OnnModule::forward`].
    fn forward_tape_into(&self, x: &CVector, theta: &[f64], out: &mut CVector, tape: &mut ModuleTape) {
        let (y, t) = self.forward_tape(x, theta);
        *out = y;
        *tape = t;
    }

    /// `true` when this module is linear in the optical field for fixed
    /// `theta`, i.e. representable as a dense transfer matrix that
    /// [`OnnModule::compile_apply`] can build. Element-wise nonlinear
    /// modules (modReLU, electro-optic activations) return `false`.
    fn is_compilable(&self) -> bool {
        false
    }

    /// Premultiplies this module's transfer matrix onto the accumulator
    /// `acc` (shape `N×W` for any panel width `W`), returning `true` on
    /// success or `false` when the module is not compilable (in which case
    /// `acc` is untouched).
    ///
    /// Walking the op list over `acc`'s rows costs `O(ops·W)` with the trig
    /// hoisted to once per op; consecutive compilable modules chain on the
    /// same accumulator, fusing a whole linear run into one matrix without
    /// any `O(N³)` matrix-matrix product.
    ///
    /// # Panics
    ///
    /// Implementations may panic (debug assertions) when
    /// `theta.len() != self.param_count()` or `acc.rows()` does not match
    /// the module dimension.
    fn compile_apply(&self, theta: &[f64], acc: &mut CMatrix) -> bool {
        let _ = (theta, acc);
        false
    }

    /// Like [`OnnModule::compile_apply`], but additionally records one
    /// [`PsSnapshot`] per phase shifter (prefix rows filled, suffix columns
    /// left empty for [`OnnModule::compile_suffix_probed`]), appended to
    /// `snaps` in op order. Must premultiply exactly the same arithmetic as
    /// `compile_apply`, so a probed compile is bitwise identical to a plain
    /// one.
    ///
    /// The default performs a plain compile and records nothing, which
    /// downgrades parameter changes inside this module to a full recompile —
    /// correct, just not incremental.
    fn compile_apply_probed(
        &self,
        theta: &[f64],
        acc: &mut CMatrix,
        snaps: &mut Vec<PsSnapshot>,
    ) -> bool {
        let _ = snaps;
        self.compile_apply(theta, acc)
    }

    /// Completes the suffix columns of this module's snapshots by walking
    /// the op list in reverse while postmultiplying onto `acc`.
    ///
    /// On entry `acc` must hold the product of every op applied *after* this
    /// module in the fused stage (identity for the last module); on exit it
    /// has absorbed this module too, ready for the preceding module. `snaps`
    /// is exactly the slice this module appended in
    /// [`OnnModule::compile_apply_probed`], still in op order. Returns
    /// `false` (leaving `acc` untouched) when the module records no
    /// snapshots.
    fn compile_suffix_probed(
        &self,
        theta: &[f64],
        acc: &mut CMatrix,
        snaps: &mut [PsSnapshot],
    ) -> bool {
        let _ = (theta, acc, snaps);
        false
    }

    /// Compiles this module's dense transfer matrix at `theta` (errors are
    /// already baked into the op list), or `None` when the module is
    /// nonlinear and has no fixed transfer matrix.
    fn compile_matrix(&self, theta: &[f64]) -> Option<CMatrix> {
        let mut acc = CMatrix::identity(self.input_dim());
        self.compile_apply(theta, &mut acc).then_some(acc)
    }

    /// Forward-mode derivative: the output tangent produced by input tangent
    /// `dx` and parameter tangent `dtheta`, linearized at the tape point.
    fn jvp(&self, tape: &ModuleTape, theta: &[f64], dx: &CVector, dtheta: &[f64]) -> CVector;

    /// Reverse-mode derivative: consumes the output cotangent `gy`, returns
    /// the input cotangent, and accumulates the parameter cotangent into
    /// `grad_theta`.
    fn vjp(
        &self,
        tape: &ModuleTape,
        theta: &[f64],
        gy: &CVector,
        grad_theta: &mut [f64],
    ) -> CVector;

    /// Rebuilds this module with fabrication errors taken from `cursor`
    /// (consumed in netlist order).
    ///
    /// # Errors
    ///
    /// Returns [`ErrorVectorError`] when the cursor runs out of error slots
    /// before the module is fully instantiated.
    fn with_errors(
        &self,
        cursor: &mut ErrorCursor<'_>,
    ) -> Result<Box<dyn OnnModule>, ErrorVectorError>;

    /// Appends this module's current error assignment to `out` in netlist
    /// order.
    fn collect_errors(&self, out: &mut ErrorVector);

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn OnnModule>;
}

impl Clone for Box<dyn OnnModule> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::C64;

    #[test]
    fn tape_accessors() {
        let tape = ModuleTape {
            states: vec![
                CVector::from_vec(vec![C64::ONE]),
                CVector::from_vec(vec![C64::I]),
            ],
        };
        assert_eq!(tape.input()[0], C64::ONE);
        assert_eq!(tape.output()[0], C64::I);
    }
}
