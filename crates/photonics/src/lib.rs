//! # photon-photonics
//!
//! A from-scratch simulator of MZI-based optical neural networks (ONNs) on
//! silicon photonics, with:
//!
//! - phase shifters carrying attenuation-phase errors `ζ` and beam splitters
//!   carrying splitting-angle errors `γ` ([`ErrorModel`], [`ErrorVector`]);
//! - Clements meshes (full and truncated), Reck triangles, diagonal phase
//!   layers ([`MeshModule`]) and the modReLU nonlinearity ([`ModRelu`]);
//! - end-to-end networks with packed parameters ([`Architecture`],
//!   [`Network`]) and exact forward/reverse differentiation in the Wirtinger
//!   convention (the reverse pass is the exact real-adjoint of the forward
//!   tangent pass);
//! - the black-box chip abstraction ([`FabricatedChip`]): hidden fabrication
//!   errors, query counting, oracle escape hatches for upper-bound baselines;
//! - compiled forward plans ([`CompiledNetwork`], [`BatchScratch`]): cached
//!   dense unitaries applied batch-wide as multi-RHS GEMMs through
//!   [`OnnChip::forward_batch_into`] / [`OnnChip::forward_powers_batch_into`];
//! - an NNUE-style fast serving path: pinned compile bases served by exact
//!   rank-1 incremental updates ([`PinnedBase`]), an opt-in f32 SIMD
//!   evaluation tier, and `i16` fixed-point deployment artifacts
//!   ([`QuantizedNetwork`]);
//! - Fisher-information machinery ([`fisher_vector_product`],
//!   [`module_fisher_block`], [`output_covariance`]) used by the linear
//!   combination natural gradient optimizer.
//!
//! # Examples
//!
//! Fabricate a noisy chip, compare it with its ideal model:
//!
//! ```
//! use rand::SeedableRng;
//! use photon_linalg::CVector;
//! use photon_photonics::{ideal_model, Architecture, ErrorModel, FabricatedChip};
//!
//! let arch = Architecture::two_mesh_classifier(4, 4)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
//! let model = ideal_model(&arch);
//!
//! let theta = chip.init_params(&mut rng);
//! let x = CVector::basis(4, 0);
//! let gap = (&chip.forward(&x, &theta) - &model.forward(&x, &theta)).max_abs();
//! assert!(gap > 0.0); // fabrication variations are visible at the output
//! # Ok::<(), photon_photonics::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chip;
mod compiled;
mod electrooptic;
mod error;
mod fisher;
pub mod gradcheck;
mod mesh;
mod modrelu;
mod module;
mod network;
mod ops;
mod quantized;
mod tier;

pub use chip::{
    calibrated_model, ideal_model, AbortFlag, BatchScratch, ChipScratch, FabricatedChip,
    MeasurementNoise, ModelKind, OnnChip,
};
pub use compiled::{
    CacheStats, CompiledNetwork, PinnedBase, FORCED_RECOMPILE_PERIOD, MAX_INCREMENTAL_PHASES,
    MULTI_PHASE_DELTA_LIMIT,
};
pub use electrooptic::ElectroOptic;
pub use error::{
    zeta_from_parts, ErrorCursor, ErrorModel, ErrorRmse, ErrorVector, ErrorVectorError,
};
pub use fisher::{
    anisotropy_ratio, covariance_eigenvalues, fisher_vector_product, fisher_vector_products,
    fisher_vector_products_pooled, module_fisher_block, module_jacobian, output_covariance,
    standard_perturbations,
};
pub use mesh::{MeshKind, MeshModule};
pub use modrelu::ModRelu;
pub use module::{ModuleTape, OnnModule, PsSnapshot};
pub use network::{Architecture, ModuleSpec, Network, NetworkError, NetworkScratch, NetworkTape};
pub use ops::Op;
pub use quantized::{QMatrix, QuantizedNetwork};
pub use tier::ServingTier;
