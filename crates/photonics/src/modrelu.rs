//! The modReLU electro-optic nonlinearity.

use photon_linalg::{CVector, C64};

use crate::error::{ErrorCursor, ErrorVector, ErrorVectorError};
use crate::module::{ModuleTape, OnnModule};

/// Element-wise modReLU activation with one trainable bias per waveguide:
///
/// ```text
/// modReLU(y) = y·(|y| + b)/|y|   if |y| + b ≥ 0
///              0                 otherwise
/// ```
///
/// The activation preserves the phase of `y` and shrinks (or gates) its
/// modulus — the standard complex-valued nonlinearity of MZI-based ONNs.
/// Its electro-optic implementation is assumed fabrication-error-free; the
/// optical fabric around it carries the error model.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CVector};
/// use photon_photonics::{ModRelu, OnnModule};
///
/// let act = ModRelu::new(2);
/// let x = CVector::from_vec(vec![C64::new(3.0, 4.0), C64::new(0.1, 0.0)]);
/// // Bias -1: |3+4j| = 5 → modulus 4; |0.1| - 1 < 0 → gated to zero.
/// let y = act.forward(&x, &[-1.0, -1.0]);
/// assert!((y[0].abs() - 4.0).abs() < 1e-12);
/// assert_eq!(y[1], C64::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct ModRelu {
    dim: usize,
}

impl ModRelu {
    /// Creates a modReLU layer on `dim` waveguides.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "modReLU needs at least 1 waveguide");
        ModRelu { dim }
    }
}

/// Numerical floor under which an amplitude is treated as dark (no phase).
const DARK: f64 = 1e-300;

impl OnnModule for ModRelu {
    fn name(&self) -> String {
        format!("modReLU({})", self.dim)
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn param_count(&self) -> usize {
        self.dim
    }

    fn is_layered(&self) -> bool {
        false
    }

    fn error_slots(&self) -> (usize, usize) {
        (0, 0)
    }

    fn forward(&self, x: &CVector, theta: &[f64]) -> CVector {
        let mut out = CVector::zeros(0);
        self.forward_into(x, theta, &mut out);
        out
    }

    fn forward_tape(&self, x: &CVector, theta: &[f64]) -> (CVector, ModuleTape) {
        let y = self.forward(x, theta);
        (
            y,
            ModuleTape {
                states: vec![x.clone()],
            },
        )
    }

    // Debug-only checks: lengths are validated once at the `Network`/chip
    // boundary before the per-module hot loop runs.
    fn forward_into(&self, x: &CVector, theta: &[f64], out: &mut CVector) {
        debug_assert_eq!(x.len(), self.dim, "input dimension mismatch");
        debug_assert_eq!(theta.len(), self.dim, "parameter count mismatch");
        out.resize_zeroed(self.dim);
        for (k, o) in out.iter_mut().enumerate() {
            let z = x[k];
            let r = z.abs();
            *o = if r <= DARK || r + theta[k] < 0.0 {
                C64::ZERO
            } else {
                z.scale((r + theta[k]) / r)
            };
        }
    }

    fn forward_tape_into(&self, x: &CVector, theta: &[f64], out: &mut CVector, tape: &mut ModuleTape) {
        self.forward_into(x, theta, out);
        tape.truncate(1);
        tape.record(0, x);
    }

    fn jvp(&self, tape: &ModuleTape, theta: &[f64], dx: &CVector, dtheta: &[f64]) -> CVector {
        let x = tape.input();
        CVector::from_fn(self.dim, |k| {
            let z = x[k];
            let r = z.abs();
            let b = theta[k];
            if r <= DARK || r + b < 0.0 {
                return C64::ZERO;
            }
            // y = z·(1 + b/r) ⇒
            // dy = (1 + b/r)·dz − (b/r³)·z·⟨z, dz⟩_R + db·z/r
            let s = 1.0 + b / r;
            let d = dx[k];
            let zr_dot = z.re * d.re + z.im * d.im;
            let coef = b / (r * r * r);
            d.scale(s) - z.scale(coef * zr_dot) + z.scale(dtheta[k] / r)
        })
    }

    fn vjp(
        &self,
        tape: &ModuleTape,
        theta: &[f64],
        gy: &CVector,
        grad_theta: &mut [f64],
    ) -> CVector {
        let x = tape.input();
        CVector::from_fn(self.dim, |k| {
            let z = x[k];
            let r = z.abs();
            let b = theta[k];
            if r <= DARK || r + b < 0.0 {
                return C64::ZERO;
            }
            let g = gy[k];
            // The per-element real 2×2 Jacobian A = s·I − (b/r³)·zzᵀ is
            // symmetric, so the state cotangent reuses the JVP formula.
            let s = 1.0 + b / r;
            let zg_dot = z.re * g.re + z.im * g.im;
            let coef = b / (r * r * r);
            // ∂ℓ/∂b = ⟨z/r, g⟩_R
            grad_theta[k] += zg_dot / r;
            g.scale(s) - z.scale(coef * zg_dot)
        })
    }

    fn with_errors(
        &self,
        _cursor: &mut ErrorCursor<'_>,
    ) -> Result<Box<dyn OnnModule>, ErrorVectorError> {
        Ok(Box::new(self.clone()))
    }

    fn collect_errors(&self, _out: &mut ErrorVector) {}

    fn clone_box(&self) -> Box<dyn OnnModule> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::random::normal_cvector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_bias_is_identity_on_modulus() {
        let act = ModRelu::new(3);
        let x = CVector::from_vec(vec![
            C64::new(1.0, 2.0),
            C64::new(-0.5, 0.25),
            C64::new(0.0, -3.0),
        ]);
        let y = act.forward(&x, &[0.0; 3]);
        assert!((&y - &x).max_abs() < 1e-12);
    }

    #[test]
    fn positive_bias_amplifies_preserving_phase() {
        let act = ModRelu::new(1);
        let x = CVector::from_vec(vec![C64::from_polar(2.0, 0.7)]);
        let y = act.forward(&x, &[1.0]);
        assert!((y[0].abs() - 3.0).abs() < 1e-12);
        assert!((y[0].arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn gating_below_threshold() {
        let act = ModRelu::new(1);
        let x = CVector::from_vec(vec![C64::from_real(0.5)]);
        assert_eq!(act.forward(&x, &[-0.6])[0], C64::ZERO);
        // Dark input is gated regardless of bias.
        let dark = CVector::from_vec(vec![C64::ZERO]);
        assert_eq!(act.forward(&dark, &[1.0])[0], C64::ZERO);
    }

    #[test]
    fn jvp_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(31);
        let act = ModRelu::new(4);
        let x = normal_cvector(4, &mut rng);
        let theta: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() * 0.4 - 0.2).collect();
        let dtheta: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() - 0.5).collect();
        let dx = normal_cvector(4, &mut rng);

        let (_, tape) = act.forward_tape(&x, &theta);
        let dy = act.jvp(&tape, &theta, &dx, &dtheta);

        let eps = 1e-6;
        let perturbed = |sign: f64| -> CVector {
            let th: Vec<f64> = theta
                .iter()
                .zip(&dtheta)
                .map(|(t, d)| t + sign * eps * d)
                .collect();
            let xx = &x + &dx.scale_real(sign * eps);
            act.forward(&xx, &th)
        };
        let fd = (&perturbed(1.0) - &perturbed(-1.0)).scale_real(0.5 / eps);
        assert!((&dy - &fd).max_abs() < 1e-6, "jvp {dy} fd {fd}");
    }

    #[test]
    fn vjp_is_adjoint_of_jvp() {
        let mut rng = StdRng::seed_from_u64(33);
        let act = ModRelu::new(5);
        let x = normal_cvector(5, &mut rng);
        let theta: Vec<f64> = (0..5).map(|_| rng.gen::<f64>() * 0.5 - 0.25).collect();
        let (_, tape) = act.forward_tape(&x, &theta);

        let dx = normal_cvector(5, &mut rng);
        let dtheta: Vec<f64> = (0..5).map(|_| rng.gen::<f64>() - 0.5).collect();
        let g = normal_cvector(5, &mut rng);

        let dy = act.jvp(&tape, &theta, &dx, &dtheta);
        let mut gtheta = vec![0.0; 5];
        let gx = act.vjp(&tape, &theta, &g, &mut gtheta);

        let real_dot = |a: &CVector, b: &CVector| -> f64 {
            a.iter()
                .zip(b.iter())
                .map(|(u, v)| u.re * v.re + u.im * v.im)
                .sum()
        };
        let lhs = real_dot(&dy, &g);
        let rhs = real_dot(&dx, &gx) + dtheta.iter().zip(&gtheta).map(|(a, b)| a * b).sum::<f64>();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn no_error_slots() {
        let act = ModRelu::new(3);
        assert_eq!(act.error_slots(), (0, 0));
        assert!(!act.random_init());
        let mut out = ErrorVector::default();
        act.collect_errors(&mut out);
        assert!(out.is_empty());
    }
}
