//! Whole-network assembly: architectures, parameter packing and end-to-end
//! differentiation.

use std::fmt;

use rand::Rng;

use photon_linalg::{CVector, RVector};

use crate::electrooptic::ElectroOptic;
use crate::error::{ErrorCursor, ErrorVector};
use crate::mesh::MeshModule;
use crate::modrelu::ModRelu;
use crate::module::{ModuleTape, OnnModule};

/// Errors raised while assembling a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// Two consecutive modules have incompatible port counts.
    DimensionMismatch {
        /// Index of the offending module in the spec list.
        index: usize,
        /// Output dimension of the previous module.
        expected: usize,
        /// Input dimension of the offending module.
        found: usize,
    },
    /// The architecture contains no modules.
    Empty,
    /// An error vector with the wrong number of slots was supplied.
    ErrorSlotMismatch {
        /// Slots the architecture requires `(beam splitters, phase shifters)`.
        expected: (usize, usize),
        /// Slots the supplied error vector provides.
        found: (usize, usize),
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DimensionMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "module {index} expects {found} ports but previous module outputs {expected}"
            ),
            NetworkError::Empty => write!(f, "architecture has no modules"),
            NetworkError::ErrorSlotMismatch { expected, found } => write!(
                f,
                "error vector provides {found:?} slots, architecture needs {expected:?}"
            ),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Declarative description of one module in an [`Architecture`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModuleSpec {
    /// Rectangular Clements mesh (`layers == dim` is universal).
    Clements {
        /// Waveguide count.
        dim: usize,
        /// MZI layer count.
        layers: usize,
    },
    /// Triangular Reck mesh.
    Reck {
        /// Waveguide count.
        dim: usize,
    },
    /// Diagonal phase layer.
    PhaseDiag {
        /// Waveguide count.
        dim: usize,
    },
    /// modReLU activation.
    ModRelu {
        /// Waveguide count.
        dim: usize,
    },
    /// Electro-optic activation (Williamson et al. 2020).
    ElectroOptic {
        /// Waveguide count.
        dim: usize,
        /// Tap ratio α ∈ [0, 1).
        alpha: f64,
        /// Electro-optic gain `g`.
        gain: f64,
    },
}

impl ModuleSpec {
    /// Waveguide count of the module.
    pub fn dim(&self) -> usize {
        match *self {
            ModuleSpec::Clements { dim, .. }
            | ModuleSpec::Reck { dim }
            | ModuleSpec::PhaseDiag { dim }
            | ModuleSpec::ModRelu { dim }
            | ModuleSpec::ElectroOptic { dim, .. } => dim,
        }
    }

    fn instantiate(&self) -> Box<dyn OnnModule> {
        match *self {
            ModuleSpec::Clements { dim, layers } => Box::new(MeshModule::clements(dim, layers)),
            ModuleSpec::Reck { dim } => Box::new(MeshModule::reck(dim)),
            ModuleSpec::PhaseDiag { dim } => Box::new(MeshModule::phase_diag(dim)),
            ModuleSpec::ModRelu { dim } => Box::new(ModRelu::new(dim)),
            ModuleSpec::ElectroOptic { dim, alpha, gain } => {
                Box::new(ElectroOptic::new(dim, alpha, gain))
            }
        }
    }
}

/// A validated module pipeline that can be instantiated with any error
/// assignment — the shared "blueprint" of the physical chip, the ideal
/// model and the calibrated model.
///
/// # Examples
///
/// ```
/// use photon_photonics::Architecture;
///
/// // The standard single-hidden-layer ONN classifier used in the paper line:
/// // Clements(K,K) + PSdiag + modReLU + Clements(K,K) + PSdiag.
/// let arch = Architecture::two_mesh_classifier(8, 8)?;
/// assert_eq!(arch.input_dim(), 8);
/// assert_eq!(arch.param_count(), 2 * (56 + 8) + 8);
/// # Ok::<(), photon_photonics::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    specs: Vec<ModuleSpec>,
}

impl Architecture {
    /// Validates and wraps a module list.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Empty`] for an empty list and
    /// [`NetworkError::DimensionMismatch`] when consecutive module port
    /// counts disagree.
    pub fn new(specs: Vec<ModuleSpec>) -> Result<Self, NetworkError> {
        if specs.is_empty() {
            return Err(NetworkError::Empty);
        }
        for i in 1..specs.len() {
            let expected = specs[i - 1].dim();
            let found = specs[i].dim();
            if expected != found {
                return Err(NetworkError::DimensionMismatch {
                    index: i,
                    expected,
                    found,
                });
            }
        }
        Ok(Architecture { specs })
    }

    /// `Clements(K,L) + PSdiag(K)`: a single programmable linear layer.
    ///
    /// # Errors
    ///
    /// Never fails for `dim ≥ 2`, `layers ≥ 1`; returns the same errors as
    /// [`Architecture::new`] otherwise.
    pub fn single_mesh(dim: usize, layers: usize) -> Result<Self, NetworkError> {
        Architecture::new(vec![
            ModuleSpec::Clements { dim, layers },
            ModuleSpec::PhaseDiag { dim },
        ])
    }

    /// The classification network of the evaluation:
    /// `Clements(K,L) + PSdiag(K) + modReLU(K) + Clements(K,L) + PSdiag(K)`.
    ///
    /// # Errors
    ///
    /// Same as [`Architecture::new`].
    pub fn two_mesh_classifier(dim: usize, layers: usize) -> Result<Self, NetworkError> {
        Architecture::new(vec![
            ModuleSpec::Clements { dim, layers },
            ModuleSpec::PhaseDiag { dim },
            ModuleSpec::ModRelu { dim },
            ModuleSpec::Clements { dim, layers },
            ModuleSpec::PhaseDiag { dim },
        ])
    }

    /// The classification network with the electro-optic activation instead
    /// of modReLU:
    /// `Clements(K,L) + PSdiag(K) + EOAct(K) + Clements(K,L) + PSdiag(K)`.
    ///
    /// # Errors
    ///
    /// Same as [`Architecture::new`].
    pub fn two_mesh_eo_classifier(
        dim: usize,
        layers: usize,
        alpha: f64,
        gain: f64,
    ) -> Result<Self, NetworkError> {
        Architecture::new(vec![
            ModuleSpec::Clements { dim, layers },
            ModuleSpec::PhaseDiag { dim },
            ModuleSpec::ElectroOptic { dim, alpha, gain },
            ModuleSpec::Clements { dim, layers },
            ModuleSpec::PhaseDiag { dim },
        ])
    }

    /// The module specs, in pipeline order.
    pub fn specs(&self) -> &[ModuleSpec] {
        &self.specs
    }

    /// Input dimension of the pipeline.
    pub fn input_dim(&self) -> usize {
        self.specs[0].dim()
    }

    /// Output dimension of the pipeline.
    pub fn output_dim(&self) -> usize {
        self.specs[self.specs.len() - 1].dim()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.specs
            .iter()
            .map(|s| s.instantiate().param_count())
            .sum()
    }

    /// Fabrication-error slots `(beam splitters, phase shifters)` the whole
    /// pipeline consumes.
    pub fn error_slots(&self) -> (usize, usize) {
        let mut bs = 0;
        let mut ps = 0;
        for s in &self.specs {
            let (b, p) = s.instantiate().error_slots();
            bs += b;
            ps += p;
        }
        (bs, ps)
    }

    /// Instantiates the ideal (error-free) network.
    pub fn build_ideal(&self) -> Network {
        let modules = self.specs.iter().map(|s| s.instantiate()).collect();
        Network::from_modules(modules, self.clone())
    }

    /// Instantiates the network with the given fabrication errors.
    ///
    /// # Errors
    ///
    /// [`NetworkError::ErrorSlotMismatch`] when `errors` does not match the
    /// architecture's slot counts.
    pub fn build_with_errors(&self, errors: &ErrorVector) -> Result<Network, NetworkError> {
        let expected = self.error_slots();
        let found = (errors.n_beam_splitters(), errors.n_phase_shifters());
        if expected != found {
            return Err(NetworkError::ErrorSlotMismatch { expected, found });
        }
        let mut cursor = ErrorCursor::new(errors);
        let mut modules = Vec::with_capacity(self.specs.len());
        for s in &self.specs {
            // Slot counts were validated above, so cursor exhaustion can only
            // mean the architecture and error vector disagree about layout.
            modules.push(
                s.instantiate()
                    .with_errors(&mut cursor)
                    .map_err(|_| NetworkError::ErrorSlotMismatch { expected, found })?,
            );
        }
        Ok(Network::from_modules(modules, self.clone()))
    }
}

/// Saved forward state of a whole network, one tape per module.
#[derive(Debug, Clone)]
pub struct NetworkTape {
    tapes: Vec<ModuleTape>,
}

impl NetworkTape {
    /// Per-module tapes, in pipeline order.
    pub fn module_tapes(&self) -> &[ModuleTape] {
        &self.tapes
    }
}

/// Reusable evaluation buffers for the allocation-free network paths
/// ([`Network::forward_into`], [`Network::forward_tape_into`]).
///
/// One scratch belongs to one evaluation thread: build it once (e.g. per
/// worker via `ExecPool::map_with`), then reuse it for every sample. After
/// the first call at a given architecture, subsequent calls perform no heap
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct NetworkScratch {
    ping: CVector,
    pong: CVector,
}

impl NetworkScratch {
    /// An empty scratch; buffers grow to the network's dimensions on first
    /// use.
    pub fn new() -> Self {
        NetworkScratch::default()
    }
}

/// An instantiated ONN: a pipeline of modules with a packed parameter
/// vector layout.
///
/// The same type serves as the *physical chip's internals* (wrapped by
/// [`crate::FabricatedChip`], hidden from training algorithms), the *ideal
/// software model* (zero errors) and the *calibrated model* (estimated
/// errors) — they differ only in the error assignment baked into their
/// modules.
#[derive(Debug, Clone)]
pub struct Network {
    modules: Vec<Box<dyn OnnModule>>,
    offsets: Vec<usize>,
    param_count: usize,
    architecture: Architecture,
}

impl Network {
    fn from_modules(modules: Vec<Box<dyn OnnModule>>, architecture: Architecture) -> Self {
        let mut offsets = Vec::with_capacity(modules.len());
        let mut acc = 0;
        for m in &modules {
            offsets.push(acc);
            acc += m.param_count();
        }
        Network {
            modules,
            offsets,
            param_count: acc,
            architecture,
        }
    }

    /// The architecture this network was built from.
    pub fn architecture(&self) -> &Architecture {
        &self.architecture
    }

    /// The module pipeline.
    pub fn modules(&self) -> &[Box<dyn OnnModule>] {
        &self.modules
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.modules[0].input_dim()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.modules[self.modules.len() - 1].output_dim()
    }

    /// Total trainable parameter count `N`.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The half-open range of indices module `i` occupies in the packed
    /// parameter vector.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn module_param_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.offsets[i];
        start..start + self.modules[i].param_count()
    }

    /// Draws an initial parameter vector: layered meshes uniform in
    /// `[0, 2π)`, element-wise modules zero — the initialization protocol of
    /// the research line.
    pub fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> RVector {
        let mut theta = RVector::zeros(self.param_count);
        for (i, m) in self.modules.iter().enumerate() {
            if m.random_init() {
                let range = self.module_param_range(i);
                for k in range {
                    theta[k] = rng.gen::<f64>() * std::f64::consts::TAU;
                }
            }
        }
        theta
    }

    /// End-to-end forward pass.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.input_dim()` or
    /// `theta.len() != self.param_count()`.
    pub fn forward(&self, x: &CVector, theta: &RVector) -> CVector {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        let mut state = x.clone();
        for (i, m) in self.modules.iter().enumerate() {
            let range = self.module_param_range(i);
            state = m.forward(&state, &theta.as_slice()[range]);
        }
        state
    }

    /// Forward pass recording the differentiation tape.
    ///
    /// # Panics
    ///
    /// Same as [`Network::forward`].
    pub fn forward_tape(&self, x: &CVector, theta: &RVector) -> (CVector, NetworkTape) {
        let mut out = CVector::zeros(0);
        let mut tape = self.new_tape();
        let mut scratch = NetworkScratch::new();
        self.forward_tape_into(x, theta, &mut scratch, &mut out, &mut tape);
        (out, tape)
    }

    /// An empty tape shaped for this network, for reuse with
    /// [`Network::forward_tape_into`].
    pub fn new_tape(&self) -> NetworkTape {
        NetworkTape {
            tapes: vec![ModuleTape::empty(); self.modules.len()],
        }
    }

    /// Allocation-free forward pass: evaluates into `scratch` and returns a
    /// reference to the output state held there.
    ///
    /// After the first call at this network's dimensions, no heap allocation
    /// is performed.
    ///
    /// # Panics
    ///
    /// Same as [`Network::forward`].
    pub fn forward_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut NetworkScratch,
    ) -> &'s CVector {
        // The single validated boundary check: module-level hot loops below
        // only carry debug assertions.
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        scratch.ping.copy_from(x);
        let mut cur_is_ping = true;
        for (i, m) in self.modules.iter().enumerate() {
            let range = self.module_param_range(i);
            let th = &theta.as_slice()[range];
            let NetworkScratch { ping, pong, .. } = scratch;
            let (src, dst) = if cur_is_ping {
                (&*ping, &mut *pong)
            } else {
                (&*pong, &mut *ping)
            };
            m.forward_into(src, th, dst);
            cur_is_ping = !cur_is_ping;
        }
        if cur_is_ping {
            &scratch.ping
        } else {
            &scratch.pong
        }
    }

    /// Allocation-free forward pass recording into caller-owned buffers.
    ///
    /// `tape` should come from [`Network::new_tape`] (or a previous call);
    /// its per-module state buffers are reused. After the first call at this
    /// network's dimensions, no heap allocation is performed.
    ///
    /// # Panics
    ///
    /// Same as [`Network::forward`], plus when `tape` has the wrong number
    /// of module slots.
    pub fn forward_tape_into(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &mut NetworkScratch,
        out: &mut CVector,
        tape: &mut NetworkTape,
    ) {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        assert_eq!(
            tape.tapes.len(),
            self.modules.len(),
            "tape module count mismatch"
        );
        scratch.ping.copy_from(x);
        let mut cur_is_ping = true;
        for (i, m) in self.modules.iter().enumerate() {
            let range = self.module_param_range(i);
            let th = &theta.as_slice()[range];
            let NetworkScratch { ping, pong, .. } = scratch;
            let (src, dst) = if cur_is_ping {
                (&*ping, &mut *pong)
            } else {
                (&*pong, &mut *ping)
            };
            m.forward_tape_into(src, th, dst, &mut tape.tapes[i]);
            cur_is_ping = !cur_is_ping;
        }
        out.copy_from(if cur_is_ping {
            &scratch.ping
        } else {
            &scratch.pong
        });
    }

    /// Forward-mode derivative of the whole network at the tape point:
    /// output tangent for input tangent `dx` and parameter tangent `dtheta`.
    ///
    /// # Panics
    ///
    /// Panics when tangent shapes disagree with the network.
    pub fn jvp(
        &self,
        tape: &NetworkTape,
        theta: &RVector,
        dx: &CVector,
        dtheta: &RVector,
    ) -> CVector {
        assert_eq!(dtheta.len(), self.param_count, "tangent count mismatch");
        let mut dstate = dx.clone();
        for (i, m) in self.modules.iter().enumerate() {
            let range = self.module_param_range(i);
            dstate = m.jvp(
                &tape.tapes[i],
                &theta.as_slice()[range.clone()],
                &dstate,
                &dtheta.as_slice()[range],
            );
        }
        dstate
    }

    /// Reverse-mode derivative: given the output cotangent `gy` (convention
    /// `g = ∂ℓ/∂Re(y) + j·∂ℓ/∂Im(y)`), returns `(input cotangent, ∂ℓ/∂θ)`.
    ///
    /// # Panics
    ///
    /// Panics when `gy.len() != self.output_dim()`.
    pub fn vjp(&self, tape: &NetworkTape, theta: &RVector, gy: &CVector) -> (CVector, RVector) {
        assert_eq!(gy.len(), self.output_dim(), "cotangent dimension mismatch");
        let mut grad = RVector::zeros(self.param_count);
        let mut gstate = gy.clone();
        for (i, m) in self.modules.iter().enumerate().rev() {
            let range = self.module_param_range(i);
            gstate = m.vjp(
                &tape.tapes[i],
                &theta.as_slice()[range.clone()],
                &gstate,
                &mut grad.as_mut_slice()[range],
            );
        }
        (gstate, grad)
    }

    /// The current error assignment baked into this network's modules.
    pub fn collect_errors(&self) -> ErrorVector {
        let mut out = ErrorVector::default();
        for m in &self.modules {
            m.collect_errors(&mut out);
        }
        out
    }

    /// Indices of layered modules (Clements / Reck meshes).
    pub fn layered_module_indices(&self) -> Vec<usize> {
        self.modules
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_layered())
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies a nearest-neighbour thermal-crosstalk map to a parameter
    /// vector: within each module, a fraction `coupling` of each heater's
    /// phase leaks into its chain neighbours,
    /// `θ_eff[i] = θ[i] + coupling·(θ[i−1] + θ[i+1])` (module-local chain).
    ///
    /// This is the standard first-order model of thermal heater crosstalk
    /// on silicon photonics; crosstalk never crosses module boundaries.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != self.param_count()`.
    pub fn apply_thermal_crosstalk(&self, theta: &RVector, coupling: f64) -> RVector {
        let mut out = RVector::zeros(0);
        self.apply_thermal_crosstalk_into(theta, coupling, &mut out);
        out
    }

    /// Allocation-free variant of [`Network::apply_thermal_crosstalk`]
    /// writing into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != self.param_count()`.
    pub fn apply_thermal_crosstalk_into(&self, theta: &RVector, coupling: f64, out: &mut RVector) {
        assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        out.copy_from(theta);
        if coupling == 0.0 {
            return;
        }
        for i in 0..self.modules.len() {
            let range = self.module_param_range(i);
            for k in range.clone() {
                let mut leak = 0.0;
                if k > range.start {
                    leak += theta[k - 1];
                }
                if k + 1 < range.end {
                    leak += theta[k + 1];
                }
                out[k] = theta[k] + coupling * leak;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorModel;
    use photon_linalg::random::normal_cvector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_arch() -> Architecture {
        Architecture::two_mesh_classifier(4, 4).unwrap()
    }

    #[test]
    fn architecture_validation() {
        assert!(matches!(
            Architecture::new(vec![]),
            Err(NetworkError::Empty)
        ));
        let bad = Architecture::new(vec![
            ModuleSpec::Clements { dim: 4, layers: 2 },
            ModuleSpec::PhaseDiag { dim: 5 },
        ]);
        assert!(matches!(
            bad,
            Err(NetworkError::DimensionMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn param_counts_match_formula() {
        // K=4, L=4: Clements has 4·3/2 = 6 MZIs = 12 phases; PSdiag 4;
        // modReLU 4. Two meshes: 2·(12+4) + 4 = 36.
        let arch = small_arch();
        assert_eq!(arch.param_count(), 36);
        let net = arch.build_ideal();
        assert_eq!(net.param_count(), 36);
        assert_eq!(net.module_param_range(0), 0..12);
        assert_eq!(net.module_param_range(1), 12..16);
        assert_eq!(net.module_param_range(2), 16..20);
    }

    #[test]
    fn error_slot_accounting() {
        let arch = small_arch();
        let (n_bs, n_ps) = arch.error_slots();
        // Each mesh: 6 MZIs → 12 BS, 12 PS; PSdiag adds 4 PS; modReLU none.
        assert_eq!(n_bs, 24);
        assert_eq!(n_ps, 24 + 8);
        // Slot mismatch rejected.
        let bad = ErrorVector::zeros(1, 1);
        assert!(matches!(
            arch.build_with_errors(&bad),
            Err(NetworkError::ErrorSlotMismatch { .. })
        ));
    }

    #[test]
    fn errors_roundtrip_through_network() {
        let arch = small_arch();
        let (n_bs, n_ps) = arch.error_slots();
        let mut rng = StdRng::seed_from_u64(17);
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(1.0), &mut rng);
        let net = arch.build_with_errors(&ev).unwrap();
        let collected = net.collect_errors();
        let r = ev.rmse(&collected);
        assert!(r.gamma < 1e-12 && r.attenuation < 1e-12 && r.phase < 1e-12);
        // Ideal network has all-zero errors.
        let ideal_errors = arch.build_ideal().collect_errors();
        assert!(ideal_errors.gamma.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn init_params_policy() {
        let arch = small_arch();
        let net = arch.build_ideal();
        let mut rng = StdRng::seed_from_u64(3);
        let theta = net.init_params(&mut rng);
        // Mesh params random in [0, 2π); PSdiag & modReLU zero.
        let mesh_range = net.module_param_range(0);
        assert!(theta.as_slice()[mesh_range].iter().any(|&t| t != 0.0));
        let diag_range = net.module_param_range(1);
        assert!(theta.as_slice()[diag_range].iter().all(|&t| t == 0.0));
        let relu_range = net.module_param_range(2);
        assert!(theta.as_slice()[relu_range].iter().all(|&t| t == 0.0));
    }

    #[test]
    fn forward_is_deterministic_and_bounded() {
        let arch = small_arch();
        let net = arch.build_ideal();
        let mut rng = StdRng::seed_from_u64(7);
        let theta = net.init_params(&mut rng);
        let x = normal_cvector(4, &mut rng);
        let y1 = net.forward(&x, &theta);
        let y2 = net.forward(&x, &theta);
        assert!((&y1 - &y2).max_abs() == 0.0);
        // With zero modReLU biases the whole pipeline is norm-preserving.
        assert!((y1.norm_sqr() - x.norm_sqr()).abs() < 1e-10);
    }

    #[test]
    fn network_jvp_matches_finite_difference() {
        let arch = small_arch();
        let net = arch.build_ideal();
        let mut rng = StdRng::seed_from_u64(19);
        let mut theta = net.init_params(&mut rng);
        // Non-zero biases to exercise modReLU curvature.
        for k in net.module_param_range(2) {
            theta[k] = 0.1;
        }
        let x = normal_cvector(4, &mut rng);
        let dtheta = photon_linalg::random::normal_rvector(net.param_count(), &mut rng);

        let (_, tape) = net.forward_tape(&x, &theta);
        let dy = net.jvp(&tape, &theta, &CVector::zeros(4), &dtheta);

        let eps = 1e-6;
        let mut tp = theta.clone();
        tp.axpy(eps, &dtheta);
        let mut tm = theta.clone();
        tm.axpy(-eps, &dtheta);
        let fd = (&net.forward(&x, &tp) - &net.forward(&x, &tm)).scale_real(0.5 / eps);
        assert!((&dy - &fd).max_abs() < 1e-6);
    }

    #[test]
    fn network_vjp_is_adjoint_of_jvp() {
        let arch = small_arch();
        let mut rng = StdRng::seed_from_u64(23);
        let (n_bs, n_ps) = arch.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(2.0), &mut rng);
        let net = arch.build_with_errors(&ev).unwrap();
        let mut theta = net.init_params(&mut rng);
        for k in net.module_param_range(2) {
            theta[k] = -0.05;
        }
        let x = normal_cvector(4, &mut rng);
        let (_, tape) = net.forward_tape(&x, &theta);

        let dx = normal_cvector(4, &mut rng);
        let dtheta = photon_linalg::random::normal_rvector(net.param_count(), &mut rng);
        let g = normal_cvector(4, &mut rng);

        let dy = net.jvp(&tape, &theta, &dx, &dtheta);
        let (gx, gtheta) = net.vjp(&tape, &theta, &g);

        let real_dot = |a: &CVector, b: &CVector| -> f64 {
            a.iter()
                .zip(b.iter())
                .map(|(u, v)| u.re * v.re + u.im * v.im)
                .sum()
        };
        let lhs = real_dot(&dy, &g);
        let rhs = real_dot(&dx, &gx) + dtheta.dot(&gtheta).unwrap();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn layered_module_indices() {
        let net = small_arch().build_ideal();
        assert_eq!(net.layered_module_indices(), vec![0, 3]);
    }

    #[test]
    fn eo_classifier_builds_and_differentiates() {
        let arch = Architecture::two_mesh_eo_classifier(4, 2, 0.1, 1.0).unwrap();
        let net = arch.build_ideal();
        let mut rng = StdRng::seed_from_u64(91);
        let theta = net.init_params(&mut rng);
        let x = normal_cvector(4, &mut rng);
        let y = net.forward(&x, &theta);
        // Tap ratio removes some power; nothing is created.
        assert!(y.norm_sqr() <= x.norm_sqr() + 1e-12);
        // The tap plus power-dependent transmission dims but never darkens
        // the whole field.
        assert!(y.norm_sqr() > 0.1 * x.norm_sqr());
        // Adjoint contract holds through the EO activation.
        let (_, tape) = net.forward_tape(&x, &theta);
        let dx = normal_cvector(4, &mut rng);
        let dtheta = photon_linalg::random::normal_rvector(net.param_count(), &mut rng);
        let g = normal_cvector(4, &mut rng);
        let dy = net.jvp(&tape, &theta, &dx, &dtheta);
        let (gx, gtheta) = net.vjp(&tape, &theta, &g);
        let rdot = |a: &CVector, b: &CVector| -> f64 {
            a.iter()
                .zip(b.iter())
                .map(|(u, v)| u.re * v.re + u.im * v.im)
                .sum()
        };
        let lhs = rdot(&dy, &g);
        let rhs = rdot(&dx, &gx) + dtheta.dot(&gtheta).unwrap();
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn display_of_errors() {
        let e = NetworkError::Empty;
        assert_eq!(e.to_string(), "architecture has no modules");
    }
}
