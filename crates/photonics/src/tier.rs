//! The evaluation-tier ladder for serving.
//!
//! PR 6 built three ways to evaluate the same deployed network, trading
//! precision for speed (see DESIGN.md "The evaluation stack"):
//!
//! | tier  | path                                         | fidelity        |
//! |-------|----------------------------------------------|-----------------|
//! | `F64` | pinned compiled f64 walk + rank-1 increments | bitwise oracle  |
//! | `F32` | f32 SoA SIMD GEMM kernels                    | ≤1e-5 rel. loss |
//! | `I16` | frozen [`QuantizedNetwork`] integer artifact | argmax-faithful |
//!
//! [`ServingTier`] names a rung of that ladder so serving policy — in
//! particular the brownout controller in `photon-farm` — can *choose* one
//! per dispatch: under overload a replica steps down the ladder, degrading
//! precision instead of shedding traffic, and steps back up once its queue
//! drains.
//!
//! [`QuantizedNetwork`]: crate::QuantizedNetwork

use std::fmt;

/// One rung of the evaluation-tier ladder, fastest-last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServingTier {
    /// Full-precision pinned compiled path (the bitwise oracle).
    F64,
    /// f32 structure-of-arrays SIMD kernels (≤1e-5 relative loss error).
    F32,
    /// `i16` fixed-point serving artifact (argmax-faithful).
    I16,
}

impl ServingTier {
    /// All tiers, precision-first (the brownout ladder walks this order).
    pub const LADDER: [ServingTier; 3] = [ServingTier::F64, ServingTier::F32, ServingTier::I16];

    /// Stable lower-case label used in reports and trace events.
    pub fn label(self) -> &'static str {
        match self {
            ServingTier::F64 => "f64",
            ServingTier::F32 => "f32",
            ServingTier::I16 => "i16",
        }
    }

    /// Position on the ladder: 0 = `F64`, 2 = `I16`.
    pub fn rung(self) -> usize {
        match self {
            ServingTier::F64 => 0,
            ServingTier::F32 => 1,
            ServingTier::I16 => 2,
        }
    }

    /// The tier at ladder position `rung`, if in range.
    pub fn from_rung(rung: usize) -> Option<ServingTier> {
        ServingTier::LADDER.get(rung).copied()
    }
}

impl fmt::Display for ServingTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_precision_first_and_rungs_roundtrip() {
        assert_eq!(ServingTier::LADDER[0], ServingTier::F64);
        assert_eq!(ServingTier::LADDER[2], ServingTier::I16);
        for (i, t) in ServingTier::LADDER.into_iter().enumerate() {
            assert_eq!(t.rung(), i);
            assert_eq!(ServingTier::from_rung(i), Some(t));
        }
        assert_eq!(ServingTier::from_rung(3), None);
        assert!(ServingTier::F64 < ServingTier::I16);
        assert_eq!(ServingTier::F32.label(), "f32");
        assert_eq!(format!("{}", ServingTier::I16), "i16");
    }
}
