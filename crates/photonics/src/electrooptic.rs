//! The electro-optic activation of Williamson et al. (2020):
//! a physically realizable ONN nonlinearity in which a tapped fraction of
//! the optical power drives a phase shifter.
//!
//! Per channel, with power `u = |z|²`, phase `φ(u) = g·u/2 + φ_b/2`:
//!
//! ```text
//! f(z) = j·√(1−α) · e^{−j·φ(u)} · cos(φ(u)) · z
//! ```
//!
//! `α` is the tap ratio (fixed at fabrication), `g` the electro-optic gain
//! (fixed), and the per-channel bias `φ_b` is the trainable parameter.

use photon_linalg::{CVector, C64};

use crate::error::{ErrorCursor, ErrorVector, ErrorVectorError};
use crate::module::{ModuleTape, OnnModule};

/// Electro-optic activation layer with one trainable bias `φ_b` per
/// waveguide.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CVector};
/// use photon_photonics::{ElectroOptic, OnnModule};
///
/// let act = ElectroOptic::new(2, 0.1, 1.0);
/// let x = CVector::from_vec(vec![C64::ONE, C64::I]);
/// let y = act.forward(&x, &[0.0, 0.0]);
/// // Passive tap: the activation can only lose power.
/// assert!(y.norm_sqr() <= x.norm_sqr() + 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ElectroOptic {
    dim: usize,
    /// Tap ratio α ∈ [0, 1): fraction of power diverted to the detector.
    alpha: f64,
    /// Electro-optic gain `g` (radians per unit power).
    gain: f64,
}

impl ElectroOptic {
    /// Creates the activation on `dim` waveguides.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`, `alpha ∉ [0, 1)`, or `gain` is not finite.
    pub fn new(dim: usize, alpha: f64, gain: f64) -> Self {
        assert!(dim >= 1, "activation needs at least 1 waveguide");
        assert!((0.0..1.0).contains(&alpha), "tap ratio must be in [0, 1)");
        assert!(gain.is_finite(), "gain must be finite");
        ElectroOptic { dim, alpha, gain }
    }

    /// The tap ratio α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The electro-optic gain `g`.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// `h(u, φ_b) = j√(1−α)·e^{−jφ}·cos φ` with `φ = g·u/2 + φ_b/2`.
    #[inline]
    fn h(&self, u: f64, phi_b: f64) -> (C64, f64) {
        let phi = 0.5 * self.gain * u + 0.5 * phi_b;
        let root = (1.0 - self.alpha).sqrt();
        let h = C64::I * root * C64::cis(-phi) * phi.cos();
        (h, phi)
    }

    /// `∂h/∂φ = √(1−α)·e^{−2jφ}·(−1)`? — see module docs; the derivative of
    /// `j e^{−jφ} cos φ` w.r.t. φ is `−e^{−2jφ}`·... computed here exactly.
    #[inline]
    fn dh_dphi(&self, phi: f64) -> C64 {
        // d/dφ [ j·e^{−jφ}·cosφ ] = j·(−j e^{−jφ} cosφ − e^{−jφ} sinφ)
        //                         = e^{−jφ}(cosφ − j·sinφ) = e^{−2jφ}, times −? —
        // expand: j·(−j)e^{−jφ}cosφ = e^{−jφ}cosφ; j·(−e^{−jφ}sinφ) = −j e^{−jφ} sinφ
        // ⇒ e^{−jφ}(cosφ − j sinφ) = e^{−2jφ}.
        let root = (1.0 - self.alpha).sqrt();
        C64::cis(-2.0 * phi) * root
    }
}

impl OnnModule for ElectroOptic {
    fn name(&self) -> String {
        format!("EOAct({},α={})", self.dim, self.alpha)
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn param_count(&self) -> usize {
        self.dim
    }

    fn is_layered(&self) -> bool {
        false
    }

    fn error_slots(&self) -> (usize, usize) {
        (0, 0)
    }

    fn forward(&self, x: &CVector, theta: &[f64]) -> CVector {
        let mut out = CVector::zeros(0);
        self.forward_into(x, theta, &mut out);
        out
    }

    fn forward_tape(&self, x: &CVector, theta: &[f64]) -> (CVector, ModuleTape) {
        let y = self.forward(x, theta);
        (
            y,
            ModuleTape {
                states: vec![x.clone()],
            },
        )
    }

    // Debug-only checks: lengths are validated once at the `Network`/chip
    // boundary before the per-module hot loop runs.
    fn forward_into(&self, x: &CVector, theta: &[f64], out: &mut CVector) {
        debug_assert_eq!(x.len(), self.dim, "input dimension mismatch");
        debug_assert_eq!(theta.len(), self.dim, "parameter count mismatch");
        out.resize_zeroed(self.dim);
        for (k, o) in out.iter_mut().enumerate() {
            let z = x[k];
            let (h, _) = self.h(z.norm_sqr(), theta[k]);
            *o = h * z;
        }
    }

    fn forward_tape_into(&self, x: &CVector, theta: &[f64], out: &mut CVector, tape: &mut ModuleTape) {
        self.forward_into(x, theta, out);
        tape.truncate(1);
        tape.record(0, x);
    }

    fn jvp(&self, tape: &ModuleTape, theta: &[f64], dx: &CVector, dtheta: &[f64]) -> CVector {
        let x = tape.input();
        CVector::from_fn(self.dim, |k| {
            let z = x[k];
            let u = z.norm_sqr();
            let (h, phi) = self.h(u, theta[k]);
            let dh = self.dh_dphi(phi);
            // dφ = (g/2)·du + dθ/2, du = 2·⟨z, dz⟩_R.
            let zdz = z.re * dx[k].re + z.im * dx[k].im;
            let dphi = self.gain * zdz + 0.5 * dtheta[k];
            h * dx[k] + z * dh * dphi
        })
    }

    fn vjp(
        &self,
        tape: &ModuleTape,
        theta: &[f64],
        gy: &CVector,
        grad_theta: &mut [f64],
    ) -> CVector {
        let x = tape.input();
        CVector::from_fn(self.dim, |k| {
            let z = x[k];
            let u = z.norm_sqr();
            let (h, phi) = self.h(u, theta[k]);
            let dh = self.dh_dphi(phi);
            let g = gy[k];
            // ⟨z·dh, g⟩_R — the real coefficient shared by both adjoints.
            let zdh = z * dh;
            let w = zdh.re * g.re + zdh.im * g.im;
            // ∂ℓ/∂θ: dφ/dθ = 1/2.
            grad_theta[k] += 0.5 * w;
            // State cotangent: adjoint of dz ↦ h·dz is conj(h)·g; adjoint
            // of dz ↦ z·dh·g·⟨z,dz⟩_R is z·(g·…)-weighted, i.e. + z·g·w·…
            h.conj() * g + z.scale(self.gain * w)
        })
    }

    fn with_errors(
        &self,
        _cursor: &mut ErrorCursor<'_>,
    ) -> Result<Box<dyn OnnModule>, ErrorVectorError> {
        Ok(Box::new(self.clone()))
    }

    fn collect_errors(&self, _out: &mut ErrorVector) {}

    fn clone_box(&self) -> Box<dyn OnnModule> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_adjoint, check_jvp};
    use photon_linalg::random::normal_cvector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn passive_activation_never_gains_power() {
        let act = ElectroOptic::new(4, 0.1, 1.5);
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..20 {
            let x = normal_cvector(4, &mut rng);
            let theta: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
            let y = act.forward(&x, &theta);
            assert!(y.norm_sqr() <= x.norm_sqr() + 1e-12);
        }
    }

    #[test]
    fn bias_pi_blocks_light_at_zero_power() {
        // For vanishing input power, φ → φ_b/2; φ_b = π gives cos(π/2) = 0:
        // the channel is pinched off for weak signals.
        let act = ElectroOptic::new(1, 0.0, 1.0);
        let x = CVector::from_vec(vec![C64::from_real(1e-6)]);
        let y = act.forward(&x, &[std::f64::consts::PI]);
        assert!(y[0].abs() < 1e-9);
        // φ_b = 0 passes weak signals (up to the tap loss).
        let y2 = act.forward(&x, &[0.0]);
        assert!((y2[0].abs() - 1e-6).abs() < 1e-9);
    }

    #[test]
    fn nonlinearity_is_power_dependent() {
        // The same bias must transmit differently at different powers —
        // that's what makes it an activation.
        let act = ElectroOptic::new(1, 0.0, 2.0);
        let weak = act.forward(&CVector::from_vec(vec![C64::from_real(0.1)]), &[0.5]);
        let strong = act.forward(&CVector::from_vec(vec![C64::from_real(1.0)]), &[0.5]);
        let t_weak = weak[0].abs() / 0.1;
        let t_strong = strong[0].abs() / 1.0;
        assert!(
            (t_weak - t_strong).abs() > 0.05,
            "transmission must depend on power: {t_weak} vs {t_strong}"
        );
    }

    #[test]
    fn jvp_matches_finite_difference() {
        let act = ElectroOptic::new(5, 0.1, 1.2);
        let mut rng = StdRng::seed_from_u64(72);
        let theta: Vec<f64> = (0..5).map(|_| rng.gen::<f64>() * 3.0).collect();
        let check = check_jvp(&act, &theta, 8, 1e-5, &mut rng);
        assert!(check.passed(), "jvp error {}", check.max_error);
    }

    #[test]
    fn vjp_is_exact_adjoint() {
        let act = ElectroOptic::new(6, 0.2, 0.8);
        let mut rng = StdRng::seed_from_u64(73);
        let theta: Vec<f64> = (0..6).map(|_| rng.gen::<f64>() * 3.0 - 1.5).collect();
        let check = check_adjoint(&act, &theta, 10, 1e-9, &mut rng);
        assert!(check.passed(), "adjoint error {}", check.max_error);
    }

    #[test]
    fn no_error_slots_and_zero_init() {
        let act = ElectroOptic::new(3, 0.1, 1.0);
        assert_eq!(act.error_slots(), (0, 0));
        assert!(!act.random_init());
        assert_eq!(act.alpha(), 0.1);
        assert_eq!(act.gain(), 1.0);
        assert!(act.name().starts_with("EOAct"));
    }

    #[test]
    #[should_panic(expected = "tap ratio")]
    fn invalid_alpha_rejected() {
        let _ = ElectroOptic::new(2, 1.0, 1.0);
    }
}
