//! Linear photonic modules built from phase shifters and beam splitters:
//! Clements meshes (full and truncated), Reck triangles and diagonal phase
//! layers.

use photon_linalg::{CMatrix, CVector, C64};

use crate::error::{ErrorCursor, ErrorVector, ErrorVectorError};
use crate::module::{ModuleTape, OnnModule, PsSnapshot};
use crate::ops::Op;

/// The topology family of a [`MeshModule`], kept for naming and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshKind {
    /// Rectangular Clements mesh with the given number of layers.
    Clements {
        /// Number of MZI layers (`layers == dim` is the universal mesh).
        layers: usize,
    },
    /// Triangular Reck-Zeilinger mesh.
    Reck,
    /// Single column of phase shifters (`diag(e^{jθ})`).
    PhaseDiag,
}

/// A linear photonic module: an ordered list of [`Op`]s on `dim` waveguides.
///
/// Construct via [`MeshModule::clements`], [`MeshModule::reck`] or
/// [`MeshModule::phase_diag`].
///
/// # Examples
///
/// ```
/// use photon_photonics::MeshModule;
/// use photon_photonics::OnnModule;
///
/// let mesh = MeshModule::clements(8, 8);
/// assert_eq!(mesh.param_count(), 56); // 28 MZIs × 2 phases
/// assert_eq!(mesh.name(), "Clements(8,8)");
/// let diag = MeshModule::phase_diag(8);
/// assert_eq!(diag.param_count(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct MeshModule {
    dim: usize,
    ops: Vec<Op>,
    param_count: usize,
    kind: MeshKind,
}

impl MeshModule {
    /// Builds an ideal (error-free) rectangular Clements mesh on `dim`
    /// waveguides with `layers` MZI layers.
    ///
    /// Layer `ℓ` places MZIs on port pairs `(0,1), (2,3), …` when `ℓ` is
    /// even and `(1,2), (3,4), …` when odd. `layers == dim` together with a
    /// trailing [`MeshModule::phase_diag`] realizes an arbitrary unitary;
    /// `layers < dim` is the truncated mesh that trades expressivity for
    /// circuit size.
    ///
    /// # Panics
    ///
    /// Panics when `dim < 2` or `layers == 0`.
    pub fn clements(dim: usize, layers: usize) -> Self {
        assert!(dim >= 2, "Clements mesh needs at least 2 waveguides");
        assert!(layers >= 1, "Clements mesh needs at least 1 layer");
        let mut ops = Vec::new();
        let mut param = 0;
        for layer in 0..layers {
            let start = layer % 2;
            let mut p = start;
            while p + 1 < dim {
                push_mzi(&mut ops, p, &mut param);
                p += 2;
            }
        }
        MeshModule {
            dim,
            ops,
            param_count: param,
            kind: MeshKind::Clements { layers },
        }
    }

    /// Builds an ideal triangular Reck-Zeilinger mesh on `dim` waveguides
    /// (`dim·(dim−1)/2` MZIs).
    ///
    /// # Panics
    ///
    /// Panics when `dim < 2`.
    pub fn reck(dim: usize) -> Self {
        assert!(dim >= 2, "Reck mesh needs at least 2 waveguides");
        let mut ops = Vec::new();
        let mut param = 0;
        for i in 1..dim {
            for j in (0..i).rev() {
                push_mzi(&mut ops, j, &mut param);
            }
        }
        MeshModule {
            dim,
            ops,
            param_count: param,
            kind: MeshKind::Reck,
        }
    }

    /// Builds an ideal diagonal phase layer `diag(e^{jθ₁}, …, e^{jθ_K})`.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn phase_diag(dim: usize) -> Self {
        assert!(dim >= 1, "phase layer needs at least 1 waveguide");
        let ops = (0..dim)
            .map(|p| Op::Ps {
                port: p,
                param: p,
                zeta: C64::ONE,
            })
            .collect();
        MeshModule {
            dim,
            ops,
            param_count: dim,
            kind: MeshKind::PhaseDiag,
        }
    }

    /// The op netlist, in application order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of MZIs in the module (half the phase count for MZI meshes,
    /// zero for phase layers).
    pub fn mzi_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Bs { .. }))
            .count()
            / 2
    }

    /// Materializes the transfer matrix by pushing basis vectors through.
    ///
    /// With zero errors, the result is unitary for every `theta`.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len() != self.param_count()`.
    pub fn transfer_matrix(&self, theta: &[f64]) -> CMatrix {
        assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        let mut m = CMatrix::zeros(self.dim, self.dim);
        for k in 0..self.dim {
            let y = self.forward(&CVector::basis(self.dim, k), theta);
            m.set_col(k, &y);
        }
        m
    }
}

fn push_mzi(ops: &mut Vec<Op>, port: usize, param: &mut usize) {
    // MZI = (PS, BS) × 2 on the upper arm of the pair.
    ops.push(Op::Ps {
        port,
        param: *param,
        zeta: C64::ONE,
    });
    ops.push(Op::Bs { port, gamma: 0.0 });
    ops.push(Op::Ps {
        port,
        param: *param + 1,
        zeta: C64::ONE,
    });
    ops.push(Op::Bs { port, gamma: 0.0 });
    *param += 2;
}

impl OnnModule for MeshModule {
    fn name(&self) -> String {
        match self.kind {
            MeshKind::Clements { layers } => format!("Clements({},{})", self.dim, layers),
            MeshKind::Reck => format!("Reck({})", self.dim),
            MeshKind::PhaseDiag => format!("PSdiag({})", self.dim),
        }
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn param_count(&self) -> usize {
        self.param_count
    }

    fn is_layered(&self) -> bool {
        !matches!(self.kind, MeshKind::PhaseDiag)
    }

    fn error_slots(&self) -> (usize, usize) {
        let n_bs = self
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Bs { .. }))
            .count();
        let n_ps = self.ops.len() - n_bs;
        (n_bs, n_ps)
    }

    fn forward(&self, x: &CVector, theta: &[f64]) -> CVector {
        let mut state = CVector::zeros(0);
        self.forward_into(x, theta, &mut state);
        state
    }

    fn forward_tape(&self, x: &CVector, theta: &[f64]) -> (CVector, ModuleTape) {
        let mut out = CVector::zeros(0);
        let mut tape = ModuleTape::empty();
        self.forward_tape_into(x, theta, &mut out, &mut tape);
        (out, tape)
    }

    // Dimension checks in the per-op hot paths are debug-only: callers go
    // through the validated `Network`/chip boundary, which asserts input and
    // parameter lengths once per evaluation.
    fn forward_into(&self, x: &CVector, theta: &[f64], out: &mut CVector) {
        debug_assert_eq!(x.len(), self.dim, "input dimension mismatch");
        debug_assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        out.copy_from(x);
        for op in &self.ops {
            op.apply(out, theta);
        }
    }

    fn forward_tape_into(&self, x: &CVector, theta: &[f64], out: &mut CVector, tape: &mut ModuleTape) {
        debug_assert_eq!(x.len(), self.dim, "input dimension mismatch");
        debug_assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        // Push-then-apply: each slot is seeded with a copy of its
        // predecessor and the op is applied in place, instead of mutating a
        // running state and cloning it per op.
        tape.truncate(self.ops.len() + 1);
        tape.record(0, x);
        for (i, op) in self.ops.iter().enumerate() {
            op.apply(tape.advance(i), theta);
        }
        out.copy_from(tape.output());
    }

    fn is_compilable(&self) -> bool {
        true
    }

    fn compile_apply(&self, theta: &[f64], acc: &mut CMatrix) -> bool {
        debug_assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        debug_assert_eq!(acc.rows(), self.dim, "accumulator row mismatch");
        for op in &self.ops {
            op.apply_to_rows(acc, theta);
        }
        true
    }

    fn compile_apply_probed(
        &self,
        theta: &[f64],
        acc: &mut CMatrix,
        snaps: &mut Vec<PsSnapshot>,
    ) -> bool {
        debug_assert_eq!(theta.len(), self.param_count, "parameter count mismatch");
        debug_assert_eq!(acc.rows(), self.dim, "accumulator row mismatch");
        for op in &self.ops {
            if let Op::Ps { port, param, zeta } = *op {
                snaps.push(PsSnapshot {
                    param,
                    port,
                    zeta,
                    prefix: acc.row(port).to_vec(),
                    suffix: Vec::new(),
                });
            }
            op.apply_to_rows(acc, theta);
        }
        true
    }

    fn compile_suffix_probed(
        &self,
        theta: &[f64],
        acc: &mut CMatrix,
        snaps: &mut [PsSnapshot],
    ) -> bool {
        debug_assert_eq!(acc.cols(), self.dim, "suffix accumulator column mismatch");
        let mut k = snaps.len();
        for op in self.ops.iter().rev() {
            if let Op::Ps { port, .. } = *op {
                debug_assert!(k > 0, "snapshot/op walk out of sync");
                k -= 1;
                let snap = &mut snaps[k];
                debug_assert_eq!(snap.port, port, "snapshot/op walk out of sync");
                snap.suffix = acc.col(port).as_slice().to_vec();
            }
            op.apply_to_cols(acc, theta);
        }
        debug_assert_eq!(k, 0, "snapshot/op walk out of sync");
        true
    }

    fn jvp(&self, tape: &ModuleTape, theta: &[f64], dx: &CVector, dtheta: &[f64]) -> CVector {
        debug_assert_eq!(tape.states.len(), self.ops.len() + 1);
        let mut dstate = dx.clone();
        for (i, op) in self.ops.iter().enumerate() {
            op.jvp(&tape.states[i], &mut dstate, theta, dtheta);
        }
        dstate
    }

    fn vjp(
        &self,
        tape: &ModuleTape,
        theta: &[f64],
        gy: &CVector,
        grad_theta: &mut [f64],
    ) -> CVector {
        debug_assert_eq!(tape.states.len(), self.ops.len() + 1);
        let mut gstate = gy.clone();
        for (i, op) in self.ops.iter().enumerate().rev() {
            op.vjp(&tape.states[i], &mut gstate, theta, grad_theta);
        }
        gstate
    }

    fn with_errors(
        &self,
        cursor: &mut ErrorCursor<'_>,
    ) -> Result<Box<dyn OnnModule>, ErrorVectorError> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            ops.push(match *op {
                Op::Ps { port, param, .. } => Op::Ps {
                    port,
                    param,
                    zeta: cursor.next_zeta()?,
                },
                Op::Bs { port, .. } => Op::Bs {
                    port,
                    gamma: cursor.next_gamma()?,
                },
            });
        }
        Ok(Box::new(MeshModule {
            dim: self.dim,
            ops,
            param_count: self.param_count,
            kind: self.kind,
        }))
    }

    fn collect_errors(&self, out: &mut ErrorVector) {
        for op in &self.ops {
            match *op {
                Op::Ps { zeta, .. } => {
                    out.attenuation.push(1.0 - zeta.abs());
                    out.phase.push(zeta.arg());
                }
                Op::Bs { gamma, .. } => out.gamma.push(gamma),
            }
        }
    }

    fn clone_box(&self) -> Box<dyn OnnModule> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ErrorModel, ErrorVector};
    use photon_linalg::random::normal_cvector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_theta<R: Rng>(n: usize, rng: &mut R) -> Vec<f64> {
        (0..n)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect()
    }

    #[test]
    fn clements_parameter_counts() {
        // Clements(8,8): 28 MZIs, 56 phases — matches the published counts.
        let full = MeshModule::clements(8, 8);
        assert_eq!(full.param_count(), 56);
        assert_eq!(full.mzi_count(), 28);
        // Truncated Clements(8,4): 14 MZIs, 28 phases.
        let trunc = MeshModule::clements(8, 4);
        assert_eq!(trunc.param_count(), 28);
        assert_eq!(trunc.mzi_count(), 14);
        // With PSdiag(8): 56 + 8 = 64 = 8² parameters, universal.
        assert_eq!(MeshModule::phase_diag(8).param_count(), 8);
    }

    #[test]
    fn reck_parameter_count() {
        let reck = MeshModule::reck(6);
        assert_eq!(reck.mzi_count(), 15); // 6·5/2
        assert_eq!(reck.param_count(), 30);
        assert!(reck.is_layered());
    }

    #[test]
    fn names() {
        assert_eq!(MeshModule::clements(8, 4).name(), "Clements(8,4)");
        assert_eq!(MeshModule::reck(4).name(), "Reck(4)");
        assert_eq!(MeshModule::phase_diag(3).name(), "PSdiag(3)");
    }

    #[test]
    fn ideal_mesh_is_unitary() {
        let mut rng = StdRng::seed_from_u64(11);
        for module in [
            MeshModule::clements(6, 6),
            MeshModule::clements(6, 3),
            MeshModule::reck(5),
            MeshModule::phase_diag(4),
        ] {
            let theta = random_theta(module.param_count(), &mut rng);
            let u = module.transfer_matrix(&theta);
            assert!(u.is_unitary(1e-10), "{} not unitary", module.name());
        }
    }

    #[test]
    fn mesh_with_errors_conserves_power_up_to_attenuation() {
        // γ errors keep the BS unitary; ζ attenuation can only lose power.
        let mut rng = StdRng::seed_from_u64(5);
        let ideal = MeshModule::clements(6, 6);
        let (n_bs, n_ps) = ideal.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(4.0), &mut rng);
        let mut cursor = ErrorCursor::new(&ev);
        let noisy = ideal.with_errors(&mut cursor).unwrap();
        let theta = random_theta(noisy.param_count(), &mut rng);
        let x = normal_cvector(6, &mut rng);
        let y = noisy.forward(&x, &theta);
        assert!(y.norm_sqr() <= x.norm_sqr() + 1e-12);
        assert!(y.norm_sqr() > 0.5 * x.norm_sqr()); // small errors, small loss
    }

    #[test]
    fn error_roundtrip_through_collect() {
        let mut rng = StdRng::seed_from_u64(8);
        let ideal = MeshModule::clements(4, 4);
        let (n_bs, n_ps) = ideal.error_slots();
        assert_eq!(n_bs, n_ps); // MZIs have equal numbers of each
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(1.0), &mut rng);
        let noisy = ideal.with_errors(&mut ErrorCursor::new(&ev)).unwrap();
        let mut collected = ErrorVector::default();
        noisy.collect_errors(&mut collected);
        let r = ev.rmse(&collected);
        assert!(r.gamma < 1e-12 && r.attenuation < 1e-12 && r.phase < 1e-12);
    }

    #[test]
    fn forward_tape_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MeshModule::clements(5, 3);
        let theta = random_theta(m.param_count(), &mut rng);
        let x = normal_cvector(5, &mut rng);
        let y1 = m.forward(&x, &theta);
        let (y2, tape) = m.forward_tape(&x, &theta);
        assert!((&y1 - &y2).max_abs() < 1e-14);
        assert_eq!(tape.states.len(), m.ops().len() + 1);
        assert!((tape.output() - &y1).max_abs() < 1e-14);
    }

    #[test]
    fn jvp_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(21);
        let m = MeshModule::clements(4, 4);
        let theta = random_theta(m.param_count(), &mut rng);
        let x = normal_cvector(4, &mut rng);
        let dtheta: Vec<f64> = (0..m.param_count())
            .map(|_| rng.gen::<f64>() - 0.5)
            .collect();

        let (_, tape) = m.forward_tape(&x, &theta);
        let dy = m.jvp(&tape, &theta, &CVector::zeros(4), &dtheta);

        let eps = 1e-6;
        let theta_p: Vec<f64> = theta
            .iter()
            .zip(&dtheta)
            .map(|(t, d)| t + eps * d)
            .collect();
        let theta_m: Vec<f64> = theta
            .iter()
            .zip(&dtheta)
            .map(|(t, d)| t - eps * d)
            .collect();
        let fd = (&m.forward(&x, &theta_p) - &m.forward(&x, &theta_m)).scale_real(0.5 / eps);
        assert!((&dy - &fd).max_abs() < 1e-7);
    }

    #[test]
    fn vjp_is_adjoint_of_jvp() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = MeshModule::clements(4, 2);
        let n = m.param_count();
        let theta = random_theta(n, &mut rng);
        let x = normal_cvector(4, &mut rng);
        let (_, tape) = m.forward_tape(&x, &theta);

        let dx = normal_cvector(4, &mut rng);
        let dtheta: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let g = normal_cvector(4, &mut rng);

        let dy = m.jvp(&tape, &theta, &dx, &dtheta);
        let mut gtheta = vec![0.0; n];
        let gx = m.vjp(&tape, &theta, &g, &mut gtheta);

        let real_dot = |a: &CVector, b: &CVector| -> f64 {
            a.iter()
                .zip(b.iter())
                .map(|(u, v)| u.re * v.re + u.im * v.im)
                .sum()
        };
        let lhs = real_dot(&dy, &g);
        let rhs = real_dot(&dx, &gx) + dtheta.iter().zip(&gtheta).map(|(a, b)| a * b).sum::<f64>();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn phase_diag_is_elementwise() {
        let m = MeshModule::phase_diag(3);
        assert!(!m.is_layered());
        let theta = [0.1, 0.2, 0.3];
        let x = CVector::from_real_slice(&[1.0, 1.0, 1.0]);
        let y = m.forward(&x, &theta);
        for k in 0..3 {
            assert!((y[k] - C64::cis(theta[k])).abs() < 1e-12);
        }
    }

    #[test]
    fn compile_matrix_matches_transfer_matrix() {
        let mut rng = StdRng::seed_from_u64(17);
        for module in [
            MeshModule::clements(6, 6),
            MeshModule::clements(6, 3),
            MeshModule::reck(5),
            MeshModule::phase_diag(4),
        ] {
            let (n_bs, n_ps) = module.error_slots();
            let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(2.0), &mut rng);
            let noisy = module.with_errors(&mut ErrorCursor::new(&ev)).unwrap();
            let theta = random_theta(noisy.param_count(), &mut rng);
            let compiled = noisy.compile_matrix(&theta).expect("meshes are compilable");
            let mut reference = CMatrix::zeros(module.input_dim(), module.input_dim());
            for k in 0..module.input_dim() {
                let y = noisy.forward(&CVector::basis(module.input_dim(), k), &theta);
                reference.set_col(k, &y);
            }
            assert!(
                (&compiled - &reference).max_abs() < 1e-13,
                "{} compiled matrix diverges",
                module.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 waveguides")]
    fn clements_rejects_dim_1() {
        let _ = MeshModule::clements(1, 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn forward_rejects_wrong_input_dim() {
        let m = MeshModule::clements(4, 2);
        let theta = vec![0.0; m.param_count()];
        let _ = m.forward(&CVector::zeros(3), &theta);
    }
}
