//! Primitive circuit operations: phase shifters and beam splitters.
//!
//! A linear photonic module is a sequence of [`Op`]s acting on a complex
//! amplitude state. Each op supports forward application, forward-mode
//! differentiation (JVP) and reverse-mode differentiation (VJP); the VJP is
//! the exact real-adjoint of the JVP, so composing `vjp ∘ jvp` yields exact
//! Fisher-metric products.

use std::f64::consts::FRAC_PI_2;


use photon_linalg::{mzi_rotate, scale_slice, CMatrix, CVector, C64};

/// A primitive operation in a linear photonic module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Phase shifter on `port`: multiplies the amplitude by `ζ·e^{jθ}`,
    /// where `θ` is the module-local parameter at index `param` and `ζ` is
    /// the component's attenuation-phase error (`ζ = 1` when ideal).
    Ps {
        /// Waveguide index the shifter sits on.
        port: usize,
        /// Module-local index of the phase parameter driving this shifter.
        param: usize,
        /// Fabrication error factor `ζ`.
        zeta: C64,
    },
    /// Beam splitter coupling `port` and `port + 1` with transfer matrix
    /// `[[cos φ, j·sin φ], [j·sin φ, cos φ]]`, `φ = (π/2 + γ)/2`; `γ` is the
    /// splitting-angle error (`γ = 0` gives the ideal 50:50 splitter).
    Bs {
        /// Upper waveguide index of the coupled pair.
        port: usize,
        /// Splitting-angle error `γ` in radians.
        gamma: f64,
    },
}

impl Op {
    /// Applies the op to `state` in place using parameters `theta`
    /// (module-local indexing).
    #[inline]
    pub fn apply(&self, state: &mut CVector, theta: &[f64]) {
        match *self {
            Op::Ps { port, param, zeta } => {
                state[port] *= zeta * C64::cis(theta[param]);
            }
            Op::Bs { port, gamma } => {
                let phi = (FRAC_PI_2 + gamma) / 2.0;
                let c = phi.cos();
                let s = phi.sin();
                let a = state[port];
                let b = state[port + 1];
                state[port] = a.scale(c) + C64::new(-s * b.im, s * b.re);
                state[port + 1] = C64::new(-s * a.im, s * a.re) + b.scale(c);
            }
        }
    }

    /// Applies the op to every column of an accumulating transfer matrix at
    /// once, premultiplying the op's 2×2 (or 1×1) block onto `acc`.
    ///
    /// This is the compile-time dual of [`Op::apply`]: walking a module's
    /// op list over an identity-seeded `acc` builds the module's dense
    /// transfer matrix in `O(ops·N)` with the trig evaluated once per op
    /// instead of once per sample. Row-major `acc` makes each op touch one
    /// or two contiguous rows, serviced by the fused multi-RHS kernels.
    #[inline]
    pub fn apply_to_rows(&self, acc: &mut CMatrix, theta: &[f64]) {
        match *self {
            Op::Ps { port, param, zeta } => {
                scale_slice(acc.row_mut(port), zeta * C64::cis(theta[param]));
            }
            Op::Bs { port, gamma } => {
                let phi = (FRAC_PI_2 + gamma) / 2.0;
                let (top, bot) = acc.rows_pair_mut(port);
                mzi_rotate(top, bot, phi.cos(), phi.sin());
            }
        }
    }

    /// Applies the op from the *right*, postmultiplying the op's block onto
    /// `acc`: `acc ← acc · U_op`.
    ///
    /// This is the column-side dual of [`Op::apply_to_rows`], used by the
    /// incremental-update compiler to build suffix products `U_n···U_{i+1}`
    /// by walking the op list in reverse. A phase shifter scales column
    /// `port`; a beam splitter mixes columns `port` and `port + 1` (its 2×2
    /// block is symmetric, so the column coefficients equal the row ones).
    #[inline]
    pub fn apply_to_cols(&self, acc: &mut CMatrix, theta: &[f64]) {
        let n_rows = acc.rows();
        let n_cols = acc.cols();
        match *self {
            Op::Ps { port, param, zeta } => {
                let f = zeta * C64::cis(theta[param]);
                let data = acc.as_mut_slice();
                for r in 0..n_rows {
                    let v = &mut data[r * n_cols + port];
                    *v = f * *v;
                }
            }
            Op::Bs { port, gamma } => {
                let phi = (FRAC_PI_2 + gamma) / 2.0;
                let c = phi.cos();
                let s = phi.sin();
                let data = acc.as_mut_slice();
                for r in 0..n_rows {
                    let a = data[r * n_cols + port];
                    let b = data[r * n_cols + port + 1];
                    data[r * n_cols + port] = a.scale(c) + C64::new(-s * b.im, s * b.re);
                    data[r * n_cols + port + 1] = C64::new(-s * a.im, s * a.re) + b.scale(c);
                }
            }
        }
    }

    /// Forward-mode derivative: updates the tangent `dstate` in place.
    ///
    /// `pre` must be the state *before* this op was applied (from the
    /// forward tape) and `dtheta` the parameter tangent.
    #[inline]
    pub fn jvp(&self, pre: &CVector, dstate: &mut CVector, theta: &[f64], dtheta: &[f64]) {
        match *self {
            Op::Ps { port, param, zeta } => {
                let f = zeta * C64::cis(theta[param]);
                // y = f·x  ⇒  dy = f·dx + j·dθ·f·x
                let y = f * pre[port];
                dstate[port] = f * dstate[port] + C64::new(-y.im, y.re).scale(dtheta[param]);
            }
            Op::Bs { port, gamma } => {
                let phi = (FRAC_PI_2 + gamma) / 2.0;
                let c = phi.cos();
                let s = phi.sin();
                let a = dstate[port];
                let b = dstate[port + 1];
                dstate[port] = a.scale(c) + C64::new(-s * b.im, s * b.re);
                dstate[port + 1] = C64::new(-s * a.im, s * a.re) + b.scale(c);
            }
        }
    }

    /// Reverse-mode derivative: transforms the cotangent `gstate` in place
    /// (output cotangent → input cotangent) and accumulates the parameter
    /// cotangent into `grad_theta`.
    ///
    /// `pre` must be the state before this op (from the forward tape). The
    /// cotangent convention is `g = ∂ℓ/∂Re(y) + j·∂ℓ/∂Im(y)`; a linear op
    /// `y = U·x` therefore backpropagates as `g_x = Uᴴ·g_y`.
    #[inline]
    pub fn vjp(&self, pre: &CVector, gstate: &mut CVector, theta: &[f64], grad_theta: &mut [f64]) {
        match *self {
            Op::Ps { port, param, zeta } => {
                let f = zeta * C64::cis(theta[param]);
                let g = gstate[port];
                // ∂ℓ/∂θ = ⟨j·y, g⟩_R = Im(conj(y)·g), y = f·x.
                let y = f * pre[port];
                grad_theta[param] += (y.conj() * g).im;
                gstate[port] = f.conj() * g;
            }
            Op::Bs { port, gamma } => {
                let phi = (FRAC_PI_2 + gamma) / 2.0;
                let c = phi.cos();
                let s = phi.sin();
                let a = gstate[port];
                let b = gstate[port + 1];
                // Bᴴ = [[c, -j·s], [-j·s, c]]
                gstate[port] = a.scale(c) + C64::new(s * b.im, -s * b.re);
                gstate[port + 1] = C64::new(s * a.im, -s * a.re) + b.scale(c);
            }
        }
    }

    /// Module-local parameter index if this op is parameterized.
    pub fn param_index(&self) -> Option<usize> {
        match *self {
            Op::Ps { param, .. } => Some(param),
            Op::Bs { .. } => None,
        }
    }

    /// The highest port index this op touches.
    pub fn max_port(&self) -> usize {
        match *self {
            Op::Ps { port, .. } => port,
            Op::Bs { port, .. } => port + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::CMatrix;

    fn state2(a: C64, b: C64) -> CVector {
        CVector::from_vec(vec![a, b])
    }

    #[test]
    fn ideal_bs_is_unitary_50_50() {
        let op = Op::Bs {
            port: 0,
            gamma: 0.0,
        };
        let mut e0 = state2(C64::ONE, C64::ZERO);
        op.apply(&mut e0, &[]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((e0[0] - C64::from_real(s)).abs() < 1e-12);
        assert!((e0[1] - C64::new(0.0, s)).abs() < 1e-12);
        // Power conserved.
        assert!((e0.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bs_with_error_still_unitary() {
        let op = Op::Bs {
            port: 0,
            gamma: 0.2,
        };
        let mut x = state2(C64::new(0.3, -0.4), C64::new(0.1, 0.9));
        let p_in = x.norm_sqr();
        op.apply(&mut x, &[]);
        assert!((x.norm_sqr() - p_in).abs() < 1e-12);
    }

    #[test]
    fn ps_applies_phase_and_attenuation() {
        let zeta = C64::from_polar(0.9, 0.05);
        let op = Op::Ps {
            port: 1,
            param: 0,
            zeta,
        };
        let mut x = state2(C64::ONE, C64::ONE);
        op.apply(&mut x, &[0.7]);
        assert_eq!(x[0], C64::ONE);
        let expected = zeta * C64::cis(0.7);
        assert!((x[1] - expected).abs() < 1e-12);
        // Attenuation reduces power on that port.
        assert!((x[1].abs() - 0.9).abs() < 1e-12);
    }

    /// Finite-difference check of the JVP for a PS op.
    #[test]
    fn ps_jvp_matches_finite_difference() {
        let op = Op::Ps {
            port: 0,
            param: 0,
            zeta: C64::from_polar(0.95, -0.1),
        };
        let x = state2(C64::new(0.4, 0.3), C64::ZERO);
        let theta = [0.3];
        let eps = 1e-7;

        let mut y_plus = x.clone();
        op.apply(&mut y_plus, &[theta[0] + eps]);
        let mut y_minus = x.clone();
        op.apply(&mut y_minus, &[theta[0] - eps]);
        let fd = (&y_plus - &y_minus).scale_real(0.5 / eps);

        let mut dy = CVector::zeros(2);
        op.jvp(&x, &mut dy, &theta, &[1.0]);
        assert!((&dy - &fd).max_abs() < 1e-6);
    }

    /// The VJP must be the exact adjoint of the JVP under the real inner
    /// product `⟨u, v⟩ = Re(uᴴv)` extended with the parameter component.
    #[test]
    fn vjp_is_adjoint_of_jvp() {
        let ops = [
            Op::Ps {
                port: 0,
                param: 0,
                zeta: C64::from_polar(0.98, 0.02),
            },
            Op::Bs {
                port: 0,
                gamma: 0.15,
            },
        ];
        let theta = [0.4];
        let x = state2(C64::new(0.2, -0.7), C64::new(-0.5, 0.1));

        for op in ops {
            // Random-ish tangent and cotangent.
            let dx = state2(C64::new(0.3, 0.9), C64::new(-0.2, 0.4));
            let dtheta = [0.6];
            let g = state2(C64::new(-0.8, 0.1), C64::new(0.5, 0.5));

            let mut dy = dx.clone();
            op.jvp(&x, &mut dy, &theta, &dtheta);

            let mut gx = g.clone();
            let mut gtheta = [0.0];
            op.vjp(&x, &mut gx, &theta, &mut gtheta);

            // ⟨J(dx, dθ), g⟩ = ⟨(dx, dθ), Jᵀg⟩
            let lhs: f64 = dy
                .iter()
                .zip(g.iter())
                .map(|(a, b)| a.re * b.re + a.im * b.im)
                .sum();
            let rhs: f64 = dx
                .iter()
                .zip(gx.iter())
                .map(|(a, b)| a.re * b.re + a.im * b.im)
                .sum::<f64>()
                + dtheta[0] * gtheta[0];
            assert!((lhs - rhs).abs() < 1e-12, "op {op:?}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn bs_matches_reference_matrix() {
        let gamma = 0.1;
        let op = Op::Bs { port: 0, gamma };
        let phi = (FRAC_PI_2 + gamma) / 2.0;
        let reference = CMatrix::from_rows(&[
            vec![C64::from_real(phi.cos()), C64::new(0.0, phi.sin())],
            vec![C64::new(0.0, phi.sin()), C64::from_real(phi.cos())],
        ]);
        for basis in 0..2 {
            let mut x = CVector::basis(2, basis);
            op.apply(&mut x, &[]);
            let expected = reference.col(basis);
            assert!((&x - &expected).max_abs() < 1e-12);
        }
        assert!(reference.is_unitary(1e-12));
    }

    /// `apply_to_rows` on an identity-seeded matrix must reproduce the
    /// column-by-column basis push of `apply` exactly.
    #[test]
    fn apply_to_rows_matches_basis_push() {
        let ops = [
            Op::Ps {
                port: 1,
                param: 0,
                zeta: C64::from_polar(0.97, 0.1),
            },
            Op::Bs { port: 0, gamma: 0.2 },
            Op::Bs {
                port: 1,
                gamma: -0.1,
            },
            Op::Ps {
                port: 2,
                param: 1,
                zeta: C64::ONE,
            },
        ];
        let theta = [0.3, -1.1];
        let mut acc = CMatrix::identity(3);
        for op in &ops {
            op.apply_to_rows(&mut acc, &theta);
        }
        for basis in 0..3 {
            let mut x = CVector::basis(3, basis);
            for op in &ops {
                op.apply(&mut x, &theta);
            }
            let col = acc.col(basis);
            assert!((&x - &col).max_abs() < 1e-14, "basis column {basis}");
        }
    }

    /// Postmultiplying identity by the op list in *reverse* order builds the
    /// same product `U_n···U_1` as premultiplying in forward order, which is
    /// exactly the contract the suffix reverse walk relies on.
    #[test]
    fn apply_to_cols_reverse_walk_matches_row_walk() {
        let ops = [
            Op::Ps {
                port: 1,
                param: 0,
                zeta: C64::from_polar(0.97, 0.1),
            },
            Op::Bs { port: 0, gamma: 0.2 },
            Op::Bs {
                port: 1,
                gamma: -0.1,
            },
            Op::Ps {
                port: 2,
                param: 1,
                zeta: C64::ONE,
            },
        ];
        let theta = [0.3, -1.1];
        let mut rows_acc = CMatrix::identity(3);
        for op in &ops {
            op.apply_to_rows(&mut rows_acc, &theta);
        }
        let mut cols_acc = CMatrix::identity(3);
        for op in ops.iter().rev() {
            op.apply_to_cols(&mut cols_acc, &theta);
        }
        assert!((&rows_acc - &cols_acc).max_abs() < 1e-14);
    }

    #[test]
    fn param_index_and_ports() {
        let ps = Op::Ps {
            port: 2,
            param: 5,
            zeta: C64::ONE,
        };
        let bs = Op::Bs {
            port: 3,
            gamma: 0.0,
        };
        assert_eq!(ps.param_index(), Some(5));
        assert_eq!(bs.param_index(), None);
        assert_eq!(ps.max_port(), 2);
        assert_eq!(bs.max_port(), 4);
    }
}
