//! Property-based tests of the physical invariants of the photonic
//! simulator.

use proptest::prelude::*;
use rand::SeedableRng;

use photon_linalg::random::{normal_cvector, normal_rvector};
use photon_linalg::{CVector, RVector};
use photon_photonics::{
    fisher_vector_product, module_jacobian, Architecture, ErrorCursor, ErrorModel, ErrorVector,
    MeshModule, ModuleSpec, OnnModule,
};

fn arb_theta(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..std::f64::consts::TAU, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// forward(x) must equal transfer_matrix(θ)·x for linear modules —
    /// the op-by-op path and the materialized matrix agree.
    #[test]
    fn forward_matches_transfer_matrix(
        seed in 0u64..300,
        phases in arb_theta(40),
        dim in 2usize..6,
    ) {
        let mesh = MeshModule::clements(dim, dim);
        prop_assume!(phases.len() >= mesh.param_count());
        let theta = &phases[..mesh.param_count()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = normal_cvector(dim, &mut rng);
        let u = mesh.transfer_matrix(theta);
        let direct = mesh.forward(&x, theta);
        let via_matrix = u.mul_vec(&x).unwrap();
        prop_assert!((&direct - &via_matrix).max_abs() < 1e-10);
    }

    /// A Reck triangle is also always unitary.
    #[test]
    fn reck_is_unitary(phases in arb_theta(30), dim in 2usize..6) {
        let mesh = MeshModule::reck(dim);
        prop_assume!(phases.len() >= mesh.param_count());
        let u = mesh.transfer_matrix(&phases[..mesh.param_count()]);
        prop_assert!(u.is_unitary(1e-9));
    }

    /// Linearity of the whole linear stack: f(αx + βy) = αf(x) + βf(y),
    /// even with fabrication errors.
    #[test]
    fn mesh_is_linear_in_the_field(
        seed in 0u64..300,
        phases in arb_theta(24),
    ) {
        let mesh = MeshModule::clements(4, 4);
        prop_assume!(phases.len() >= mesh.param_count());
        let theta = &phases[..mesh.param_count()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (n_bs, n_ps) = mesh.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(3.0), &mut rng);
        let noisy = mesh.with_errors(&mut ErrorCursor::new(&ev)).unwrap();
        let x = normal_cvector(4, &mut rng);
        let y = normal_cvector(4, &mut rng);
        let alpha = photon_linalg::C64::new(0.3, -0.7);
        let combo = x.scale(alpha) + y.clone();
        let lhs = noisy.forward(&combo, theta);
        let rhs = noisy.forward(&x, theta).scale(alpha) + noisy.forward(&y, theta);
        prop_assert!((&lhs - &rhs).max_abs() < 1e-9);
    }

    /// modReLU is *not* linear, but it always preserves phase and never
    /// increases modulus for non-positive biases.
    #[test]
    fn modrelu_phase_preserving(seed in 0u64..300, bias in -0.5..0.0f64) {
        use photon_photonics::ModRelu;
        let act = ModRelu::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = normal_cvector(3, &mut rng);
        let theta = vec![bias; 3];
        let y = act.forward(&x, &theta);
        for k in 0..3 {
            prop_assert!(y[k].abs() <= x[k].abs() + 1e-12);
            if y[k].abs() > 1e-9 {
                let dphi = (y[k].arg() - x[k].arg()).abs();
                let dphi = dphi.min(std::f64::consts::TAU - dphi);
                prop_assert!(dphi < 1e-9, "phase changed by {dphi}");
            }
        }
    }

    /// The module Jacobian is consistent with the JVP used to build it:
    /// J·dθ equals the jvp along dθ for arbitrary tangents.
    #[test]
    fn jacobian_consistent_with_jvp(seed in 0u64..300) {
        let mesh = MeshModule::clements(3, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = mesh.param_count();
        let theta: Vec<f64> = normal_rvector(n, &mut rng).into_vec();
        let x = normal_cvector(3, &mut rng);
        let j = module_jacobian(&mesh, &x, &theta);
        let dtheta = normal_rvector(n, &mut rng);
        let (_, tape) = mesh.forward_tape(&x, &theta);
        let dy = mesh.jvp(&tape, &theta, &CVector::zeros(3), dtheta.as_slice());
        let jd = j.mul_vec(&CVector::from_real_slice(dtheta.as_slice())).unwrap();
        prop_assert!((&dy - &jd).max_abs() < 1e-9);
    }

    /// Fisher products are symmetric: ⟨u, F·v⟩ = ⟨F·u, v⟩, and PSD:
    /// ⟨v, F·v⟩ ≥ 0.
    #[test]
    fn fisher_product_symmetric_psd(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arch = Architecture::new(vec![
            ModuleSpec::Clements { dim: 3, layers: 2 },
            ModuleSpec::PhaseDiag { dim: 3 },
            ModuleSpec::ModRelu { dim: 3 },
        ]).unwrap();
        let net = arch.build_ideal();
        let mut theta = net.init_params(&mut rng);
        for k in net.module_param_range(2) {
            theta[k] = 0.1;
        }
        let inputs: Vec<CVector> = (0..2).map(|_| normal_cvector(3, &mut rng)).collect();
        let u = normal_rvector(net.param_count(), &mut rng);
        let v = normal_rvector(net.param_count(), &mut rng);
        let fu = fisher_vector_product(&net, &theta, &inputs, &u);
        let fv = fisher_vector_product(&net, &theta, &inputs, &v);
        let sym = (u.dot(&fv).unwrap() - fu.dot(&v).unwrap()).abs();
        prop_assert!(sym < 1e-8, "asymmetry {sym}");
        prop_assert!(v.dot(&fv).unwrap() >= -1e-9);
    }

    /// Error vectors survive the flat ↔ structured roundtrip through a
    /// network build for arbitrary shapes.
    #[test]
    fn error_vector_roundtrip_through_network(
        seed in 0u64..300,
        layers in 1usize..5,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(4, layers).unwrap();
        let (n_bs, n_ps) = arch.error_slots();
        let ev = ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(1.0), &mut rng);
        let flat = ev.to_flat();
        let back = ErrorVector::from_flat(n_bs, n_ps, &flat).unwrap();
        let net = arch.build_with_errors(&back).unwrap();
        let collected = net.collect_errors();
        let r = ev.rmse(&collected);
        prop_assert!(r.gamma < 1e-12 && r.attenuation < 1e-12 && r.phase < 1e-12);
    }

    /// The chip query counter charges exactly one query per forward, for
    /// any interleaving of field and power measurements.
    #[test]
    fn query_counting_is_exact(
        seed in 0u64..200,
        fields in 0usize..10,
        powers in 0usize..10,
    ) {
        use photon_photonics::FabricatedChip;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(3, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(3, 0);
        for _ in 0..fields {
            let _ = chip.forward(&x, &theta);
        }
        for _ in 0..powers {
            let _ = chip.forward_powers(&x, &theta);
        }
        prop_assert_eq!(chip.query_count(), (fields + powers) as u64);
    }
}

/// Non-proptest regression: padded phases in `arb_theta` never exceed the
/// mesh parameter count assumption for the dims used above.
#[test]
fn clements_param_count_bound() {
    for dim in 2..6 {
        let mesh = MeshModule::clements(dim, dim);
        assert!(mesh.param_count() <= 40, "dim {dim}");
        let _ = RVector::zeros(mesh.param_count());
    }
}
