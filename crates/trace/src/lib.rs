//! Structured telemetry for the photon-zo training stack.
//!
//! The DAC 2024 method is a *query-budgeted* black-box loop: every LCNG
//! probe, CMA-ES population member, calibration sweep, fidelity check and
//! evaluation pass spends chip queries. This crate makes that spend — and
//! the wall-time, cache and pool behaviour behind it — observable without
//! perturbing the training computation.
//!
//! Design contract:
//!
//! * **Zero dependencies.** Only `std`. Events are hand-serialized to
//!   JSON lines; no serde, no chrono.
//! * **Null by default, free when null.** Producers hold a [`TraceHandle`]
//!   whose default is the null sink. [`TraceHandle::emit`] takes a closure,
//!   so a disabled handle costs one branch and never constructs the event
//!   (hot paths stay allocation-free).
//! * **Observation only.** Sinks receive copies of values the trainer
//!   already computed. Attaching or detaching a sink must leave training
//!   bitwise identical: no RNG draws, no floating-point operations, no
//!   reordering may depend on the handle. `tests/telemetry.rs` in the
//!   workspace root enforces this at pool sizes 1/3/4.
//! * **Thread-safe sinks.** [`TraceSink::record`] takes `&self` and sinks
//!   are `Send + Sync`; emission points may sit on worker threads.
//!
//! Event ordering within one thread follows program order. The JSONL file
//! is line-buffered behind a mutex, so concurrent emitters interleave at
//! line granularity and every line is a complete JSON object.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// What a chip query was spent on. Every query the trainer issues is
/// attributed to exactly one category; the per-run ledger of
/// [`TraceEvent::QueryLedger`] entries therefore sums to the chip's own
/// [`query_count`](https://docs.rs/) delta — a property the test suite and
/// the CI telemetry gate both assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryCategory {
    /// ZO / LCNG perturbation probes and CMA-ES population evaluations.
    Probe,
    /// Base (unperturbed) mini-batch loss measurements, including
    /// divergence-guard re-reads.
    BatchLoss,
    /// Chip queries spent refreshing Fisher metrics / preconditioners.
    /// Zero for model-based metrics — the paper's point: LCNG gets its
    /// curvature from the calibrated software model, not the chip.
    Fisher,
    /// Calibration measurement sweeps (initial or in-run recalibration).
    Calibration,
    /// Fidelity-monitor probes of the self-healing ladder.
    RecoveryMonitor,
    /// Test-set evaluation sweeps (scheduled and final).
    Eval,
    /// Duplicate work spent by hedged serving dispatches: a microbatch
    /// re-dispatched to a second replica whose completion lost the race
    /// (or a primary completion that arrived after its hedge). The queries
    /// are real chip spend, so they stay on the ledger — attributed here
    /// rather than to the winning category — which is what keeps
    /// "ledger total == chip query delta" exact under hedging.
    Hedge,
}

impl QueryCategory {
    /// All categories, in ledger-report order.
    pub const ALL: [QueryCategory; 7] = [
        QueryCategory::Probe,
        QueryCategory::BatchLoss,
        QueryCategory::Fisher,
        QueryCategory::Calibration,
        QueryCategory::RecoveryMonitor,
        QueryCategory::Eval,
        QueryCategory::Hedge,
    ];

    /// Stable snake_case label (used as the JSON value).
    pub fn label(&self) -> &'static str {
        match self {
            QueryCategory::Probe => "probe",
            QueryCategory::BatchLoss => "batch_loss",
            QueryCategory::Fisher => "fisher",
            QueryCategory::Calibration => "calibration",
            QueryCategory::RecoveryMonitor => "recovery_monitor",
            QueryCategory::Eval => "eval",
            QueryCategory::Hedge => "hedge",
        }
    }
}

/// Per-category query counters. Plain `u64` arithmetic — cheap enough to
/// keep even on untraced runs, where it backs the trainer's
/// `debug_assert!` reconciliation against `chip.query_count()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerCounts {
    counts: [u64; QueryCategory::ALL.len()],
}

impl LedgerCounts {
    /// An all-zero ledger.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(cat: QueryCategory) -> usize {
        QueryCategory::ALL
            .iter()
            .position(|c| *c == cat)
            .expect("ALL is exhaustive")
    }

    /// Adds `queries` to `cat`.
    pub fn add(&mut self, cat: QueryCategory, queries: u64) {
        self.counts[Self::slot(cat)] += queries;
    }

    /// The count attributed to `cat`.
    pub fn get(&self, cat: QueryCategory) -> u64 {
        self.counts[Self::slot(cat)]
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulates another ledger into this one.
    pub fn absorb(&mut self, other: &LedgerCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// `(category, count)` pairs in [`QueryCategory::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryCategory, u64)> + '_ {
        QueryCategory::ALL
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
    }
}

/// One typed telemetry event. All payloads are plain scalars so events are
/// cheap to clone and trivially serializable.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Start of a stage-2 fine-tune run.
    RunStart {
        /// Method label (e.g. `ZO-LCNG(calib)`).
        method: String,
        /// Configured stage-2 epochs.
        epochs: u64,
        /// Mini-batch size.
        batch_size: u64,
        /// ZO probe count `Q`.
        probes: u64,
        /// GEMM kernel tier selected at pool startup (`scalar`,
        /// `avx2-fma`, `neon`), so archived runs record which arithmetic
        /// path produced them.
        kernel: String,
    },
    /// Per-epoch training summary.
    EpochSpan {
        /// Stage-2 epoch (1-based).
        epoch: u64,
        /// Mean training loss over the epoch's batches.
        train_loss: f64,
        /// Test accuracy, when an evaluation ran this epoch.
        test_accuracy: Option<f64>,
        /// Test loss, when an evaluation ran this epoch.
        test_loss: Option<f64>,
        /// Adam learning rate at epoch end (reflects rollback backoffs).
        learning_rate: f64,
        /// Wall-clock seconds since the run started.
        wall_secs: f64,
        /// Cumulative training queries at epoch end (evals excluded).
        training_queries: u64,
    },
    /// One ledger entry: `queries` chip queries attributed to `category`.
    /// Epoch 0 denotes spend outside the epoch loop (e.g. pre-run
    /// calibration via `calibrate_traced`).
    QueryLedger {
        /// Stage-2 epoch the spend occurred in (0 = outside the loop).
        epoch: u64,
        /// What the queries were spent on.
        category: QueryCategory,
        /// Number of chip queries.
        queries: u64,
    },
    /// Compiled-unitary cache counters (run-level delta).
    CacheStats {
        /// Forward-batch calls served by the cached compiled plan.
        hits: u64,
        /// Full plan compilations (cache misses).
        misses: u64,
        /// Recompilations that evicted a previously valid plan.
        invalidations: u64,
        /// Compiles served incrementally from a pinned base (rank-1
        /// updates instead of a full mesh recompile).
        incremental: u64,
        /// Full recompiles forced by the incremental drift-bound cadence.
        forced_recompiles: u64,
    },
    /// Worker-pool counters (run-level).
    PoolStats {
        /// Configured worker threads.
        threads: u64,
        /// `map`/`map_with` calls executed.
        map_calls: u64,
        /// Total items processed across all calls.
        items: u64,
        /// Worst per-call imbalance: max share (in 1/1000ths of the call's
        /// items) claimed by a single worker. 1000 = one worker did
        /// everything (expected for serial pools).
        peak_worker_share_milli: u64,
    },
    /// A calibration fit completed.
    Calibration {
        /// Chip queries consumed by the measurement sweep.
        queries: u64,
        /// Residual cost before the fit.
        initial_cost: f64,
        /// Residual cost after the fit.
        fit_cost: f64,
        /// Gauss-Newton iterations used.
        iterations: u64,
    },
    /// The divergence guard rolled training back to the last snapshot.
    Rollback {
        /// Stage-2 epoch (1-based).
        epoch: u64,
        /// Global iteration index at the rollback.
        iteration: u64,
        /// The offending base loss (may be non-finite).
        loss: f64,
        /// The spike threshold it exceeded.
        threshold: f64,
        /// Learning rate after the backoff.
        new_lr: f64,
    },
    /// The fidelity monitor recalibrated the metric model.
    Recalibration {
        /// Stage-2 epoch (1-based).
        epoch: u64,
        /// Measured fidelity that triggered the recalibration.
        fidelity_before: f64,
        /// Fidelity of the freshly calibrated model.
        fidelity_after: f64,
        /// Chip queries the monitor + recalibration consumed.
        queries: u64,
        /// Whether the new model was adopted.
        adopted: bool,
    },
    /// Cumulative fault-injection counters (emitted from the serial
    /// `advance_to` control point whenever they changed).
    FaultStats {
        /// Iteration index of the control point.
        step: u64,
        /// Readings dropped to NaN so far.
        dropped: u64,
        /// Readings spiked so far.
        spiked: u64,
        /// Burst windows entered so far.
        bursts: u64,
    },
    /// One durable-run journal record hit the disk (fsynced).
    JournalFlush {
        /// Stage-2 epoch the record covers.
        epoch: u64,
        /// Records appended to the journal so far (header included).
        records: u64,
        /// Bytes of this framed record.
        bytes: u64,
    },
    /// A durable run resumed from its journal.
    Resume {
        /// Last completed epoch found in the journal.
        epoch: u64,
        /// Intact epoch records replayed.
        records_replayed: u64,
        /// Bytes of torn tail truncated during replay (0 for a clean log).
        truncated_bytes: u64,
    },
    /// End of a stage-2 fine-tune run, with reconciliation totals.
    RunEnd {
        /// Method label.
        method: String,
        /// Training queries (evals excluded), as on `TrainOutcome`.
        training_queries: u64,
        /// Evaluation + monitor + in-run recalibration queries.
        eval_queries: u64,
        /// Total chip queries spent by this run (training + eval).
        run_queries: u64,
        /// Absolute `chip.query_count()` at run end. For a fresh chip whose
        /// every query is traced, the sum of all `QueryLedger` entries
        /// equals this value.
        chip_query_count: u64,
        /// Wall-clock seconds for the whole run.
        wall_secs: f64,
    },
    /// A farm worker's chip changed health state (emitted by the chip-farm
    /// supervisor when its rolling error window or a chaos schedule moves a
    /// worker between healthy / degraded / quarantined / dead).
    ChipHealth {
        /// Worker name.
        worker: String,
        /// State before the transition.
        from: String,
        /// State after the transition.
        to: String,
        /// What drove it (e.g. "error window 3/4", "chaos quarantine").
        reason: String,
    },
    /// A farm job changed state (submitted / dispatched / preempted /
    /// migrated / completed / rejected).
    JobState {
        /// Job name (unique within the farm run).
        job: String,
        /// Owning tenant.
        tenant: String,
        /// The new state, as a stable lowercase word.
        state: String,
        /// Worker involved, or empty when not placed.
        worker: String,
        /// Free-form detail (rejection reason, epochs completed, …).
        detail: String,
    },
    /// Per-tenant end-of-farm ledger line: total chip spend attributed to
    /// the tenant across every slice of every job, for reconciliation
    /// against the per-worker chip counters.
    TenantLedger {
        /// Tenant name.
        tenant: String,
        /// Chip queries attributed to the tenant (discarded attempts
        /// included — this is raw chip spend, not just journaled spend).
        queries: u64,
        /// Jobs that finished with a completed outcome.
        jobs_completed: u64,
        /// Jobs that ended rejected (admission or mid-run load-shed).
        jobs_rejected: u64,
    },
    /// A canary comparison between the deployed theta and a shadow theta
    /// finished: seeded traffic was served by both, and the Mann-Whitney
    /// gate on the per-sample losses produced a verdict.
    CanaryVerdict {
        /// Online-recalibration cycle (1-based).
        cycle: u64,
        /// Canary samples routed to each arm.
        samples: u64,
        /// Mean per-sample loss of the deployed (baseline) theta.
        baseline_loss: f64,
        /// Mean per-sample loss of the shadow theta.
        shadow_loss: f64,
        /// Two-sided Mann-Whitney p-value of the loss comparison.
        p_value: f64,
        /// Whether the gate decided to promote the shadow.
        promote: bool,
    },
    /// The shadow theta was atomically promoted to the deployed pinned
    /// base at a serial control point.
    Promotion {
        /// Online-recalibration cycle (1-based).
        cycle: u64,
        /// Serial `advance_to` step the re-pin happened at.
        step: u64,
        /// Shadow fine-tune epochs that produced the promoted theta.
        shadow_epochs: u64,
        /// Canary loss of the promoted theta.
        shadow_loss: f64,
    },
    /// The shadow theta lost (or tied) the canary and was discarded; the
    /// deployed theta keeps serving.
    ShadowRollback {
        /// Online-recalibration cycle (1-based).
        cycle: u64,
        /// Serial `advance_to` step the decision was taken at.
        step: u64,
        /// Why the shadow was rejected (stable lowercase words, e.g.
        /// "canary_not_better", "finetune_diverged").
        reason: String,
    },
    /// Per-tenant serving-latency summary from a serving run or the
    /// discrete-event serving simulator: tail latencies, throughput, and
    /// what overload cost (shed requests, queue high-water mark).
    ServingStats {
        /// Tenant name (or `"all"` for the aggregate row).
        tenant: String,
        /// Requests that arrived during the run.
        arrivals: u64,
        /// Requests served to completion.
        completed: u64,
        /// Requests shed at admission (queue full).
        shed: u64,
        /// Median latency in nanoseconds (virtual time in simulation).
        p50_ns: f64,
        /// 99th-percentile latency in nanoseconds.
        p99_ns: f64,
        /// 99.9th-percentile latency in nanoseconds.
        p999_ns: f64,
        /// Completed requests per second of makespan.
        throughput_rps: f64,
        /// High-water queue depth observed.
        peak_queue_depth: u64,
        /// Mean requests per coalesced dispatch.
        mean_batch: f64,
    },
}

/// Formats an `f64` as a JSON value; non-finite values become `null`
/// (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` prints the shortest representation that round-trips; bare
        // integers like `3` are valid JSON numbers already.
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) => json_f64(x),
        None => "null".into(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TraceEvent {
    /// Stable snake_case discriminant, used as the `"type"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::EpochSpan { .. } => "epoch_span",
            TraceEvent::QueryLedger { .. } => "query_ledger",
            TraceEvent::CacheStats { .. } => "cache_stats",
            TraceEvent::PoolStats { .. } => "pool_stats",
            TraceEvent::Calibration { .. } => "calibration",
            TraceEvent::Rollback { .. } => "rollback",
            TraceEvent::Recalibration { .. } => "recalibration",
            TraceEvent::FaultStats { .. } => "fault_stats",
            TraceEvent::JournalFlush { .. } => "journal_flush",
            TraceEvent::Resume { .. } => "resume",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::ChipHealth { .. } => "chip_health",
            TraceEvent::JobState { .. } => "job_state",
            TraceEvent::TenantLedger { .. } => "tenant_ledger",
            TraceEvent::CanaryVerdict { .. } => "canary_verdict",
            TraceEvent::Promotion { .. } => "promotion",
            TraceEvent::ShadowRollback { .. } => "shadow_rollback",
            TraceEvent::ServingStats { .. } => "serving_stats",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let kind = json_str(self.kind());
        match self {
            TraceEvent::RunStart {
                method,
                epochs,
                batch_size,
                probes,
                kernel,
            } => format!(
                "{{\"type\":{kind},\"method\":{},\"epochs\":{epochs},\"batch_size\":{batch_size},\"probes\":{probes},\"kernel\":{}}}",
                json_str(method),
                json_str(kernel)
            ),
            TraceEvent::EpochSpan {
                epoch,
                train_loss,
                test_accuracy,
                test_loss,
                learning_rate,
                wall_secs,
                training_queries,
            } => format!(
                "{{\"type\":{kind},\"epoch\":{epoch},\"train_loss\":{},\"test_accuracy\":{},\"test_loss\":{},\"learning_rate\":{},\"wall_secs\":{},\"training_queries\":{training_queries}}}",
                json_f64(*train_loss),
                json_opt_f64(*test_accuracy),
                json_opt_f64(*test_loss),
                json_f64(*learning_rate),
                json_f64(*wall_secs),
            ),
            TraceEvent::QueryLedger {
                epoch,
                category,
                queries,
            } => format!(
                "{{\"type\":{kind},\"epoch\":{epoch},\"category\":{},\"queries\":{queries}}}",
                json_str(category.label())
            ),
            TraceEvent::CacheStats {
                hits,
                misses,
                invalidations,
                incremental,
                forced_recompiles,
            } => format!(
                "{{\"type\":{kind},\"hits\":{hits},\"misses\":{misses},\"invalidations\":{invalidations},\"incremental\":{incremental},\"forced_recompiles\":{forced_recompiles}}}"
            ),
            TraceEvent::PoolStats {
                threads,
                map_calls,
                items,
                peak_worker_share_milli,
            } => format!(
                "{{\"type\":{kind},\"threads\":{threads},\"map_calls\":{map_calls},\"items\":{items},\"peak_worker_share_milli\":{peak_worker_share_milli}}}"
            ),
            TraceEvent::Calibration {
                queries,
                initial_cost,
                fit_cost,
                iterations,
            } => format!(
                "{{\"type\":{kind},\"queries\":{queries},\"initial_cost\":{},\"fit_cost\":{},\"iterations\":{iterations}}}",
                json_f64(*initial_cost),
                json_f64(*fit_cost),
            ),
            TraceEvent::Rollback {
                epoch,
                iteration,
                loss,
                threshold,
                new_lr,
            } => format!(
                "{{\"type\":{kind},\"epoch\":{epoch},\"iteration\":{iteration},\"loss\":{},\"threshold\":{},\"new_lr\":{}}}",
                json_f64(*loss),
                json_f64(*threshold),
                json_f64(*new_lr),
            ),
            TraceEvent::Recalibration {
                epoch,
                fidelity_before,
                fidelity_after,
                queries,
                adopted,
            } => format!(
                "{{\"type\":{kind},\"epoch\":{epoch},\"fidelity_before\":{},\"fidelity_after\":{},\"queries\":{queries},\"adopted\":{adopted}}}",
                json_f64(*fidelity_before),
                json_f64(*fidelity_after),
            ),
            TraceEvent::FaultStats {
                step,
                dropped,
                spiked,
                bursts,
            } => format!(
                "{{\"type\":{kind},\"step\":{step},\"dropped\":{dropped},\"spiked\":{spiked},\"bursts\":{bursts}}}"
            ),
            TraceEvent::JournalFlush {
                epoch,
                records,
                bytes,
            } => format!(
                "{{\"type\":{kind},\"epoch\":{epoch},\"records\":{records},\"bytes\":{bytes}}}"
            ),
            TraceEvent::Resume {
                epoch,
                records_replayed,
                truncated_bytes,
            } => format!(
                "{{\"type\":{kind},\"epoch\":{epoch},\"records_replayed\":{records_replayed},\"truncated_bytes\":{truncated_bytes}}}"
            ),
            TraceEvent::RunEnd {
                method,
                training_queries,
                eval_queries,
                run_queries,
                chip_query_count,
                wall_secs,
            } => format!(
                "{{\"type\":{kind},\"method\":{},\"training_queries\":{training_queries},\"eval_queries\":{eval_queries},\"run_queries\":{run_queries},\"chip_query_count\":{chip_query_count},\"wall_secs\":{}}}",
                json_str(method),
                json_f64(*wall_secs),
            ),
            TraceEvent::ChipHealth {
                worker,
                from,
                to,
                reason,
            } => format!(
                "{{\"type\":{kind},\"worker\":{},\"from\":{},\"to\":{},\"reason\":{}}}",
                json_str(worker),
                json_str(from),
                json_str(to),
                json_str(reason),
            ),
            TraceEvent::JobState {
                job,
                tenant,
                state,
                worker,
                detail,
            } => format!(
                "{{\"type\":{kind},\"job\":{},\"tenant\":{},\"state\":{},\"worker\":{},\"detail\":{}}}",
                json_str(job),
                json_str(tenant),
                json_str(state),
                json_str(worker),
                json_str(detail),
            ),
            TraceEvent::TenantLedger {
                tenant,
                queries,
                jobs_completed,
                jobs_rejected,
            } => format!(
                "{{\"type\":{kind},\"tenant\":{},\"queries\":{queries},\"jobs_completed\":{jobs_completed},\"jobs_rejected\":{jobs_rejected}}}",
                json_str(tenant),
            ),
            TraceEvent::CanaryVerdict {
                cycle,
                samples,
                baseline_loss,
                shadow_loss,
                p_value,
                promote,
            } => format!(
                "{{\"type\":{kind},\"cycle\":{cycle},\"samples\":{samples},\"baseline_loss\":{},\"shadow_loss\":{},\"p_value\":{},\"promote\":{promote}}}",
                json_f64(*baseline_loss),
                json_f64(*shadow_loss),
                json_f64(*p_value),
            ),
            TraceEvent::Promotion {
                cycle,
                step,
                shadow_epochs,
                shadow_loss,
            } => format!(
                "{{\"type\":{kind},\"cycle\":{cycle},\"step\":{step},\"shadow_epochs\":{shadow_epochs},\"shadow_loss\":{}}}",
                json_f64(*shadow_loss),
            ),
            TraceEvent::ShadowRollback {
                cycle,
                step,
                reason,
            } => format!(
                "{{\"type\":{kind},\"cycle\":{cycle},\"step\":{step},\"reason\":{}}}",
                json_str(reason),
            ),
            TraceEvent::ServingStats {
                tenant,
                arrivals,
                completed,
                shed,
                p50_ns,
                p99_ns,
                p999_ns,
                throughput_rps,
                peak_queue_depth,
                mean_batch,
            } => format!(
                "{{\"type\":{kind},\"tenant\":{},\"arrivals\":{arrivals},\"completed\":{completed},\"shed\":{shed},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"throughput_rps\":{},\"peak_queue_depth\":{peak_queue_depth},\"mean_batch\":{}}}",
                json_str(tenant),
                json_f64(*p50_ns),
                json_f64(*p99_ns),
                json_f64(*p999_ns),
                json_f64(*throughput_rps),
                json_f64(*mean_batch),
            ),
        }
    }
}

/// Receives trace events. Implementations must tolerate concurrent calls.
pub trait TraceSink: Send + Sync {
    /// Records one event. Must not panic; I/O errors are swallowed.
    fn record(&self, event: &TraceEvent);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards everything (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// Appends one JSON object per event to a file (JSON Lines).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory or file creation.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let line = event.to_json();
        if let Ok(mut w) = self.writer.lock() {
            // Telemetry must never take training down: I/O errors are
            // dropped on the floor.
            let _ = writeln!(w, "{line}");
        }
    }

    fn flush(&self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

/// Keeps the most recent `capacity` events in memory (a ring buffer).
/// Intended for tests and for rendering an end-of-run summary.
#[derive(Debug)]
pub struct MemorySink {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl MemorySink {
    /// A ring holding up to `capacity` events (0 is treated as unbounded).
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            events: Mutex::new(VecDeque::new()),
            capacity,
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .map(|e| e.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().map(|e| e.len()).unwrap_or(0)
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        MemorySink::new(0)
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        if let Ok(mut e) = self.events.lock() {
            if self.capacity > 0 && e.len() == self.capacity {
                e.pop_front();
            }
            e.push_back(event.clone());
        }
    }
}

/// Fans one event stream out to several sinks (e.g. JSONL file + memory
/// ring for the end-of-run summary).
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Records every event to each of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: &TraceEvent) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

impl fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// A cheap, cloneable handle producers thread through configs. The default
/// (null) handle drops every event without constructing it.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
}

impl TraceHandle {
    /// The null handle: events are discarded, `emit` closures never run.
    pub fn null() -> Self {
        TraceHandle { sink: None }
    }

    /// Wraps an existing sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Convenience: a handle writing JSON lines to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from [`JsonlSink::create`].
    pub fn jsonl<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(Self::new(Arc::new(JsonlSink::create(path)?)))
    }

    /// Convenience: an in-memory handle plus the sink to read it back.
    pub fn memory(capacity: usize) -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new(capacity));
        (Self::new(sink.clone() as Arc<dyn TraceSink>), sink)
    }

    /// Convenience: a handle fanning out to several sinks.
    pub fn tee(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self::new(Arc::new(TeeSink::new(sinks)))
    }

    /// `true` when a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event produced by `make` — which runs only when a sink is
    /// attached, so null-handle call sites pay one branch and allocate
    /// nothing.
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, make: F) {
        if let Some(sink) = &self.sink {
            sink.record(&make());
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

/// `Debug` for the handle shows only enablement — sinks are opaque.
impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Handles compare by sink identity: two nulls are equal; otherwise equal
/// only when they share the same `Arc`. This keeps `PartialEq` derivable
/// on configs that embed a handle.
impl PartialEq for TraceHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.sink, &other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_never_runs_closure() {
        let h = TraceHandle::null();
        assert!(!h.is_enabled());
        let mut ran = false;
        h.emit(|| {
            ran = true;
            TraceEvent::CacheStats {
                hits: 0,
                misses: 0,
                invalidations: 0,
                incremental: 0,
                forced_recompiles: 0,
            }
        });
        assert!(!ran, "null handle must not construct events");
    }

    #[test]
    fn memory_sink_retains_events_in_order() {
        let (h, mem) = TraceHandle::memory(0);
        assert!(h.is_enabled());
        for i in 0..3 {
            h.emit(|| TraceEvent::QueryLedger {
                epoch: i,
                category: QueryCategory::Probe,
                queries: 10 * i,
            });
        }
        let events = mem.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[2],
            TraceEvent::QueryLedger {
                epoch: 2,
                category: QueryCategory::Probe,
                queries: 20
            }
        );
    }

    #[test]
    fn memory_ring_caps_capacity() {
        let (h, mem) = TraceHandle::memory(2);
        for i in 0..5u64 {
            h.emit(|| TraceEvent::FaultStats {
                step: i,
                dropped: 0,
                spiked: 0,
                bursts: 0,
            });
        }
        let events = mem.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TraceEvent::FaultStats { step: 3, .. }));
    }

    #[test]
    fn ledger_counts_sum_and_absorb() {
        let mut a = LedgerCounts::new();
        a.add(QueryCategory::Probe, 100);
        a.add(QueryCategory::Eval, 7);
        let mut b = LedgerCounts::new();
        b.add(QueryCategory::Probe, 1);
        b.absorb(&a);
        assert_eq!(b.get(QueryCategory::Probe), 101);
        assert_eq!(b.total(), 108);
        let listed: u64 = b.iter().map(|(_, q)| q).sum();
        assert_eq!(listed, b.total());
    }

    #[test]
    fn json_escapes_and_non_finite() {
        let e = TraceEvent::RunStart {
            method: "a\"b\\c\n".into(),
            epochs: 1,
            batch_size: 2,
            probes: 3,
            kernel: "avx2-fma".into(),
        };
        let s = e.to_json();
        assert!(s.contains("a\\\"b\\\\c\\n"));
        assert!(s.contains("\"kernel\":\"avx2-fma\""));
        let e = TraceEvent::Rollback {
            epoch: 1,
            iteration: 2,
            loss: f64::NAN,
            threshold: f64::INFINITY,
            new_lr: 0.5,
        };
        let s = e.to_json();
        assert!(s.contains("\"loss\":null"));
        assert!(s.contains("\"threshold\":null"));
        assert!(s.contains("\"new_lr\":0.5"));
    }

    #[test]
    fn durable_run_events_serialize() {
        let e = TraceEvent::JournalFlush {
            epoch: 3,
            records: 4,
            bytes: 512,
        };
        assert_eq!(e.kind(), "journal_flush");
        let s = e.to_json();
        assert!(s.contains("\"type\":\"journal_flush\""));
        assert!(s.contains("\"epoch\":3"));
        assert!(s.contains("\"bytes\":512"));
        let e = TraceEvent::Resume {
            epoch: 3,
            records_replayed: 3,
            truncated_bytes: 0,
        };
        assert_eq!(e.kind(), "resume");
        let s = e.to_json();
        assert!(s.contains("\"type\":\"resume\""));
        assert!(s.contains("\"records_replayed\":3"));
        assert!(s.contains("\"truncated_bytes\":0"));
    }

    #[test]
    fn serving_stats_serializes() {
        let e = TraceEvent::ServingStats {
            tenant: "alice".into(),
            arrivals: 1000,
            completed: 990,
            shed: 10,
            p50_ns: 12_000.0,
            p99_ns: 95_000.5,
            p999_ns: f64::NAN,
            throughput_rps: 125_000.0,
            peak_queue_depth: 42,
            mean_batch: 7.75,
        };
        assert_eq!(e.kind(), "serving_stats");
        let s = e.to_json();
        assert!(s.contains("\"type\":\"serving_stats\""));
        assert!(s.contains("\"tenant\":\"alice\""));
        assert!(s.contains("\"arrivals\":1000"));
        assert!(s.contains("\"completed\":990"));
        assert!(s.contains("\"shed\":10"));
        assert!(s.contains("\"p50_ns\":12000"));
        assert!(s.contains("\"p99_ns\":95000.5"));
        // NaN tail (no samples) must serialize as null, not poison the line.
        assert!(s.contains("\"p999_ns\":null"));
        assert!(s.contains("\"peak_queue_depth\":42"));
        assert!(s.contains("\"mean_batch\":7.75"));
    }

    #[test]
    fn online_recal_events_serialize() {
        let e = TraceEvent::CanaryVerdict {
            cycle: 2,
            samples: 8,
            baseline_loss: 0.75,
            shadow_loss: 0.25,
            p_value: 0.0125,
            promote: true,
        };
        assert_eq!(e.kind(), "canary_verdict");
        let s = e.to_json();
        assert!(s.contains("\"type\":\"canary_verdict\""));
        assert!(s.contains("\"cycle\":2"));
        assert!(s.contains("\"samples\":8"));
        assert!(s.contains("\"baseline_loss\":0.75"));
        assert!(s.contains("\"shadow_loss\":0.25"));
        assert!(s.contains("\"p_value\":0.0125"));
        assert!(s.contains("\"promote\":true"));

        let e = TraceEvent::Promotion {
            cycle: 2,
            step: 640,
            shadow_epochs: 3,
            shadow_loss: 0.25,
        };
        assert_eq!(e.kind(), "promotion");
        let s = e.to_json();
        assert!(s.contains("\"type\":\"promotion\""));
        assert!(s.contains("\"step\":640"));
        assert!(s.contains("\"shadow_epochs\":3"));

        let e = TraceEvent::ShadowRollback {
            cycle: 3,
            step: 960,
            reason: "canary_not_better".into(),
        };
        assert_eq!(e.kind(), "shadow_rollback");
        let s = e.to_json();
        assert!(s.contains("\"type\":\"shadow_rollback\""));
        assert!(s.contains("\"reason\":\"canary_not_better\""));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("photon_trace_test");
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&TraceEvent::CacheStats {
            hits: 5,
            misses: 1,
            invalidations: 0,
            incremental: 3,
            forced_recompiles: 0,
        });
        sink.record(&TraceEvent::QueryLedger {
            epoch: 1,
            category: QueryCategory::Eval,
            queries: 42,
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(lines[1].contains("\"category\":\"eval\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tee_fans_out() {
        let m1 = Arc::new(MemorySink::new(0));
        let m2 = Arc::new(MemorySink::new(0));
        let h = TraceHandle::tee(vec![
            m1.clone() as Arc<dyn TraceSink>,
            m2.clone() as Arc<dyn TraceSink>,
        ]);
        h.emit(|| TraceEvent::PoolStats {
            threads: 4,
            map_calls: 1,
            items: 8,
            peak_worker_share_milli: 250,
        });
        assert_eq!(m1.len(), 1);
        assert_eq!(m2.len(), 1);
    }

    #[test]
    fn handle_equality_is_sink_identity() {
        let (a, _) = TraceHandle::memory(0);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(TraceHandle::null(), TraceHandle::null());
        assert_ne!(a, TraceHandle::null());
        let (c, _) = TraceHandle::memory(0);
        assert_ne!(a, c);
    }
}
