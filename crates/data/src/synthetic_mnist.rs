//! Synthetic MNIST substitute: seven-segment digit renderer with geometric
//! jitter and pixel noise.
//!
//! The real MNIST files are not available offline; this generator produces
//! 28×28 grayscale digit images with the same tensor shape, ten classes and
//! non-trivial intra-class variation, so the whole DFT-feature → ONN →
//! power-readout classification path is exercised identically. Absolute
//! accuracies differ from the paper; relative method ordering is preserved.

use rand::Rng;

use photon_linalg::random::standard_normal;

use crate::image::Image;

/// Configuration of the synthetic digit generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticMnist {
    /// Image side length (MNIST uses 28).
    pub side: usize,
    /// Std-dev of the random translation applied to each digit, in pixels.
    pub jitter: f64,
    /// Std-dev of additive Gaussian pixel noise.
    pub noise: f64,
    /// Random scale range around the nominal digit size (e.g. 0.15 → ±15%).
    pub scale_jitter: f64,
}

impl SyntheticMnist {
    /// MNIST-shaped defaults: 28×28, sub-pixel-ish jitter, mild noise.
    ///
    /// Real MNIST digits are size-normalized and centered; translation
    /// jitter corrupts the *phases* of the flattened-image DFT features far
    /// more than it does pixel-space classifiers, so the default jitter is
    /// kept small to land the task difficulty in the paper's band.
    pub fn new() -> Self {
        SyntheticMnist {
            side: 28,
            jitter: 0.6,
            noise: 0.05,
            scale_jitter: 0.12,
        }
    }

    /// Renders one digit image of class `digit` (0-9).
    ///
    /// # Panics
    ///
    /// Panics when `digit >= 10`.
    pub fn render<R: Rng + ?Sized>(&self, digit: usize, rng: &mut R) -> Image {
        assert!(digit < 10, "digit class must be 0-9, got {digit}");
        let mut img = Image::new(self.side, self.side);
        let s = self.side as f64;

        // Digit bounding box with jitter.
        let scale = 1.0 + self.scale_jitter * (2.0 * rng.gen::<f64>() - 1.0);
        let w = 0.42 * s * scale; // half-ish width of the segment frame
        let h = 0.62 * s * scale;
        let cx = s / 2.0 + self.jitter * standard_normal(rng);
        let cy = s / 2.0 + self.jitter * standard_normal(rng);
        let x0 = cx - w / 2.0;
        let x1 = cx + w / 2.0;
        let y0 = cy - h / 2.0;
        let ym = cy;
        let y1 = cy + h / 2.0;

        let thickness = 2.2 + 0.8 * rng.gen::<f64>();
        let intensity = 0.75 + 0.25 * rng.gen::<f64>();

        // Seven segments: A top, B upper-right, C lower-right, D bottom,
        // E lower-left, F upper-left, G middle.
        let segs: [((f64, f64), (f64, f64)); 7] = [
            ((x0, y0), (x1, y0)), // A
            ((x1, y0), (x1, ym)), // B
            ((x1, ym), (x1, y1)), // C
            ((x0, y1), (x1, y1)), // D
            ((x0, ym), (x0, y1)), // E
            ((x0, y0), (x0, ym)), // F
            ((x0, ym), (x1, ym)), // G
        ];
        const SEGMENTS: [[bool; 7]; 10] = [
            [true, true, true, true, true, true, false],     // 0
            [false, true, true, false, false, false, false], // 1
            [true, true, false, true, true, false, true],    // 2
            [true, true, true, true, false, false, true],    // 3
            [false, true, true, false, false, true, true],   // 4
            [true, false, true, true, false, true, true],    // 5
            [true, false, true, true, true, true, true],     // 6
            [true, true, true, false, false, false, false],  // 7
            [true, true, true, true, true, true, true],      // 8
            [true, true, true, true, false, true, true],     // 9
        ];
        for (seg, &on) in segs.iter().zip(&SEGMENTS[digit]) {
            if on {
                img.draw_line(seg.0, seg.1, thickness, intensity);
            }
        }
        img.add_noise(self.noise, rng);
        img
    }

    /// Generates `n` labeled images with uniformly drawn classes.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<(Image, usize)> {
        (0..n)
            .map(|_| {
                let digit = rng.gen_range(0..10);
                (self.render(digit, rng), digit)
            })
            .collect()
    }

    /// Generates a class-balanced set of `per_class * 10` labeled images.
    pub fn generate_balanced<R: Rng + ?Sized>(
        &self,
        per_class: usize,
        rng: &mut R,
    ) -> Vec<(Image, usize)> {
        let mut out = Vec::with_capacity(per_class * 10);
        for digit in 0..10 {
            for _ in 0..per_class {
                out.push((self.render(digit, rng), digit));
            }
        }
        out
    }
}

impl Default for SyntheticMnist {
    fn default() -> Self {
        SyntheticMnist::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn renders_all_classes() {
        let gen = SyntheticMnist::new();
        let mut rng = StdRng::seed_from_u64(1);
        for d in 0..10 {
            let img = gen.render(d, &mut rng);
            assert_eq!(img.width(), 28);
            assert_eq!(img.height(), 28);
            assert!(img.mean_intensity() > 0.02, "digit {d} looks empty");
        }
    }

    #[test]
    #[should_panic(expected = "0-9")]
    fn rejects_class_10() {
        let gen = SyntheticMnist::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = gen.render(10, &mut rng);
    }

    #[test]
    fn eight_has_more_ink_than_one() {
        let gen = SyntheticMnist {
            noise: 0.0,
            ..SyntheticMnist::new()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let one = gen.render(1, &mut rng).mean_intensity();
        let eight = gen.render(8, &mut rng).mean_intensity();
        assert!(eight > 2.0 * one, "8 ({eight}) should outweigh 1 ({one})");
    }

    #[test]
    fn intra_class_variation_exists() {
        let gen = SyntheticMnist::new();
        let mut rng = StdRng::seed_from_u64(3);
        let a = gen.render(5, &mut rng);
        let b = gen.render(5, &mut rng);
        let diff: f64 = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1.0, "two draws of the same class should differ");
    }

    #[test]
    fn balanced_generation() {
        let gen = SyntheticMnist::new();
        let mut rng = StdRng::seed_from_u64(4);
        let data = gen.generate_balanced(3, &mut rng);
        assert_eq!(data.len(), 30);
        for d in 0..10 {
            assert_eq!(data.iter().filter(|(_, l)| *l == d).count(), 3);
        }
    }

    #[test]
    fn generation_is_seeded() {
        let gen = SyntheticMnist::new();
        let a = gen.generate(5, &mut StdRng::seed_from_u64(9));
        let b = gen.generate(5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
