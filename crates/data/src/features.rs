//! DFT feature extraction: the optical front-end of the classification
//! pipeline.
//!
//! Following the research line's protocol, a 28×28 image is flattened to a
//! 784-sample real signal, transformed with a 784-point DFT, and the bins
//! from the *second* lowest up to the `K+1` lowest (discarding the 0 Hz bin)
//! form the `K`-dimensional complex input vector of the ONN. Each feature
//! vector is normalized to unit optical power.

use photon_linalg::CVector;

use crate::dataset::{DataError, Dataset};
use crate::fft::dft;
use crate::image::Image;

/// Extracts the `K` complex DFT features of an image (bins `1..=K`,
/// discarding DC), normalized to unit power.
///
/// # Panics
///
/// Panics when `k` is zero or not smaller than the pixel count.
///
/// # Examples
///
/// ```
/// use photon_data::{dft_features, Image};
///
/// let mut img = Image::new(28, 28);
/// img.draw_rect((10.0, 10.0), (18.0, 18.0), None, 1.0);
/// let x = dft_features(&img, 16);
/// assert_eq!(x.len(), 16);
/// assert!((x.norm_sqr() - 1.0).abs() < 1e-10);
/// ```
pub fn dft_features(image: &Image, k: usize) -> CVector {
    let n = image.pixels().len();
    assert!(k >= 1, "need at least one feature bin");
    assert!(k < n, "k must be smaller than the pixel count {n}");
    let signal = CVector::from_real_slice(image.pixels());
    let spectrum = dft(&signal);
    let raw = spectrum.subvector(1, k);
    // Unit-power normalization; all-black images map to the zero vector.
    match raw.normalized() {
        Ok(v) => v,
        Err(_) => raw,
    }
}

/// Converts labeled images to a feature [`Dataset`] with `k` DFT bins.
///
/// # Errors
///
/// Propagates [`DataError`] from dataset validation (e.g. an empty input
/// list).
pub fn images_to_dataset(
    images: &[(Image, usize)],
    k: usize,
    num_classes: usize,
) -> Result<Dataset, DataError> {
    let inputs = images.iter().map(|(img, _)| dft_features(img, k)).collect();
    let labels = images.iter().map(|(_, l)| *l).collect();
    Dataset::new(inputs, labels, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic_mnist::SyntheticMnist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feature_shape_and_norm() {
        let gen = SyntheticMnist::new();
        let mut rng = StdRng::seed_from_u64(1);
        let img = gen.render(3, &mut rng);
        for k in [4usize, 16, 64] {
            let x = dft_features(&img, k);
            assert_eq!(x.len(), k);
            assert!((x.norm_sqr() - 1.0).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn dc_bin_is_discarded() {
        // A uniform image has all its energy in DC; its AC features vanish
        // before normalization.
        let mut img = Image::new(8, 8);
        img.draw_rect((0.0, 0.0), (7.0, 7.0), None, 1.0);
        let signal = CVector::from_real_slice(img.pixels());
        let spectrum = dft(&signal);
        let ac = spectrum.subvector(1, 16);
        assert!(ac.max_abs() < 1e-8);
        // dft_features then returns the (un-normalizable) zero vector.
        let x = dft_features(&img, 16);
        assert!(x.max_abs() < 1e-8);
    }

    #[test]
    fn different_classes_have_different_features() {
        let gen = SyntheticMnist {
            noise: 0.0,
            ..SyntheticMnist::new()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let a = dft_features(&gen.render(0, &mut rng), 16);
        let b = dft_features(&gen.render(1, &mut rng), 16);
        assert!((&a - &b).max_abs() > 0.05);
    }

    #[test]
    fn images_to_dataset_roundtrip() {
        let gen = SyntheticMnist::new();
        let mut rng = StdRng::seed_from_u64(3);
        let images = gen.generate_balanced(2, &mut rng);
        let ds = images_to_dataset(&images, 8, 10).unwrap();
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.input_dim(), 8);
        assert_eq!(ds.num_classes(), 10);
        assert!(images_to_dataset(&[], 8, 10).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn zero_k_panics() {
        let img = Image::new(4, 4);
        let _ = dft_features(&img, 0);
    }
}
