//! Synthetic FashionMNIST substitute: ten texture/shape classes with
//! geometric jitter and pixel noise.
//!
//! FashionMNIST is harder than MNIST because classes share coarse structure;
//! this generator mirrors that by making several classes near neighbours
//! (stripes at different orientations, filled vs hollow shapes), so the
//! accuracy gap between the two tasks has the same sign as in the paper.

use rand::Rng;

use photon_linalg::random::standard_normal;

use crate::image::Image;

/// Configuration of the synthetic fashion-texture generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticFashion {
    /// Image side length (28, like FashionMNIST).
    pub side: usize,
    /// Std-dev of the random translation, in pixels.
    pub jitter: f64,
    /// Std-dev of additive Gaussian pixel noise.
    pub noise: f64,
}

impl SyntheticFashion {
    /// FashionMNIST-shaped defaults.
    pub fn new() -> Self {
        SyntheticFashion {
            side: 28,
            jitter: 1.2,
            noise: 0.12,
        }
    }

    /// Renders one image of class `label` (0-9).
    ///
    /// Classes: 0 horizontal stripes, 1 vertical stripes, 2 diagonal
    /// stripes, 3 checkerboard, 4 filled disc, 5 ring, 6 filled square,
    /// 7 hollow square, 8 triangle, 9 cross.
    ///
    /// # Panics
    ///
    /// Panics when `label >= 10`.
    pub fn render<R: Rng + ?Sized>(&self, label: usize, rng: &mut R) -> Image {
        assert!(label < 10, "fashion class must be 0-9, got {label}");
        let mut img = Image::new(self.side, self.side);
        let s = self.side as f64;
        let cx = s / 2.0 + self.jitter * standard_normal(rng);
        let cy = s / 2.0 + self.jitter * standard_normal(rng);
        let intensity = 0.7 + 0.3 * rng.gen::<f64>();
        let phase = rng.gen::<f64>() * s / 4.0;

        match label {
            0..=2 => {
                // Stripes: horizontal / vertical / diagonal, period 4-6 px.
                let period = 4.0 + 2.0 * rng.gen::<f64>();
                for y in 0..self.side {
                    for x in 0..self.side {
                        let coord = match label {
                            0 => y as f64,
                            1 => x as f64,
                            _ => (x as f64 + y as f64) / std::f64::consts::SQRT_2,
                        };
                        let v = ((coord + phase) / period * std::f64::consts::TAU).sin();
                        if v > 0.2 {
                            img.set(x as i64, y as i64, intensity);
                        }
                    }
                }
            }
            3 => {
                let cell = 3.0 + 2.0 * rng.gen::<f64>();
                for y in 0..self.side {
                    for x in 0..self.side {
                        let qx = ((x as f64 + phase) / cell).floor() as i64;
                        let qy = ((y as f64 + phase) / cell).floor() as i64;
                        if (qx + qy) % 2 == 0 {
                            img.set(x as i64, y as i64, intensity);
                        }
                    }
                }
            }
            4 => {
                let r = 6.5 + 2.0 * rng.gen::<f64>();
                img.draw_circle((cx, cy), r, None, intensity);
            }
            5 => {
                let r = 7.0 + 2.0 * rng.gen::<f64>();
                img.draw_circle((cx, cy), r, Some(2.5), intensity);
            }
            6 => {
                let half = 6.0 + 2.0 * rng.gen::<f64>();
                img.draw_rect(
                    (cx - half, cy - half),
                    (cx + half, cy + half),
                    None,
                    intensity,
                );
            }
            7 => {
                let half = 7.0 + 2.0 * rng.gen::<f64>();
                img.draw_rect(
                    (cx - half, cy - half),
                    (cx + half, cy + half),
                    Some(2.0),
                    intensity,
                );
            }
            8 => {
                let half = 7.5 + 2.0 * rng.gen::<f64>();
                let top = (cx, cy - half);
                let left = (cx - half, cy + half * 0.8);
                let right = (cx + half, cy + half * 0.8);
                img.draw_line(top, left, 2.0, intensity);
                img.draw_line(top, right, 2.0, intensity);
                img.draw_line(left, right, 2.0, intensity);
            }
            _ => {
                let arm = 8.0 + 2.0 * rng.gen::<f64>();
                img.draw_line((cx - arm, cy), (cx + arm, cy), 2.5, intensity);
                img.draw_line((cx, cy - arm), (cx, cy + arm), 2.5, intensity);
            }
        }
        img.add_noise(self.noise, rng);
        img
    }

    /// Generates `n` labeled images with uniformly drawn classes.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<(Image, usize)> {
        (0..n)
            .map(|_| {
                let label = rng.gen_range(0..10);
                (self.render(label, rng), label)
            })
            .collect()
    }

    /// Generates a class-balanced set of `per_class * 10` labeled images.
    pub fn generate_balanced<R: Rng + ?Sized>(
        &self,
        per_class: usize,
        rng: &mut R,
    ) -> Vec<(Image, usize)> {
        let mut out = Vec::with_capacity(per_class * 10);
        for label in 0..10 {
            for _ in 0..per_class {
                out.push((self.render(label, rng), label));
            }
        }
        out
    }
}

impl Default for SyntheticFashion {
    fn default() -> Self {
        SyntheticFashion::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn renders_all_classes_nonempty() {
        let gen = SyntheticFashion::new();
        let mut rng = StdRng::seed_from_u64(1);
        for c in 0..10 {
            let img = gen.render(c, &mut rng);
            assert!(img.mean_intensity() > 0.02, "class {c} looks empty");
        }
    }

    #[test]
    #[should_panic(expected = "0-9")]
    fn rejects_class_10() {
        let gen = SyntheticFashion::new();
        let _ = gen.render(10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn stripes_have_orientation() {
        let gen = SyntheticFashion {
            noise: 0.0,
            jitter: 0.0,
            ..SyntheticFashion::new()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let horiz = gen.render(0, &mut rng);
        // Horizontal stripes: whole rows share a value.
        let mut row_uniform = 0;
        for y in 0..28 {
            let first = horiz.get(0, y);
            if (0..28).all(|x| (horiz.get(x, y) - first).abs() < 1e-9) {
                row_uniform += 1;
            }
        }
        assert!(
            row_uniform > 20,
            "rows should be uniform, got {row_uniform}"
        );
    }

    #[test]
    fn disc_and_ring_differ_at_center() {
        let gen = SyntheticFashion {
            noise: 0.0,
            jitter: 0.0,
            ..SyntheticFashion::new()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let disc = gen.render(4, &mut rng);
        let ring = gen.render(5, &mut rng);
        assert!(disc.get(14, 14) > 0.0);
        assert_eq!(ring.get(14, 14), 0.0);
    }

    #[test]
    fn balanced_and_seeded() {
        let gen = SyntheticFashion::new();
        let data = gen.generate_balanced(2, &mut StdRng::seed_from_u64(4));
        assert_eq!(data.len(), 20);
        let a = gen.generate(4, &mut StdRng::seed_from_u64(5));
        let b = gen.generate(4, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
