//! Discrete Fourier transforms: radix-2 Cooley-Tukey plus Bluestein's
//! algorithm for arbitrary lengths.
//!
//! The feature extractor needs a 784-point DFT (28×28 images); 784 is not a
//! power of two, so the crate implements Bluestein's chirp-z reduction to a
//! zero-padded power-of-two convolution.

use photon_linalg::{CVector, C64};

/// Returns `true` if `n` is a power of two (and nonzero).
fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// `inverse` selects the sign convention; the inverse transform includes the
/// `1/n` normalization.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft_pow2(data: &mut [C64], inverse: bool) {
    let n = data.len();
    assert!(
        is_pow2(n),
        "fft_pow2 requires a power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = C64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = C64::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
    }
}

/// Forward DFT of arbitrary length:
/// `X_k = Σ_n x_n · e^{−j·2πkn/N}`.
///
/// Power-of-two lengths use radix-2 directly; other lengths use Bluestein's
/// algorithm (O(N log N)).
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CVector};
/// use photon_data::dft;
///
/// // DFT of a constant signal concentrates everything in bin 0.
/// let x = CVector::from_real_slice(&[1.0; 6]);
/// let spectrum = dft(&x);
/// assert!((spectrum[0] - C64::from_real(6.0)).abs() < 1e-10);
/// assert!(spectrum[1].abs() < 1e-10);
/// ```
pub fn dft(x: &CVector) -> CVector {
    let n = x.len();
    if n == 0 {
        return CVector::zeros(0);
    }
    if is_pow2(n) {
        let mut buf = x.as_slice().to_vec();
        fft_pow2(&mut buf, false);
        return CVector::from_vec(buf);
    }
    bluestein(x, false)
}

/// Inverse DFT of arbitrary length (includes the `1/N` normalization).
pub fn idft(x: &CVector) -> CVector {
    let n = x.len();
    if n == 0 {
        return CVector::zeros(0);
    }
    if is_pow2(n) {
        let mut buf = x.as_slice().to_vec();
        fft_pow2(&mut buf, true);
        return CVector::from_vec(buf);
    }
    let y = bluestein(x, true);
    y.scale_real(1.0 / n as f64)
}

/// Bluestein chirp-z: re-expresses an arbitrary-length DFT as a circular
/// convolution of length `m = 2^⌈log₂(2N−1)⌉`.
fn bluestein(x: &CVector, inverse: bool) -> CVector {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp factors w_k = e^{sign·jπk²/N}; k² mod 2N keeps the angle exact.
    let chirp: Vec<C64> = (0..n)
        .map(|k| {
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            C64::cis(sign * std::f64::consts::PI * kk as f64 / n as f64)
        })
        .collect();

    let mut m = 1usize;
    while m < 2 * n - 1 {
        m <<= 1;
    }
    let mut a = vec![C64::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
    }
    let mut b = vec![C64::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for k in 0..m {
        a[k] *= b[k];
    }
    fft_pow2(&mut a, true);
    CVector::from_fn(n, |k| a[k] * chirp[k])
}

/// Reference O(N²) DFT used for validation.
pub fn dft_naive(x: &CVector) -> CVector {
    let n = x.len();
    CVector::from_fn(n, |k| {
        let mut acc = C64::ZERO;
        for (i, &xi) in x.iter().enumerate() {
            let ang = -std::f64::consts::TAU * (k as f64) * (i as f64) / n as f64;
            acc += xi * C64::cis(ang);
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::random::normal_cvector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pow2_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = normal_cvector(n, &mut rng);
            let fast = dft(&x);
            let slow = dft_naive(&x);
            assert!((&fast - &slow).max_abs() < 1e-8, "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [3usize, 5, 6, 7, 12, 28, 100, 784] {
            let x = normal_cvector(n, &mut rng);
            let fast = dft(&x);
            let slow = dft_naive(&x);
            assert!((&fast - &slow).max_abs() < 1e-6, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [8usize, 28, 784] {
            let x = normal_cvector(n, &mut rng);
            let back = idft(&dft(&x));
            assert!((&back - &x).max_abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = normal_cvector(100, &mut rng);
        let spec = dft(&x);
        assert!((spec.norm_sqr() / 100.0 - x.norm_sqr()).abs() < 1e-8);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let x = CVector::basis(13, 0);
        let spec = dft(&x);
        for k in 0..13 {
            assert!((spec[k] - C64::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 32;
        let x = CVector::from_fn(n, |i| {
            C64::cis(std::f64::consts::TAU * 3.0 * i as f64 / n as f64)
        });
        let spec = dft(&x);
        assert!((spec[3] - C64::from_real(n as f64)).abs() < 1e-8);
        for k in 0..n {
            if k != 3 {
                assert!(spec[k].abs() < 1e-8, "leakage in bin {k}");
            }
        }
    }

    #[test]
    fn empty_and_unit_lengths() {
        assert_eq!(dft(&CVector::zeros(0)).len(), 0);
        let one = CVector::from_real_slice(&[5.0]);
        assert!((dft(&one)[0] - C64::from_real(5.0)).abs() < 1e-12);
        assert!((idft(&one)[0] - C64::from_real(5.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fft_pow2_rejects_odd_length() {
        let mut buf = vec![C64::ZERO; 6];
        fft_pow2(&mut buf, false);
    }
}
