//! Labeled complex-feature datasets and mini-batch iteration.

use rand::seq::SliceRandom;
use rand::Rng;

use photon_linalg::CVector;

/// A labeled dataset of complex feature vectors — the ONN's input currency.
///
/// # Examples
///
/// ```
/// use photon_linalg::CVector;
/// use photon_data::Dataset;
///
/// let ds = Dataset::new(
///     vec![CVector::basis(4, 0), CVector::basis(4, 1)],
///     vec![0, 1],
///     2,
/// )?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.input_dim(), 4);
/// # Ok::<(), photon_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Vec<CVector>,
    labels: Vec<usize>,
    num_classes: usize,
}

/// Errors raised while assembling datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// Inputs and labels have different lengths.
    LengthMismatch {
        /// Number of input vectors.
        inputs: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label is `>= num_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Declared class count.
        num_classes: usize,
    },
    /// Input vectors have inconsistent dimensions.
    InconsistentDims,
    /// The dataset is empty where a non-empty one is required.
    Empty,
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::LengthMismatch { inputs, labels } => {
                write!(f, "{inputs} inputs but {labels} labels")
            }
            DataError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DataError::InconsistentDims => write!(f, "input vectors have inconsistent dimensions"),
            DataError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for DataError {}

impl Dataset {
    /// Validates and wraps inputs and labels.
    ///
    /// # Errors
    ///
    /// See [`DataError`] variants.
    pub fn new(
        inputs: Vec<CVector>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DataError> {
        if inputs.len() != labels.len() {
            return Err(DataError::LengthMismatch {
                inputs: inputs.len(),
                labels: labels.len(),
            });
        }
        if inputs.is_empty() {
            return Err(DataError::Empty);
        }
        let dim = inputs[0].len();
        if inputs.iter().any(|x| x.len() != dim) {
            return Err(DataError::InconsistentDims);
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::LabelOutOfRange {
                label: bad,
                num_classes,
            });
        }
        Ok(Dataset {
            inputs,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` when the dataset has no samples (never constructible
    /// via [`Dataset::new`], but `split` edges can produce it).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Feature dimension.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Declared number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Input vectors in order.
    pub fn inputs(&self) -> &[CVector] {
        &self.inputs
    }

    /// Labels in order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The `(input, label)` pair at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn sample(&self, index: usize) -> (&CVector, usize) {
        (&self.inputs[index], self.labels[index])
    }

    /// Extracts the samples at `indices` as a new dataset.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            inputs: indices.iter().map(|&i| self.inputs[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Randomly splits into `(train, test)` with `train_fraction` of the
    /// samples in the first part.
    ///
    /// # Panics
    ///
    /// Panics when `train_fraction` is outside `[0, 1]`.
    pub fn split<R: Rng + ?Sized>(&self, train_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be in [0, 1]"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_train = (self.len() as f64 * train_fraction).round() as usize;
        let (train_idx, test_idx) = idx.split_at(n_train.min(self.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// Epoch-wise mini-batch index iterator with reshuffling.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_data::Batcher;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut batcher = Batcher::new(10, 4);
/// let batches: Vec<_> = batcher.epoch(&mut rng).collect();
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// let total: usize = batches.iter().map(Vec::len).sum();
/// assert_eq!(total, 10);
/// ```
#[derive(Debug, Clone)]
pub struct Batcher {
    n: usize,
    batch_size: usize,
}

impl Batcher {
    /// Creates a batcher over `n` samples with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0` or `n == 0`.
    pub fn new(n: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(n > 0, "cannot batch an empty dataset");
        Batcher { n, batch_size }
    }

    /// Shuffles sample indices and returns an iterator over one epoch of
    /// mini-batches (the final batch may be short).
    pub fn epoch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> impl Iterator<Item = Vec<usize>> {
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(rng);
        let bs = self.batch_size;
        (0..self.n.div_ceil(bs)).map(move |b| idx[b * bs..((b + 1) * bs).min(idx.len())].to_vec())
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.n.div_ceil(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize, dim: usize) -> Dataset {
        let inputs = (0..n).map(|i| CVector::basis(dim, i % dim)).collect();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(inputs, labels, 3).unwrap()
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Dataset::new(vec![CVector::zeros(2)], vec![], 1),
            Err(DataError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![], vec![], 1),
            Err(DataError::Empty)
        ));
        assert!(matches!(
            Dataset::new(vec![CVector::zeros(2), CVector::zeros(3)], vec![0, 0], 1),
            Err(DataError::InconsistentDims)
        ));
        assert!(matches!(
            Dataset::new(vec![CVector::zeros(2)], vec![5], 3),
            Err(DataError::LabelOutOfRange { label: 5, .. })
        ));
    }

    #[test]
    fn accessors() {
        let ds = toy(9, 4);
        assert_eq!(ds.len(), 9);
        assert_eq!(ds.input_dim(), 4);
        assert_eq!(ds.num_classes(), 3);
        let (x, l) = ds.sample(4);
        assert_eq!(l, 1);
        assert_eq!(x.len(), 4);
        assert_eq!(ds.class_counts(), vec![3, 3, 3]);
    }

    #[test]
    fn split_partitions() {
        let ds = toy(10, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = ds.split(0.7, &mut rng);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Degenerate splits.
        let (all, none) = ds.split(1.0, &mut rng);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn subset_picks_rows() {
        let ds = toy(6, 3);
        let sub = ds.subset(&[5, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[2, 0]);
    }

    #[test]
    fn batcher_covers_every_index_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut batcher = Batcher::new(13, 5);
        assert_eq!(batcher.batches_per_epoch(), 3);
        let mut seen = [false; 13];
        for batch in batcher.epoch(&mut rng) {
            for i in batch {
                assert!(!seen[i], "index {i} repeated");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batcher_shuffles_between_epochs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut batcher = Batcher::new(32, 8);
        let e1: Vec<Vec<usize>> = batcher.epoch(&mut rng).collect();
        let e2: Vec<Vec<usize>> = batcher.epoch(&mut rng).collect();
        assert_ne!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = Batcher::new(4, 0);
    }
}
