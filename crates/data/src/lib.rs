//! # photon-data
//!
//! Dataset substrate for the ONN experiments: synthetic stand-ins for MNIST
//! and FashionMNIST (the real files are unavailable offline — see DESIGN.md
//! for the substitution argument), a Gaussian-cluster toy task, an
//! arbitrary-length DFT ([`dft`], Bluestein + radix-2), and the DFT feature
//! extraction pipeline that turns 28×28 images into `K`-dimensional complex
//! ONN inputs.
//!
//! # Examples
//!
//! End-to-end feature pipeline:
//!
//! ```
//! use rand::SeedableRng;
//! use photon_data::{images_to_dataset, SyntheticMnist};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let images = SyntheticMnist::new().generate_balanced(5, &mut rng);
//! let ds = images_to_dataset(&images, 16, 10)?;
//! assert_eq!(ds.len(), 50);
//! assert_eq!(ds.input_dim(), 16);
//! # Ok::<(), photon_data::DataError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clusters;
mod dataset;
mod features;
mod fft;
mod image;
mod synthetic_fashion;
mod synthetic_mnist;

pub use clusters::GaussianClusters;
pub use dataset::{Batcher, DataError, Dataset};
pub use features::{dft_features, images_to_dataset};
pub use fft::{dft, dft_naive, fft_pow2, idft};
pub use image::Image;
pub use synthetic_fashion::SyntheticFashion;
pub use synthetic_mnist::SyntheticMnist;
