//! Grayscale images and simple rasterization primitives used by the
//! synthetic dataset generators.

use rand::Rng;

use photon_linalg::random::standard_normal;

/// A row-major grayscale image with pixel values in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use photon_data::Image;
///
/// let mut img = Image::new(28, 28);
/// img.set(3, 4, 1.0);
/// assert_eq!(img.get(3, 4), 1.0);
/// assert_eq!(img.pixels().len(), 784);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates an all-black image.
    pub fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel buffer.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Pixel value at `(x, y)`; out-of-bounds reads return 0.
    pub fn get(&self, x: i64, y: i64) -> f64 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            0.0
        } else {
            self.pixels[y as usize * self.width + x as usize]
        }
    }

    /// Sets the pixel at `(x, y)`, clamping the value to `[0, 1]`;
    /// out-of-bounds writes are ignored.
    pub fn set(&mut self, x: i64, y: i64, v: f64) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        self.pixels[y as usize * self.width + x as usize] = v.clamp(0.0, 1.0);
    }

    /// Brightens the pixel at `(x, y)` to at least `v`.
    pub fn stamp(&mut self, x: i64, y: i64, v: f64) {
        let cur = self.get(x, y);
        if v > cur {
            self.set(x, y, v);
        }
    }

    /// Draws a thick anti-alias-free line segment with the given intensity.
    pub fn draw_line(
        &mut self,
        (x0, y0): (f64, f64),
        (x1, y1): (f64, f64),
        thickness: f64,
        intensity: f64,
    ) {
        let steps = ((x1 - x0).hypot(y1 - y0).ceil() as usize * 2).max(2);
        let half = thickness / 2.0;
        let r = half.ceil() as i64;
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            let cx = x0 + t * (x1 - x0);
            let cy = y0 + t * (y1 - y0);
            for dy in -r..=r {
                for dx in -r..=r {
                    let px = cx.round() as i64 + dx;
                    let py = cy.round() as i64 + dy;
                    let d = ((px as f64 - cx).powi(2) + (py as f64 - cy).powi(2)).sqrt();
                    if d <= half {
                        self.stamp(px, py, intensity);
                    }
                }
            }
        }
    }

    /// Draws a circle (filled disc or ring of the given stroke width).
    pub fn draw_circle(
        &mut self,
        (cx, cy): (f64, f64),
        radius: f64,
        stroke: Option<f64>,
        intensity: f64,
    ) {
        let r = radius.ceil() as i64 + 1;
        for dy in -r..=r {
            for dx in -r..=r {
                let d = ((dx * dx + dy * dy) as f64).sqrt();
                let inside = match stroke {
                    None => d <= radius,
                    Some(w) => (d - radius).abs() <= w / 2.0,
                };
                if inside {
                    self.stamp(cx.round() as i64 + dx, cy.round() as i64 + dy, intensity);
                }
            }
        }
    }

    /// Draws an axis-aligned rectangle (filled or outlined).
    pub fn draw_rect(
        &mut self,
        (x0, y0): (f64, f64),
        (x1, y1): (f64, f64),
        stroke: Option<f64>,
        intensity: f64,
    ) {
        match stroke {
            None => {
                for y in y0.round() as i64..=y1.round() as i64 {
                    for x in x0.round() as i64..=x1.round() as i64 {
                        self.stamp(x, y, intensity);
                    }
                }
            }
            Some(w) => {
                self.draw_line((x0, y0), (x1, y0), w, intensity);
                self.draw_line((x1, y0), (x1, y1), w, intensity);
                self.draw_line((x1, y1), (x0, y1), w, intensity);
                self.draw_line((x0, y1), (x0, y0), w, intensity);
            }
        }
    }

    /// Adds clipped Gaussian pixel noise of the given standard deviation.
    pub fn add_noise<R: Rng + ?Sized>(&mut self, sigma: f64, rng: &mut R) {
        for p in &mut self.pixels {
            *p = (*p + sigma * standard_normal(rng)).clamp(0.0, 1.0);
        }
    }

    /// Mean pixel intensity.
    pub fn mean_intensity(&self) -> f64 {
        if self.pixels.is_empty() {
            0.0
        } else {
            self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounds_are_safe() {
        let mut img = Image::new(4, 4);
        img.set(-1, 0, 1.0);
        img.set(0, 100, 1.0);
        assert_eq!(img.get(-1, 0), 0.0);
        assert_eq!(img.get(0, 100), 0.0);
        assert_eq!(img.mean_intensity(), 0.0);
    }

    #[test]
    fn values_clamped() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, 7.5);
        assert_eq!(img.get(0, 0), 1.0);
        img.set(1, 1, -3.0);
        assert_eq!(img.get(1, 1), 0.0);
    }

    #[test]
    fn line_draws_pixels() {
        let mut img = Image::new(10, 10);
        img.draw_line((1.0, 5.0), (8.0, 5.0), 1.5, 1.0);
        assert!(img.get(4, 5) > 0.0);
        assert_eq!(img.get(4, 0), 0.0);
        assert!(img.mean_intensity() > 0.0);
    }

    #[test]
    fn circle_ring_vs_disc() {
        let mut disc = Image::new(20, 20);
        disc.draw_circle((10.0, 10.0), 6.0, None, 1.0);
        assert!(disc.get(10, 10) > 0.0); // center filled

        let mut ring = Image::new(20, 20);
        ring.draw_circle((10.0, 10.0), 6.0, Some(2.0), 1.0);
        assert_eq!(ring.get(10, 10), 0.0); // center empty
        assert!(ring.get(10, 4) > 0.0); // on the ring
    }

    #[test]
    fn rect_filled_and_outline() {
        let mut filled = Image::new(12, 12);
        filled.draw_rect((2.0, 2.0), (9.0, 9.0), None, 1.0);
        assert!(filled.get(5, 5) > 0.0);

        let mut outline = Image::new(12, 12);
        outline.draw_rect((2.0, 2.0), (9.0, 9.0), Some(1.0), 1.0);
        assert_eq!(outline.get(5, 5), 0.0);
        assert!(outline.get(2, 5) > 0.0);
    }

    #[test]
    fn noise_stays_in_range() {
        let mut img = Image::new(8, 8);
        img.draw_rect((0.0, 0.0), (7.0, 7.0), None, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        img.add_noise(0.3, &mut rng);
        assert!(img.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Noise actually changed something.
        assert!(img.pixels().iter().any(|&p| (p - 0.5).abs() > 1e-6));
    }

    #[test]
    fn stamp_takes_maximum() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, 0.8);
        img.stamp(0, 0, 0.3);
        assert_eq!(img.get(0, 0), 0.8);
        img.stamp(0, 0, 0.9);
        assert_eq!(img.get(0, 0), 0.9);
    }
}
