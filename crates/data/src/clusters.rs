//! Gaussian cluster toy task: fast-converging smoke-test workload for the
//! optimizers and examples.

use rand::Rng;

use photon_linalg::random::{normal_cvector, random_unit_cvector};
use photon_linalg::CVector;

use crate::dataset::{DataError, Dataset};

/// Configuration of the complex Gaussian cluster task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianClusters {
    /// Feature dimension `K`.
    pub dim: usize,
    /// Number of classes (cluster centers).
    pub num_classes: usize,
    /// Cluster spread relative to the unit-norm centers (e.g. 0.2).
    pub spread: f64,
}

impl GaussianClusters {
    /// A `dim`-dimensional task with `num_classes` well-separated clusters.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`, `num_classes == 0` or `spread < 0`.
    pub fn new(dim: usize, num_classes: usize, spread: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(num_classes > 0, "need at least one class");
        assert!(spread >= 0.0, "spread must be non-negative");
        GaussianClusters {
            dim,
            num_classes,
            spread,
        }
    }

    /// Generates `n` labeled samples: unit-norm cluster centers drawn once
    /// from the seeded `rng`, then per-sample complex Gaussian spread.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`] (only possible for `n == 0`).
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<Dataset, DataError> {
        let centers: Vec<CVector> = (0..self.num_classes)
            .map(|_| random_unit_cvector(self.dim, rng))
            .collect();
        let mut inputs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % self.num_classes;
            let noise = normal_cvector(self.dim, rng).scale_real(self.spread);
            let raw = &centers[label] + &noise;
            inputs.push(raw.normalized().unwrap_or(raw));
            labels.push(label);
        }
        Dataset::new(inputs, labels, self.num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_balanced_unit_norm_samples() {
        let task = GaussianClusters::new(8, 4, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let ds = task.generate(40, &mut rng).unwrap();
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.class_counts(), vec![10, 10, 10, 10]);
        for x in ds.inputs() {
            assert!((x.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn low_spread_clusters_are_separable() {
        let task = GaussianClusters::new(6, 3, 0.05);
        let mut rng = StdRng::seed_from_u64(2);
        let ds = task.generate(30, &mut rng).unwrap();
        // Same-class samples are closer than cross-class samples on average.
        let mut same = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        for i in 0..ds.len() {
            for j in i + 1..ds.len() {
                let d = (ds.inputs()[i].clone() - ds.inputs()[j].clone()).norm();
                if ds.labels()[i] == ds.labels()[j] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    cross = (cross.0 + d, cross.1 + 1);
                }
            }
        }
        let avg_same = same.0 / same.1 as f64;
        let avg_cross = cross.0 / cross.1 as f64;
        assert!(avg_same < 0.5 * avg_cross, "{avg_same} vs {avg_cross}");
    }

    #[test]
    fn empty_generation_is_error() {
        let task = GaussianClusters::new(4, 2, 0.2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(task.generate(0, &mut rng).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        let _ = GaussianClusters::new(4, 0, 0.1);
    }
}
