//! Property-based tests of the dataset substrate.

use proptest::prelude::*;
use rand::SeedableRng;

use photon_data::{
    dft, dft_features, idft, Batcher, Dataset, GaussianClusters, Image, SyntheticFashion,
    SyntheticMnist,
};
use photon_linalg::{CVector, C64};

fn arb_cvec(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n)
        .prop_map(|v| CVector::from_vec(v.into_iter().map(|(re, im)| C64::new(re, im)).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DFT is linear: dft(αx + y) = α·dft(x) + dft(y), any length.
    #[test]
    fn dft_linearity(
        n in 2usize..50,
        alpha_re in -2.0..2.0f64,
        alpha_im in -2.0..2.0f64,
        seed in 0u64..500,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = photon_linalg::random::normal_cvector(n, &mut rng);
        let y = photon_linalg::random::normal_cvector(n, &mut rng);
        let alpha = C64::new(alpha_re, alpha_im);
        let lhs = dft(&(x.scale(alpha) + y.clone()));
        let rhs = dft(&x).scale(alpha) + dft(&y);
        prop_assert!((&lhs - &rhs).max_abs() < 1e-7 * (1.0 + alpha.abs()));
    }

    /// Time shift ↔ phase ramp: dft(shift(x))[k] = dft(x)[k]·e^{−2πjk s/N}.
    #[test]
    fn dft_shift_theorem(x in (4usize..24).prop_flat_map(arb_cvec), s in 1usize..4) {
        let n = x.len();
        prop_assume!(s < n);
        let shifted = CVector::from_fn(n, |i| x[(i + s) % n]);
        let fx = dft(&x);
        let fs = dft(&shifted);
        for k in 0..n {
            let ramp = C64::cis(std::f64::consts::TAU * (k * s) as f64 / n as f64);
            prop_assert!((fs[k] - fx[k] * ramp).abs() < 1e-7, "bin {k}");
        }
    }

    /// idft ∘ dft = id for all lengths (including non-powers of two).
    #[test]
    fn dft_inverse(x in (1usize..60).prop_flat_map(arb_cvec)) {
        let back = idft(&dft(&x));
        prop_assert!((&back - &x).max_abs() < 1e-8);
    }

    /// Feature extraction always yields unit-power vectors (or exactly
    /// zero for non-normalizable inputs) of the requested length.
    #[test]
    fn features_are_unit_power(seed in 0u64..500, k in 1usize..64, class in 0usize..10) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let img = SyntheticMnist::new().render(class, &mut rng);
        let x = dft_features(&img, k);
        prop_assert_eq!(x.len(), k);
        let p = x.norm_sqr();
        prop_assert!((p - 1.0).abs() < 1e-9 || p < 1e-9);
    }

    /// Split partitions: train + test sizes add up and indices never
    /// duplicate samples (checked via multiset of labels).
    #[test]
    fn split_partitions_exactly(seed in 0u64..500, frac in 0.1..0.9f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ds = GaussianClusters::new(4, 3, 0.2).generate(30, &mut rng).unwrap();
        let (train, test) = ds.split(frac, &mut rng);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let mut all_counts = vec![0usize; 3];
        for &l in train.labels().iter().chain(test.labels()) {
            all_counts[l] += 1;
        }
        prop_assert_eq!(all_counts, ds.class_counts());
    }

    /// One epoch of the batcher is a permutation of 0..n in batches of at
    /// most the configured size.
    #[test]
    fn batcher_is_a_permutation(seed in 0u64..500, n in 1usize..60, bs in 1usize..12) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut batcher = Batcher::new(n, bs);
        let mut seen = vec![false; n];
        for batch in batcher.epoch(&mut rng) {
            prop_assert!(batch.len() <= bs);
            for i in batch {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Both image generators always stay in [0,1] and render class labels
    /// 0-9 without panicking.
    #[test]
    fn generators_stay_in_range(seed in 0u64..500, class in 0usize..10) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m: Image = SyntheticMnist::new().render(class, &mut rng);
        let f: Image = SyntheticFashion::new().render(class, &mut rng);
        prop_assert!(m.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert!(f.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Dataset subset preserves the (input, label) pairing.
    #[test]
    fn subset_preserves_pairs(seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ds = GaussianClusters::new(3, 3, 0.2).generate(12, &mut rng).unwrap();
        let sub = ds.subset(&[11, 0, 5]);
        prop_assert_eq!(sub.len(), 3);
        for (j, &orig) in [11usize, 0, 5].iter().enumerate() {
            let (x, l) = sub.sample(j);
            let (x0, l0) = ds.sample(orig);
            prop_assert_eq!(l, l0);
            prop_assert!((x - x0).max_abs() < 1e-15);
        }
    }
}

/// Deterministic regression: a Dataset built from generator output is valid.
#[test]
fn images_to_dataset_validates() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let images = SyntheticFashion::new().generate_balanced(2, &mut rng);
    let ds: Dataset = photon_data::images_to_dataset(&images, 12, 10).unwrap();
    assert_eq!(ds.class_counts(), vec![2; 10]);
}
