//! Calibration probe generation: the optical inputs and phase settings the
//! calibrator drives the chip with.

use rand::Rng;

use photon_exec::ExecPool;
use photon_linalg::random::random_unit_cvector;
use photon_linalg::{CVector, RVector};

use photon_photonics::{BatchScratch, ChipScratch, OnnChip};

/// Number of probe inputs measured per batched chip read.
///
/// Fixed (never derived from the pool size) so the work items handed to the
/// pool are identical for every pool size, keeping the sweep bitwise
/// pool-size-invariant on noise-free chips.
const INPUT_BLOCK: usize = 32;

/// A calibration probe plan: input vectors × phase settings.
///
/// Each `(input, setting)` pair costs one chip query when measured. Basis
/// inputs localize errors to optical paths; random superposition inputs
/// constrain relative phases; multiple phase settings disambiguate
/// parameter-dependent from parameter-independent effects.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    /// Optical input vectors.
    pub inputs: Vec<CVector>,
    /// Phase-parameter settings the chip is programmed to.
    pub settings: Vec<RVector>,
}

impl ProbePlan {
    /// Builds a plan for `chip`: all `K` basis inputs (when
    /// `include_basis`), `random_inputs` Haar-random unit inputs, and
    /// `num_settings` random phase settings drawn from the standard
    /// initialization distribution.
    ///
    /// # Panics
    ///
    /// Panics when the plan would be empty.
    pub fn for_chip<C: OnnChip, R: Rng + ?Sized>(
        chip: &C,
        include_basis: bool,
        random_inputs: usize,
        num_settings: usize,
        rng: &mut R,
    ) -> Self {
        assert!(num_settings > 0, "need at least one phase setting");
        let k = chip.input_dim();
        let mut inputs = Vec::new();
        if include_basis {
            for i in 0..k {
                inputs.push(CVector::basis(k, i));
            }
        }
        for _ in 0..random_inputs {
            inputs.push(random_unit_cvector(k, rng));
        }
        assert!(!inputs.is_empty(), "probe plan needs at least one input");
        let settings = (0..num_settings).map(|_| chip.init_params(rng)).collect();
        ProbePlan { inputs, settings }
    }

    /// Total chip queries one measurement sweep costs.
    pub fn query_cost(&self) -> usize {
        self.inputs.len() * self.settings.len()
    }

    /// Number of scalar power residuals the plan produces for a chip with
    /// `output_dim` detectors.
    pub fn residual_count(&self, output_dim: usize) -> usize {
        self.query_cost() * output_dim
    }
}

/// The measured chip responses for a [`ProbePlan`]: per-setting, per-input
/// output power vectors, flattened in plan order.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// `powers[s][p]` = detector powers for setting `s`, input `p`.
    pub powers: Vec<Vec<RVector>>,
}

/// Runs the plan against the chip, consuming `plan.query_cost()` queries.
///
/// Sweeps serially so that noisy chips draw their measurement noise in plan
/// order; use [`measure_chip_pooled`] to fan the sweep out over a worker pool.
pub fn measure_chip<C: OnnChip>(chip: &C, plan: &ProbePlan) -> Measurements {
    measure_chip_pooled(chip, plan, &ExecPool::serial())
}

/// Runs the plan against the chip with `(setting, input-block)` sweeps
/// fanned out over `pool`, consuming `plan.query_cost()` queries.
///
/// Each work item measures one phase setting on a fixed [`INPUT_BLOCK`] of
/// probe inputs through [`OnnChip::forward_powers_batch_into`], so compiled
/// chips pay one unitary compile per block instead of one interpreted op
/// walk per probe. Results come back in plan order regardless of pool size.
/// For noise-free chips the powers are bitwise identical to
/// [`measure_chip`]; noisy chips draw from a shared noise stream, so only
/// the distribution is preserved.
///
/// A non-finite power reading (a dropped read on a faulty chip) is
/// re-measured individually up to three times; if it stays non-finite the
/// reading is recorded as-is and the calibrator's residual zeroes it out of
/// the fit.
pub fn measure_chip_pooled<C: OnnChip>(
    chip: &C,
    plan: &ProbePlan,
    pool: &ExecPool,
) -> Measurements {
    let input_idx: Vec<usize> = (0..plan.inputs.len()).collect();
    let items: Vec<(usize, &[usize])> = (0..plan.settings.len())
        .flat_map(|s| input_idx.chunks(INPUT_BLOCK).map(move |block| (s, block)))
        .collect();
    let mut flat = pool
        .map_with(
            &items,
            || (BatchScratch::new(), ChipScratch::new()),
            |(batch, single), _, &(s, block)| {
                let theta = &plan.settings[s];
                let xs: Vec<&CVector> = block.iter().map(|&p| &plan.inputs[p]).collect();
                let batched = chip.forward_powers_batch_into(&xs, theta, batch);
                let mut out: Vec<RVector> = batched.to_vec();
                for (powers, &p) in out.iter_mut().zip(block.iter()) {
                    let mut attempts = 0;
                    while !powers.iter().all(|v| v.is_finite()) && attempts < 3 {
                        powers
                            .copy_from(chip.forward_powers_into(&plan.inputs[p], theta, single));
                        attempts += 1;
                    }
                }
                out
            },
        )
        .into_iter()
        .flatten();
    let powers = (0..plan.settings.len())
        .map(|_| (&mut flat).take(plan.inputs.len()).collect())
        .collect();
    Measurements { powers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_photonics::{Architecture, ErrorModel, FabricatedChip};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chip() -> (FabricatedChip, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        (chip, rng)
    }

    #[test]
    fn plan_shapes() {
        let (chip, mut rng) = chip();
        let plan = ProbePlan::for_chip(&chip, true, 3, 2, &mut rng);
        assert_eq!(plan.inputs.len(), 4 + 3);
        assert_eq!(plan.settings.len(), 2);
        assert_eq!(plan.query_cost(), 14);
        assert_eq!(plan.residual_count(4), 56);
        // All inputs unit power.
        for x in &plan.inputs {
            assert!((x.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn measurement_counts_queries() {
        let (chip, mut rng) = chip();
        let plan = ProbePlan::for_chip(&chip, true, 2, 3, &mut rng);
        chip.reset_query_count();
        let meas = measure_chip(&chip, &plan);
        assert_eq!(chip.query_count() as usize, plan.query_cost());
        assert_eq!(meas.powers.len(), 3);
        assert_eq!(meas.powers[0].len(), 6);
        assert_eq!(meas.powers[0][0].len(), 4);
    }

    #[test]
    fn powers_are_physical() {
        let (chip, mut rng) = chip();
        let plan = ProbePlan::for_chip(&chip, true, 4, 2, &mut rng);
        let meas = measure_chip(&chip, &plan);
        for setting in &meas.powers {
            for p in setting {
                // Non-negative and total power ≤ input power (attenuation only).
                assert!(p.iter().all(|&v| v >= 0.0));
                assert!(p.sum() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn pooled_sweep_is_bitwise_identical_to_serial() {
        let (chip, mut rng) = chip();
        let plan = ProbePlan::for_chip(&chip, true, 3, 2, &mut rng);
        let serial = measure_chip(&chip, &plan);
        for threads in [2usize, 4, 8] {
            let pooled = measure_chip_pooled(&chip, &plan, &ExecPool::new(threads));
            assert_eq!(pooled.powers.len(), serial.powers.len());
            for (ps, ss) in pooled.powers.iter().zip(&serial.powers) {
                assert_eq!(ps.len(), ss.len());
                for (p, s) in ps.iter().zip(ss) {
                    for (a, b) in p.iter().zip(s.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_plan_rejected() {
        let (chip, mut rng) = chip();
        let _ = ProbePlan::for_chip(&chip, false, 0, 1, &mut rng);
    }
}
