//! Calibration quality metrics: how faithfully a software model reproduces
//! the chip.

use rand::Rng;

use photon_linalg::random::random_unit_cvector;
use photon_linalg::CVector;

use photon_photonics::{ChipScratch, Network, NetworkScratch, OnnChip};

/// Cosine-style field fidelity up to a global phase:
/// `|⟨y_model, y_chip⟩| / (‖y_model‖·‖y_chip‖)`, in `[0, 1]`.
///
/// Returns 0 when either field is dark.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CVector};
/// use photon_calib::field_fidelity;
///
/// let y = CVector::from_vec(vec![C64::ONE, C64::I]);
/// // A global phase does not reduce fidelity.
/// let rotated = y.scale(C64::cis(1.2));
/// assert!((field_fidelity(&y, &rotated) - 1.0).abs() < 1e-12);
/// ```
pub fn field_fidelity(y_model: &CVector, y_chip: &CVector) -> f64 {
    let denom = y_model.norm() * y_chip.norm();
    if denom == 0.0 {
        return 0.0;
    }
    y_model
        .dot(y_chip)
        .map(|ip| (ip.abs() / denom).min(1.0))
        .unwrap_or(0.0)
}

/// Power-readout fidelity: `1 − ‖p_model − p_chip‖₁ / (‖p_chip‖₁ + ε)`,
/// clamped to `[0, 1]`.
pub fn power_fidelity(y_model: &CVector, y_chip: &CVector) -> f64 {
    let pm = y_model.powers();
    let pc = y_chip.powers();
    let mut num = 0.0;
    let mut den = 1e-12;
    for i in 0..pm.len() {
        num += (pm[i] - pc[i]).abs();
        den += pc[i].abs();
    }
    (1.0 - num / den).clamp(0.0, 1.0)
}

/// Aggregate model-vs-chip fidelities on held-out random probes and
/// held-out random phase settings (none of which the calibrator saw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// Mean field fidelity over the evaluation sweep.
    pub field: f64,
    /// Mean power fidelity over the evaluation sweep.
    pub power: f64,
    /// Probes × settings used.
    pub evaluations: usize,
}

/// Evaluates a model against the chip on `probes × settings` fresh random
/// conditions. Consumes chip queries.
///
/// A non-finite chip reading (a dropped read on a faulty chip) is
/// re-measured up to three times; a probe that stays non-finite is skipped
/// rather than poisoning the aggregate. `evaluations` counts only the
/// probes that contributed.
///
/// # Panics
///
/// Panics when `probes == 0` or `settings == 0`.
pub fn evaluate_model<C: OnnChip, R: Rng + ?Sized>(
    chip: &C,
    model: &Network,
    probes: usize,
    settings: usize,
    rng: &mut R,
) -> FidelityReport {
    assert!(
        probes > 0 && settings > 0,
        "need a non-empty evaluation sweep"
    );
    let k = chip.input_dim();
    let mut field_acc = 0.0;
    let mut power_acc = 0.0;
    let mut count = 0usize;
    // One scratch set for the whole sweep: no per-probe heap allocation.
    let mut chip_scratch = ChipScratch::new();
    let mut model_scratch = NetworkScratch::new();
    let mut y_chip = CVector::zeros(0);
    for _ in 0..settings {
        let theta = chip.init_params(rng);
        for _ in 0..probes {
            let x = random_unit_cvector(k, rng);
            let mut attempts = 0;
            loop {
                y_chip.copy_from(chip.forward_into(&x, &theta, &mut chip_scratch));
                let finite = y_chip.iter().all(|z| z.re.is_finite() && z.im.is_finite());
                if finite || attempts >= 3 {
                    break;
                }
                attempts += 1;
            }
            if !y_chip.iter().all(|z| z.re.is_finite() && z.im.is_finite()) {
                continue;
            }
            let y_model = model.forward_into(&x, &theta, &mut model_scratch);
            field_acc += field_fidelity(y_model, &y_chip);
            power_acc += power_fidelity(y_model, &y_chip);
            count += 1;
        }
    }
    if count == 0 {
        return FidelityReport {
            field: 0.0,
            power: 0.0,
            evaluations: 0,
        };
    }
    FidelityReport {
        field: field_acc / count as f64,
        power: power_acc / count as f64,
        evaluations: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::C64;
    use photon_photonics::{ideal_model, Architecture, ErrorModel, FabricatedChip};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn field_fidelity_bounds() {
        let a = CVector::from_vec(vec![C64::ONE, C64::ZERO]);
        let b = CVector::from_vec(vec![C64::ZERO, C64::ONE]);
        assert_eq!(field_fidelity(&a, &b), 0.0); // orthogonal
        assert!((field_fidelity(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(field_fidelity(&a, &CVector::zeros(2)), 0.0); // dark
    }

    #[test]
    fn power_fidelity_ignores_phase_entirely() {
        let a = CVector::from_vec(vec![C64::ONE, C64::I]);
        let b = CVector::from_vec(vec![-C64::ONE, C64::new(0.0, -1.0)]);
        assert!((power_fidelity(&a, &b) - 1.0).abs() < 1e-12);
        // Different powers hurt.
        let c = CVector::from_vec(vec![C64::from_real(2.0), C64::ZERO]);
        assert!(power_fidelity(&a, &c) < 0.6);
    }

    #[test]
    fn oracle_model_has_perfect_fidelity() {
        let mut rng = StdRng::seed_from_u64(1);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let oracle = chip.oracle_network();
        let rep = evaluate_model(&chip, &oracle, 5, 2, &mut rng);
        assert!((rep.field - 1.0).abs() < 1e-12);
        assert!((rep.power - 1.0).abs() < 1e-12);
        assert_eq!(rep.evaluations, 10);
    }

    #[test]
    fn ideal_model_fidelity_degrades_with_beta() {
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let fid_at = |beta: f64| {
            let mut rng = StdRng::seed_from_u64(2);
            let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(beta), &mut rng);
            evaluate_model(&chip, &ideal_model(&arch), 10, 3, &mut rng).power
        };
        let f_small = fid_at(0.5);
        let f_large = fid_at(8.0);
        assert!(
            f_small > f_large,
            "fidelity should degrade with error size: {f_small} vs {f_large}"
        );
        assert!(f_small > 0.9);
    }
}
