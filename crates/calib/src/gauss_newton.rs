//! Damped Gauss-Newton (Levenberg-Marquardt) nonlinear least squares with a
//! finite-difference Jacobian.
//!
//! The calibrator fits the error vector of a software model to chip
//! measurements; the residual function is a cheap white-box model
//! evaluation, so finite differences cost no chip queries.

use photon_linalg::{LinalgError, RCholesky, RMatrix, RVector};

/// Levenberg-Marquardt hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmSettings {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Forward-difference step for the Jacobian.
    pub fd_step: f64,
    /// Initial damping λ.
    pub lambda_init: f64,
    /// Damping multiplier on a rejected step.
    pub lambda_up: f64,
    /// Damping divisor on an accepted step.
    pub lambda_down: f64,
    /// Stop when the relative cost improvement falls below this.
    pub tol: f64,
}

impl Default for LmSettings {
    fn default() -> Self {
        LmSettings {
            max_iters: 30,
            fd_step: 1e-6,
            lambda_init: 1e-3,
            lambda_up: 10.0,
            lambda_down: 10.0,
            tol: 1e-10,
        }
    }
}

/// Result of a Levenberg-Marquardt run.
#[derive(Debug, Clone)]
pub struct LmResult {
    /// The fitted parameter vector.
    pub params: RVector,
    /// Final cost `‖r‖²`.
    pub cost: f64,
    /// Initial cost `‖r(x₀)‖²`.
    pub initial_cost: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the tolerance criterion stopped the run (vs the iteration
    /// budget).
    pub converged: bool,
}

/// Minimizes `‖r(x)‖²` starting from `init`.
///
/// # Errors
///
/// Propagates factorization failures of the damped normal equations (does
/// not occur for positive damping).
///
/// # Examples
///
/// ```
/// use photon_linalg::RVector;
/// use photon_calib::{levenberg_marquardt, LmSettings};
///
/// // Fit y = a·x + b to three points on y = 2x + 1.
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [1.0, 3.0, 5.0];
/// let mut residual = |p: &RVector| {
///     RVector::from_fn(3, |i| p[0] * xs[i] + p[1] - ys[i])
/// };
/// let fit = levenberg_marquardt(&mut residual, &RVector::zeros(2),
///                               &LmSettings::default())?;
/// assert!((fit.params[0] - 2.0).abs() < 1e-6);
/// assert!((fit.params[1] - 1.0).abs() < 1e-6);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
pub fn levenberg_marquardt(
    residual: &mut dyn FnMut(&RVector) -> RVector,
    init: &RVector,
    settings: &LmSettings,
) -> Result<LmResult, LinalgError> {
    let n = init.len();
    let mut x = init.clone();
    let mut r = residual(&x);
    let mut cost = r.norm_sqr();
    let initial_cost = cost;
    let mut lambda = settings.lambda_init;
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..settings.max_iters {
        iterations += 1;
        // Forward-difference Jacobian (m × n).
        let m = r.len();
        let mut jac = RMatrix::zeros(m, n);
        for k in 0..n {
            let mut xp = x.clone();
            xp[k] += settings.fd_step;
            let rp = residual(&xp);
            for row in 0..m {
                jac[(row, k)] = (rp[row] - r[row]) / settings.fd_step;
            }
        }
        // For over-parameterized fits (m < n, the common calibration case)
        // solve in the m-dimensional residual space via the push-through
        // identity (JᵀJ + λI)⁻¹Jᵀ = Jᵀ(JJᵀ + λI)⁻¹ — the factorization
        // drops from O(n³) to O(m³).
        let dual = m < n;
        let (gram, jtr) = if dual {
            (jac.transpose().gram(), RVector::zeros(0))
        } else {
            (jac.gram(), jac.transpose_mul_vec(&r)?)
        };

        // Inner damping loop: grow λ until a step is accepted.
        let mut accepted = false;
        for _ in 0..12 {
            let dim = gram.rows();
            let mut a = gram.clone();
            a.add_diagonal(lambda * (gram.trace()? / dim as f64).max(1e-12));
            let chol = match RCholesky::new(&a) {
                Ok(c) => c,
                Err(_) => {
                    lambda *= settings.lambda_up;
                    continue;
                }
            };
            let delta = if dual {
                let z = chol.solve(&r)?;
                jac.transpose_mul_vec(&z)?
            } else {
                chol.solve(&jtr)?
            };
            let mut trial = x.clone();
            trial.axpy(-1.0, &delta);
            let r_trial = residual(&trial);
            let cost_trial = r_trial.norm_sqr();
            if cost_trial < cost {
                let rel_gain = (cost - cost_trial) / cost.max(1e-300);
                x = trial;
                r = r_trial;
                cost = cost_trial;
                lambda = (lambda / settings.lambda_down).max(1e-12);
                accepted = true;
                if rel_gain < settings.tol {
                    converged = true;
                }
                break;
            }
            lambda *= settings.lambda_up;
        }
        if !accepted {
            converged = true; // damping saturated: local optimum
            break;
        }
        if converged {
            break;
        }
    }

    Ok(LmResult {
        params: x,
        cost,
        initial_cost,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 2.5, 4.0, 5.5]; // y = 1.5x + 1
        let mut res = |p: &RVector| RVector::from_fn(4, |i| p[0] * xs[i] + p[1] - ys[i]);
        let fit =
            levenberg_marquardt(&mut res, &RVector::zeros(2), &LmSettings::default()).unwrap();
        assert!((fit.params[0] - 1.5).abs() < 1e-7);
        assert!((fit.params[1] - 1.0).abs() < 1e-7);
        assert!(fit.cost < 1e-12);
        assert!(fit.cost <= fit.initial_cost);
    }

    #[test]
    fn nonlinear_exponential_fit() {
        // y = exp(k·x) with k = 0.7.
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (0.7 * x).exp()).collect();
        let xs2 = xs.clone();
        let mut res =
            move |p: &RVector| RVector::from_fn(xs2.len(), |i| (p[0] * xs2[i]).exp() - ys[i]);
        let fit = levenberg_marquardt(
            &mut res,
            &RVector::from_slice(&[0.1]),
            &LmSettings::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 0.7).abs() < 1e-5, "k = {}", fit.params[0]);
    }

    #[test]
    fn rosenbrock_as_least_squares() {
        // r = (1−x, 10(y−x²)): the classic valley.
        let mut res =
            |p: &RVector| RVector::from_vec(vec![1.0 - p[0], 10.0 * (p[1] - p[0] * p[0])]);
        let settings = LmSettings {
            max_iters: 200,
            ..LmSettings::default()
        };
        let fit =
            levenberg_marquardt(&mut res, &RVector::from_slice(&[-1.2, 1.0]), &settings).unwrap();
        assert!(fit.cost < 1e-10, "cost {}", fit.cost);
        assert!((fit.params[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zero_residual_start_terminates_quickly() {
        let mut res = |p: &RVector| p.clone();
        let fit =
            levenberg_marquardt(&mut res, &RVector::zeros(3), &LmSettings::default()).unwrap();
        assert!(fit.cost < 1e-30);
        assert!(fit.iterations <= 2);
    }

    #[test]
    fn dual_and_primal_normal_equations_agree() {
        // (JᵀJ + cI)⁻¹Jᵀr = Jᵀ(JJᵀ + cI)⁻¹r for the same scalar c.
        use photon_linalg::RMatrix;
        let j = RMatrix::from_rows(&[vec![1.0, 2.0, 0.5, -1.0], vec![0.0, 1.0, 3.0, 0.25]]);
        let r = RVector::from_slice(&[1.0, -2.0]);
        let c = 0.3;

        let mut primal = j.gram();
        primal.add_diagonal(c);
        let jtr = j.transpose_mul_vec(&r).unwrap();
        let d_primal = primal.solve(&jtr).unwrap();

        let mut dual = j.transpose().gram();
        dual.add_diagonal(c);
        let z = dual.solve(&r).unwrap();
        let d_dual = j.transpose_mul_vec(&z).unwrap();

        assert!((&d_primal - &d_dual).max_abs() < 1e-10);
    }

    #[test]
    fn wide_problem_converges_via_dual_path() {
        // 12 parameters, 4 residuals: the calibration regime. The dual
        // route must still drive the residual to zero.
        // Full-row-rank design matrix from a quadratic phase (a pure
        // linear phase would make the rows span only a 2-D space).
        let mut res = |p: &RVector| {
            RVector::from_fn(4, |i| {
                let mut acc = -((i + 1) as f64);
                for k in 0..12 {
                    let phase = (i * i * 7 + i * k * 3 + k * k) as f64 * 0.37;
                    acc += p[k] * phase.sin();
                }
                acc
            })
        };
        let fit =
            levenberg_marquardt(&mut res, &RVector::zeros(12), &LmSettings::default()).unwrap();
        assert!(fit.cost < 1e-10, "cost {}", fit.cost);
    }

    #[test]
    fn overparameterized_problem_is_damped_not_divergent() {
        // Two parameters, one residual: infinitely many optima; LM must
        // still settle on one with near-zero cost.
        let mut res = |p: &RVector| RVector::from_vec(vec![p[0] + p[1] - 1.0]);
        let fit =
            levenberg_marquardt(&mut res, &RVector::zeros(2), &LmSettings::default()).unwrap();
        assert!(fit.cost < 1e-12);
        assert!(fit.params.iter().all(|v| v.is_finite()));
    }
}
