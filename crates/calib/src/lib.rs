//! # photon-calib
//!
//! Black-box chip calibration: estimating the hidden fabrication errors of a
//! [`photon_photonics::FabricatedChip`] from input/output power measurements
//! — the "Calibrated Model" of the paper's title.
//!
//! The pipeline:
//!
//! 1. [`ProbePlan`] drives the chip with basis + Haar-random inputs at
//!    several random phase settings (each pair = one chip query);
//! 2. [`calibrate`] fits the model's per-component error vector by damped
//!    Gauss-Newton ([`levenberg_marquardt`]) on the power residuals — the
//!    fit runs entirely on the free software model;
//! 3. [`evaluate_model`] scores the result on held-out probes
//!    (field/power fidelity), and `ErrorVector::rmse` against
//!    `FabricatedChip::oracle_errors` scores parameter recovery.
//!
//! The calibrated model then supplies the Fisher metric for the LCNG
//! optimizer in `photon-opt`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calibrator;
mod fidelity;
mod gauss_newton;
mod probe;

pub use calibrator::{
    calibrate, calibrate_from_measurements, calibrate_traced, recalibrate,
    recalibrate_from_measurements, CalibError, CalibrationOutcome, CalibrationSettings,
};
pub use fidelity::{evaluate_model, field_fidelity, power_fidelity, FidelityReport};
pub use gauss_newton::{levenberg_marquardt, LmResult, LmSettings};
pub use probe::{measure_chip, measure_chip_pooled, Measurements, ProbePlan};
