//! The chip calibrator: estimates per-component fabrication errors from
//! black-box power measurements.
//!
//! Protocol:
//!
//! 1. drive the chip with a [`crate::ProbePlan`] (basis + random inputs at
//!    several random phase settings) and record detector powers;
//! 2. fit the model's flat error vector `e = (γ…, attenuation…, phase…)` by
//!    damped Gauss-Newton on the residual
//!    `r(e) = [ |y_model(x_p; θ_s, e)|² − measured ]_{s,p}`;
//! 3. return the estimated [`ErrorVector`] and the calibrated [`Network`].
//!
//! The fit touches only the software model — chip queries are spent solely
//! on step 1, so calibration cost is exactly `plan.query_cost()` queries.

use rand::Rng;

use photon_linalg::{LinalgError, RVector};
use photon_photonics::{ErrorVector, Network, NetworkError, NetworkScratch, OnnChip};
use photon_trace::{QueryCategory, TraceEvent, TraceHandle};

use crate::gauss_newton::{levenberg_marquardt, LmSettings};
use crate::probe::{measure_chip, Measurements, ProbePlan};

/// Calibration hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSettings {
    /// Include the `K` basis inputs in the probe plan.
    pub include_basis: bool,
    /// Number of Haar-random unit inputs.
    pub random_inputs: usize,
    /// Number of random phase settings.
    pub num_settings: usize,
    /// Gauss-Newton settings for the model fit.
    pub lm: LmSettings,
}

impl Default for CalibrationSettings {
    fn default() -> Self {
        CalibrationSettings {
            include_basis: true,
            random_inputs: 8,
            num_settings: 3,
            lm: LmSettings::default(),
        }
    }
}

impl CalibrationSettings {
    /// A budget-scaled preset: roughly `budget` chip queries split over
    /// inputs and settings.
    ///
    /// # Panics
    ///
    /// Panics when `budget` is too small to fit one basis sweep.
    pub fn with_query_budget(k: usize, budget: usize) -> Self {
        assert!(
            budget >= 2 * k,
            "budget must cover at least two basis sweeps"
        );
        let num_settings = (budget / (2 * k)).clamp(2, 6);
        let inputs_per_setting = budget / num_settings;
        let random_inputs = inputs_per_setting.saturating_sub(k).max(2);
        CalibrationSettings {
            include_basis: true,
            random_inputs,
            num_settings,
            lm: LmSettings::default(),
        }
    }
}

/// Errors raised by the calibrator.
#[derive(Debug)]
#[non_exhaustive]
pub enum CalibError {
    /// The least-squares solve failed.
    Linalg(LinalgError),
    /// Rebuilding the model from the fitted errors failed (never occurs for
    /// plans generated from the chip's own architecture).
    Network(NetworkError),
}

impl std::fmt::Display for CalibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibError::Linalg(e) => write!(f, "calibration solve failed: {e}"),
            CalibError::Network(e) => write!(f, "calibrated model rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for CalibError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibError::Linalg(e) => Some(e),
            CalibError::Network(e) => Some(e),
        }
    }
}

impl From<LinalgError> for CalibError {
    fn from(e: LinalgError) -> Self {
        CalibError::Linalg(e)
    }
}

impl From<NetworkError> for CalibError {
    fn from(e: NetworkError) -> Self {
        CalibError::Network(e)
    }
}

/// The outcome of a calibration run.
#[derive(Debug)]
pub struct CalibrationOutcome {
    /// Estimated per-component error assignment.
    pub errors: ErrorVector,
    /// The calibrated software model (architecture + estimated errors).
    pub model: Network,
    /// Final fit cost `‖r‖²`.
    pub fit_cost: f64,
    /// Fit cost before optimization (ideal-model residual).
    pub initial_cost: f64,
    /// Gauss-Newton iterations used.
    pub iterations: usize,
    /// Chip queries consumed by the measurement sweep.
    pub chip_queries: usize,
}

/// Calibrates `chip` with the given settings.
///
/// # Errors
///
/// See [`CalibError`].
///
/// # Examples
///
/// ```no_run
/// use rand::SeedableRng;
/// use photon_calib::{calibrate, CalibrationSettings};
/// use photon_photonics::{Architecture, ErrorModel, FabricatedChip};
///
/// let arch = Architecture::single_mesh(4, 2)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
/// let outcome = calibrate(&chip, &CalibrationSettings::default(), &mut rng)?;
/// assert!(outcome.fit_cost <= outcome.initial_cost);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn calibrate<C: OnnChip, R: Rng + ?Sized>(
    chip: &C,
    settings: &CalibrationSettings,
    rng: &mut R,
) -> Result<CalibrationOutcome, CalibError> {
    let plan = ProbePlan::for_chip(
        chip,
        settings.include_basis,
        settings.random_inputs,
        settings.num_settings,
        rng,
    );
    let measured = measure_chip(chip, &plan);
    calibrate_from_measurements(chip, &plan, &measured, &settings.lm)
}

/// [`calibrate`], with telemetry: emits a [`TraceEvent::Calibration`] fit
/// summary plus an epoch-0 [`TraceEvent::QueryLedger`] entry in the
/// `Calibration` category covering the chip queries the measurement sweep
/// actually consumed. With a null handle this is exactly [`calibrate`].
///
/// Use this for standalone (pre-training) calibration so a traced run's
/// ledger accounts for every chip query; in-run recalibrations are ledgered
/// by the trainer itself.
///
/// # Errors
///
/// See [`CalibError`].
pub fn calibrate_traced<C: OnnChip, R: Rng + ?Sized>(
    chip: &C,
    settings: &CalibrationSettings,
    rng: &mut R,
    trace: &TraceHandle,
) -> Result<CalibrationOutcome, CalibError> {
    let before = chip.query_count();
    let outcome = calibrate(chip, settings, rng)?;
    let spent = chip.query_count().saturating_sub(before);
    trace.emit(|| TraceEvent::Calibration {
        queries: spent,
        initial_cost: outcome.initial_cost,
        fit_cost: outcome.fit_cost,
        iterations: outcome.iterations as u64,
    });
    trace.emit(|| TraceEvent::QueryLedger {
        epoch: 0,
        category: QueryCategory::Calibration,
        queries: spent,
    });
    Ok(outcome)
}

/// Incremental recalibration: re-fit an already-calibrated chip whose
/// physical errors have drifted, warm-starting the Gauss-Newton fit from a
/// prior [`ErrorVector`] instead of zeros.
///
/// Under slow drift (e.g. OU thermal walks) the prior estimate is already
/// close to the new optimum, so the warm start converges in a fraction of
/// the iterations of a cold [`calibrate`] and tolerates much smaller probe
/// sweeps — this is the entry point the online-recalibration controller
/// uses between serving windows, where every chip query steals a microbatch
/// slot from live traffic.
///
/// # Errors
///
/// See [`CalibError`].
///
/// # Panics
///
/// Panics when `prior`'s flat layout does not match the chip architecture's
/// error slots.
pub fn recalibrate<C: OnnChip, R: Rng + ?Sized>(
    chip: &C,
    prior: &ErrorVector,
    settings: &CalibrationSettings,
    rng: &mut R,
) -> Result<CalibrationOutcome, CalibError> {
    let plan = ProbePlan::for_chip(
        chip,
        settings.include_basis,
        settings.random_inputs,
        settings.num_settings,
        rng,
    );
    let measured = measure_chip(chip, &plan);
    recalibrate_from_measurements(chip, &plan, &measured, &settings.lm, prior)
}

/// [`recalibrate`] from an existing measurement sweep: warm-starts the fit
/// at `prior` instead of zeros. Useful when the probe sweep was collected
/// piggybacked on live traffic (so measurement and fitting happen at
/// different times).
///
/// # Errors
///
/// See [`CalibError`].
///
/// # Panics
///
/// Panics when `prior`'s flat layout does not match the chip architecture's
/// error slots.
pub fn recalibrate_from_measurements<C: OnnChip>(
    chip: &C,
    plan: &ProbePlan,
    measured: &Measurements,
    lm: &LmSettings,
    prior: &ErrorVector,
) -> Result<CalibrationOutcome, CalibError> {
    let (n_bs, n_ps) = chip.architecture().error_slots();
    let flat = prior.to_flat();
    assert_eq!(
        flat.len(),
        n_bs + 2 * n_ps,
        "prior error vector does not match the chip architecture"
    );
    fit_measurements(chip, plan, measured, lm, RVector::from_vec(flat))
}

/// Calibrates from an existing measurement sweep (useful when the sweep is
/// shared across calibration budgets in an experiment). The fit cold-starts
/// from the ideal model (zero errors); see [`recalibrate_from_measurements`]
/// for the warm-started variant.
///
/// # Errors
///
/// See [`CalibError`].
pub fn calibrate_from_measurements<C: OnnChip>(
    chip: &C,
    plan: &ProbePlan,
    measured: &Measurements,
    lm: &LmSettings,
) -> Result<CalibrationOutcome, CalibError> {
    let (n_bs, n_ps) = chip.architecture().error_slots();
    fit_measurements(chip, plan, measured, lm, RVector::zeros(n_bs + 2 * n_ps))
}

/// Shared fit body: damped Gauss-Newton on the power residuals, starting
/// from `init` (zeros for a cold calibration, the prior errors for an
/// incremental recalibration).
fn fit_measurements<C: OnnChip>(
    chip: &C,
    plan: &ProbePlan,
    measured: &Measurements,
    lm: &LmSettings,
    init: RVector,
) -> Result<CalibrationOutcome, CalibError> {
    let arch = chip.architecture().clone();
    let (n_bs, n_ps) = arch.error_slots();
    let k_out = chip.output_dim();
    let n_residuals = plan.residual_count(k_out);

    // One forward scratch for every residual evaluation of the whole fit:
    // the inner probe sweep performs no per-sample heap allocation.
    let mut scratch = NetworkScratch::new();
    let mut residual = |flat: &RVector| -> RVector {
        let errors = ErrorVector::from_flat(n_bs, n_ps, flat.as_slice())
            .expect("length constructed to match");
        let model = arch
            .build_with_errors(&errors)
            .expect("flat layout matches the architecture");
        let mut r = RVector::zeros(n_residuals);
        let mut idx = 0;
        for (s, theta) in plan.settings.iter().enumerate() {
            for (p, x) in plan.inputs.iter().enumerate() {
                let y = model.forward_into(x, theta, &mut scratch);
                let target = &measured.powers[s][p];
                for d in 0..k_out {
                    // A dropped/NaN reading must not poison the whole fit:
                    // its residual entry is zeroed, removing that detector
                    // sample from the least-squares objective.
                    let e = y[d].norm_sqr() - target[d];
                    r[idx] = if e.is_finite() { e } else { 0.0 };
                    idx += 1;
                }
            }
        }
        r
    };

    let fit = levenberg_marquardt(&mut residual, &init, lm)?;
    let errors = ErrorVector::from_flat(n_bs, n_ps, fit.params.as_slice())
        .expect("length constructed to match");
    let model = arch.build_with_errors(&errors)?;
    Ok(CalibrationOutcome {
        errors,
        model,
        fit_cost: fit.cost,
        initial_cost: fit.initial_cost,
        iterations: fit.iterations,
        chip_queries: plan.query_cost(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::evaluate_model;
    use photon_photonics::{ideal_model, Architecture, ErrorModel, FabricatedChip};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_improves_over_ideal_model() {
        let mut rng = StdRng::seed_from_u64(11);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(2.0), &mut rng);

        let settings = CalibrationSettings {
            random_inputs: 8,
            num_settings: 3,
            lm: LmSettings {
                max_iters: 12,
                ..LmSettings::default()
            },
            ..CalibrationSettings::default()
        };
        let outcome = calibrate(&chip, &settings, &mut rng).unwrap();
        assert!(outcome.fit_cost < outcome.initial_cost);

        // Held-out fidelity: calibrated model beats the ideal model.
        let ideal = ideal_model(&arch);
        let fid_ideal = evaluate_model(&chip, &ideal, 10, 2, &mut rng);
        let fid_calib = evaluate_model(&chip, &outcome.model, 10, 2, &mut rng);
        assert!(
            fid_calib.power > fid_ideal.power,
            "calibrated {} !> ideal {}",
            fid_calib.power,
            fid_ideal.power
        );
    }

    #[test]
    fn calibration_query_accounting() {
        let mut rng = StdRng::seed_from_u64(13);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        chip.reset_query_count();
        let settings = CalibrationSettings {
            random_inputs: 4,
            num_settings: 2,
            lm: LmSettings {
                max_iters: 3,
                ..LmSettings::default()
            },
            ..CalibrationSettings::default()
        };
        let outcome = calibrate(&chip, &settings, &mut rng).unwrap();
        // All chip queries come from the measurement sweep: (4 basis + 4
        // random) × 2 settings = 16; the Gauss-Newton fit is chip-free.
        assert_eq!(outcome.chip_queries, 16);
        assert_eq!(chip.query_count(), 16);
    }

    #[test]
    fn zero_error_chip_calibrates_to_near_zero_errors() {
        let mut rng = StdRng::seed_from_u64(17);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let (n_bs, n_ps) = arch.error_slots();
        let chip = FabricatedChip::with_errors(&arch, &ErrorVector::zeros(n_bs, n_ps)).unwrap();
        let outcome = calibrate(&chip, &CalibrationSettings::default(), &mut rng).unwrap();
        // The residual at zero errors is already zero; LM stays there.
        assert!(outcome.fit_cost < 1e-15);
        let flat = outcome.errors.to_flat();
        assert!(flat.iter().all(|&e| e.abs() < 1e-6));
    }

    #[test]
    fn warm_start_recalibration_converges_faster_than_cold() {
        let mut rng = StdRng::seed_from_u64(29);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(2.0), &mut rng);
        // The prior is the chip's own oracle errors nudged slightly — the
        // situation after a short stretch of OU drift since the previous
        // calibration.
        let mut flat = chip.oracle_errors().to_flat();
        for (i, e) in flat.iter_mut().enumerate() {
            *e += 0.01 * (i as f64 * 0.7).sin();
        }
        let (n_bs, n_ps) = arch.error_slots();
        let prior = ErrorVector::from_flat(n_bs, n_ps, &flat).unwrap();
        let lm = LmSettings {
            max_iters: 12,
            ..LmSettings::default()
        };
        let plan = ProbePlan::for_chip(&chip, true, 6, 2, &mut rng);
        let measured = measure_chip(&chip, &plan);
        let cold = calibrate_from_measurements(&chip, &plan, &measured, &lm).unwrap();
        let warm = recalibrate_from_measurements(&chip, &plan, &measured, &lm, &prior).unwrap();
        assert!(
            warm.initial_cost < cold.initial_cost,
            "warm start must begin closer: warm {} vs cold {}",
            warm.initial_cost,
            cold.initial_cost
        );
        assert!(warm.fit_cost <= warm.initial_cost);
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn recalibrate_entry_point_spends_the_probe_budget() {
        let mut rng = StdRng::seed_from_u64(31);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        chip.reset_query_count();
        let settings = CalibrationSettings {
            random_inputs: 2,
            num_settings: 2,
            lm: LmSettings {
                max_iters: 4,
                ..LmSettings::default()
            },
            ..CalibrationSettings::default()
        };
        let outcome = recalibrate(&chip, &chip.oracle_errors(), &settings, &mut rng).unwrap();
        assert_eq!(outcome.chip_queries, 12);
        assert_eq!(chip.query_count(), 12);
        // From the oracle prior the residual is already ~zero.
        assert!(outcome.initial_cost < 1e-12, "{}", outcome.initial_cost);
    }

    #[test]
    fn budget_preset_scales() {
        let s = CalibrationSettings::with_query_budget(8, 128);
        assert!(s.num_settings >= 2);
        let sweep = (8 + s.random_inputs) * s.num_settings;
        assert!(sweep <= 160, "sweep {sweep} should be near budget");
    }

    #[test]
    fn error_display_chain() {
        let e = CalibError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
