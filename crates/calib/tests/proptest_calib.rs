//! Property-based tests of the calibration stack.

use proptest::prelude::*;
use rand::SeedableRng;

use photon_calib::{
    calibrate, field_fidelity, levenberg_marquardt, measure_chip, power_fidelity,
    CalibrationSettings, LmSettings, ProbePlan,
};
use photon_linalg::{CVector, RVector, C64};
use photon_photonics::{Architecture, ErrorModel, ErrorVector, FabricatedChip};

fn arb_cvec(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n)
        .prop_map(|v| CVector::from_vec(v.into_iter().map(|(re, im)| C64::new(re, im)).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fidelities are symmetric-ish bounded scores in [0, 1], equal to 1 on
    /// identical fields and invariant to global phase.
    #[test]
    fn fidelity_bounds_and_phase_invariance(
        y in arb_cvec(4),
        phase in 0.0..std::f64::consts::TAU,
    ) {
        prop_assume!(y.norm() > 0.1);
        let rotated = y.scale(C64::cis(phase));
        prop_assert!((field_fidelity(&y, &rotated) - 1.0).abs() < 1e-9);
        prop_assert!((power_fidelity(&y, &rotated) - 1.0).abs() < 1e-9);
        let other = CVector::basis(4, 0);
        let f = field_fidelity(&y, &other);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        let p = power_fidelity(&y, &other);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// LM never increases the cost relative to the starting point.
    #[test]
    fn lm_cost_never_increases(
        target in proptest::collection::vec(-2.0..2.0f64, 3),
        start in proptest::collection::vec(-2.0..2.0f64, 3),
    ) {
        let t = target.clone();
        let mut residual = move |p: &RVector| {
            RVector::from_fn(3, |i| (p[i] - t[i]) * (1.0 + 0.3 * p[i] * p[i]))
        };
        let fit = levenberg_marquardt(
            &mut residual,
            &RVector::from_slice(&start),
            &LmSettings { max_iters: 10, ..LmSettings::default() },
        ).unwrap();
        prop_assert!(fit.cost <= fit.initial_cost + 1e-12);
        prop_assert!(fit.params.iter().all(|v| v.is_finite()));
    }

    /// Probe plans cost exactly inputs × settings queries, for any shape.
    #[test]
    fn plan_query_cost(
        seed in 0u64..300,
        random_inputs in 1usize..6,
        num_settings in 1usize..4,
        include_basis in any::<bool>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(3, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let plan = ProbePlan::for_chip(&chip, include_basis, random_inputs, num_settings, &mut rng);
        let expected_inputs = random_inputs + if include_basis { 3 } else { 0 };
        prop_assert_eq!(plan.query_cost(), expected_inputs * num_settings);
        chip.reset_query_count();
        let _ = measure_chip(&chip, &plan);
        prop_assert_eq!(chip.query_count() as usize, plan.query_cost());
    }

    /// Calibrating a chip whose errors are *zero* always returns near-zero
    /// fit cost (the model family contains the truth).
    #[test]
    fn zero_error_chip_fits_exactly(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(3, 2).unwrap();
        let (n_bs, n_ps) = arch.error_slots();
        let chip = FabricatedChip::with_errors(&arch, &ErrorVector::zeros(n_bs, n_ps)).unwrap();
        let settings = CalibrationSettings {
            random_inputs: 3,
            num_settings: 2,
            lm: LmSettings { max_iters: 4, ..LmSettings::default() },
            ..CalibrationSettings::default()
        };
        let out = calibrate(&chip, &settings, &mut rng).unwrap();
        prop_assert!(out.fit_cost < 1e-12, "cost {}", out.fit_cost);
    }

    /// Calibration's fit cost never exceeds the ideal-model residual (LM
    /// starts from zero errors and only improves).
    #[test]
    fn calibration_cost_monotone(seed in 0u64..100, beta in 0.5..3.0f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(3, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(beta), &mut rng);
        let settings = CalibrationSettings {
            random_inputs: 4,
            num_settings: 2,
            lm: LmSettings { max_iters: 5, ..LmSettings::default() },
            ..CalibrationSettings::default()
        };
        let out = calibrate(&chip, &settings, &mut rng).unwrap();
        prop_assert!(out.fit_cost <= out.initial_cost + 1e-12);
    }
}
