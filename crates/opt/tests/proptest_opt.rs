//! Property-based tests of the optimizer contracts.

use proptest::prelude::*;
use rand::SeedableRng;

use photon_linalg::{RMatrix, RVector};
use photon_opt::{
    draw_perturbation, estimate_gradient, lcng_direction, Adam, CmaEs, LcngSettings, MetricSource,
    Optimizer, Perturbation, Sgd, ZoSettings,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SGD with a zero gradient never moves the parameters.
    #[test]
    fn sgd_zero_gradient_is_identity(theta0 in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let mut opt = Sgd::new(0.5);
        let mut theta = RVector::from_slice(&theta0);
        opt.step(&mut theta, &RVector::zeros(4));
        prop_assert_eq!(theta.as_slice(), theta0.as_slice());
    }

    /// One SGD step is exactly θ − η·g for any gradient.
    #[test]
    fn sgd_step_formula(
        theta0 in proptest::collection::vec(-5.0..5.0f64, 3),
        grad in proptest::collection::vec(-5.0..5.0f64, 3),
        lr in 0.001..1.0f64,
    ) {
        let mut opt = Sgd::new(lr);
        let mut theta = RVector::from_slice(&theta0);
        opt.step(&mut theta, &RVector::from_slice(&grad));
        for i in 0..3 {
            prop_assert!((theta[i] - (theta0[i] - lr * grad[i])).abs() < 1e-12);
        }
    }

    /// Adam's per-coordinate step magnitude is bounded by roughly the
    /// learning rate (the bounded-update property).
    #[test]
    fn adam_update_is_bounded(
        grads in proptest::collection::vec(
            proptest::collection::vec(-100.0..100.0f64, 3), 1..10),
        lr in 0.001..0.5f64,
    ) {
        let mut opt = Adam::new(lr);
        let mut theta = RVector::zeros(3);
        for g in &grads {
            let before = theta.clone();
            opt.step(&mut theta, &RVector::from_slice(g));
            for i in 0..3 {
                prop_assert!(
                    (theta[i] - before[i]).abs() <= 3.0 * lr + 1e-9,
                    "step {} exceeded bound", (theta[i] - before[i]).abs()
                );
            }
        }
    }

    /// The ZO estimate on a *linear* loss is (in expectation) the gradient;
    /// per-draw, it always lies in the span of the probes, and the
    /// directional derivative along the estimate is non-negative.
    #[test]
    fn zo_estimate_positively_correlates_on_linear_loss(
        g in proptest::collection::vec(-2.0..2.0f64, 4),
        seed in 0u64..500,
    ) {
        let gvec = RVector::from_slice(&g);
        prop_assume!(gvec.norm() > 0.1);
        let gv = gvec.clone();
        let mut loss = move |t: &RVector| t.dot(&gv).unwrap();
        let theta = RVector::zeros(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let settings = ZoSettings { q: 64, mu: 1e-6, lambda: 1.0 };
        let est = estimate_gradient(&mut loss, &theta, 0.0, &settings,
                                    &Perturbation::Gaussian, &mut rng);
        // ⟨ĝ, g⟩ > 0 with overwhelming probability at Q=64.
        prop_assert!(est.gradient.dot(&gvec).unwrap() > 0.0);
    }

    /// Every perturbation family produces vectors of the right length, and
    /// coordinate probes are exactly one-hot.
    #[test]
    fn perturbation_shapes(seed in 0u64..500, n in 1usize..20, idx in 0usize..50) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for pert in [Perturbation::Gaussian, Perturbation::Bernoulli] {
            let d = draw_perturbation(&pert, n, idx, &mut rng);
            prop_assert_eq!(d.len(), n);
        }
        let c = draw_perturbation(&Perturbation::Coordinate { offset: 3 }, n, idx, &mut rng);
        prop_assert_eq!(c.iter().filter(|&&x| x != 0.0).count(), 1);
        prop_assert!((c.norm() - 1.0).abs() < 1e-15);
    }

    /// On a convex quadratic, a damped step along the LCNG direction never
    /// increases the loss (for small enough step).
    #[test]
    fn lcng_direction_is_descent_on_quadratics(
        diag in proptest::collection::vec(0.5..8.0f64, 4),
        lin in proptest::collection::vec(-2.0..2.0f64, 4),
        seed in 0u64..300,
    ) {
        let d = diag.clone();
        let l = lin.clone();
        let f = move |t: &RVector| -> f64 {
            (0..4).map(|i| 0.5 * d[i] * t[i] * t[i] - l[i] * t[i]).sum()
        };
        let gnorm: f64 = lin.iter().map(|x| x * x).sum::<f64>();
        prop_assume!(gnorm > 0.01);
        let mut loss = f.clone();
        let theta = RVector::zeros(4);
        let base = loss(&theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut settings = LcngSettings::for_dimension(4, 12);
        settings.zo.mu = 1e-6;
        let step = lcng_direction(&mut loss, &theta, base, &settings,
                                  &Perturbation::Gaussian, &MetricSource::Identity,
                                  &mut rng).unwrap();
        prop_assume!(step.direction.norm() > 1e-9);
        let mut trial = theta.clone();
        trial.axpy(0.05 / step.direction.norm(), &step.direction);
        prop_assert!(f(&trial) <= base + 1e-9, "{} > {base}", f(&trial));
    }

    /// CMA-ES never loses its best-so-far (monotone elitism of the record).
    #[test]
    fn cma_best_is_monotone(seed in 0u64..200, gens in 2usize..10) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut es = CmaEs::with_population(&RVector::ones(3), 0.5, 8);
        let mut prev = f64::INFINITY;
        for _ in 0..gens {
            let xs = es.ask(&mut rng);
            let losses: Vec<f64> = xs.iter().map(|x| x.norm_sqr()).collect();
            es.tell(&xs, &losses).unwrap();
            let best = es.best().unwrap().1;
            prop_assert!(best <= prev + 1e-12);
            prev = best;
        }
    }

    /// Shaped perturbations with an identity covariance factor reduce to
    /// plain Gaussian statistics (variance ≈ 1 per coordinate).
    #[test]
    fn shaped_identity_matches_gaussian(seed in 0u64..100) {
        use photon_linalg::RCholesky;
        let chol = RCholesky::new(&RMatrix::identity(3)).unwrap();
        let segments = [(0usize, chol)];
        let pert = Perturbation::Shaped { segments: &segments };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut acc = 0.0;
        let trials = 600;
        for _ in 0..trials {
            let d = draw_perturbation(&pert, 3, 0, &mut rng);
            acc += d.norm_sqr();
        }
        let mean_sq = acc / trials as f64;
        prop_assert!((mean_sq - 3.0).abs() < 0.6, "E‖d‖² = {mean_sq}");
    }
}
