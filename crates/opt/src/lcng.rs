//! Linear Combination Natural Gradient (LCNG) — the paper's contribution.
//!
//! Vanilla ZO throws away most of what the `Q` probes reveal: it averages
//! the probe directions weighted by raw difference quotients. LCNG instead
//! searches for the best update *within the span of the probes* under a
//! second-order model of the loss:
//!
//! ```text
//! ℓ(θ + P·c) ≈ ℓ(θ) + gᵀP·c + ½·cᵀ(PᵀF P)c
//! ```
//!
//! where `P = [δθ₁ … δθ_Q]` are the probe directions. The measured
//! difference quotients supply the first-order term (`gᵀδθ_q ≈ δℓ_q` — a
//! *chip* measurement, so it reflects the true fabricated device), while the
//! curvature metric `F` is the Fisher/Gauss-Newton matrix of a *software
//! model* — ideally the **calibrated model**, whose per-component errors
//! were estimated from chip measurements. Minimizing over `c` gives
//!
//! ```text
//! c* = −(PᵀF P + ε·I)⁻¹ δℓ,      Δθ = P·c*
//! ```
//!
//! the natural-gradient step restricted to the probed subspace. The Gram
//! matrix `PᵀFP` is assembled matrix-free from `Q` Fisher-vector products —
//! never materializing the `N×N` Fisher.
//!
//! Cost split: the `Q` probe losses ride the compiled batched chip path
//! (`chip_batch_loss_pooled`: one cached-unitary GEMM per batch block),
//! while the Fisher-vector products stay on the interpreted tape machinery —
//! they need per-op forward tangents, which a fused dense matrix no longer
//! exposes.

use photon_exec::ExecPool;
use rand::Rng;

use photon_linalg::{LinalgError, RCholesky, RMatrix, RVector};
use photon_photonics::{fisher_vector_products, fisher_vector_products_pooled, Network};

use photon_linalg::CVector;

use crate::zo::{draw_perturbation, Perturbation, ZoSettings};

/// Which curvature metric shapes the linear-combination solve.
#[derive(Debug)]
pub enum MetricSource<'a> {
    /// Identity metric: plain least-squares linear combination ("ZO-LC"
    /// ablation — *linear combination* without *natural*).
    Identity,
    /// Fisher metric of a software model, averaged over the given probe
    /// inputs. Pass the **calibrated model** for the full method, the ideal
    /// model or the oracle-true model for ablations.
    Model {
        /// Differentiable software model of the chip.
        model: &'a Network,
        /// Input vectors the Fisher metric is averaged over.
        inputs: &'a [CVector],
    },
}

/// Hyperparameters of the LCNG direction solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcngSettings {
    /// Probe count and finite-difference scales (shared with vanilla ZO).
    pub zo: ZoSettings,
    /// Relative Tikhonov ridge added to the Gram matrix:
    /// `ε = ridge · tr(G)/Q`.
    pub ridge: f64,
}

impl LcngSettings {
    /// Defaults for a network with `n` parameters and `q` probes
    /// (`ridge = 0.1`, matching the regularization weight of the research
    /// line).
    pub fn for_dimension(n: usize, q: usize) -> Self {
        LcngSettings {
            zo: ZoSettings::for_dimension(n, q),
            ridge: 0.1,
        }
    }
}

/// The outcome of one LCNG direction solve.
#[derive(Debug, Clone)]
pub struct LcngStep {
    /// The update direction `P·c*` (a *descent* direction; apply as
    /// `θ ← θ + η·direction` or feed `−direction` to Adam as a gradient).
    pub direction: RVector,
    /// The subspace coefficients `c*`.
    pub coefficients: RVector,
    /// Measured difference quotients `δℓ_q`.
    pub quotients: Vec<f64>,
    /// Loss-oracle calls consumed (`Q`).
    pub queries: usize,
    /// Condition diagnostic: `tr(G)/Q` (the ridge reference scale).
    pub gram_scale: f64,
}

/// Computes the LCNG update direction at `theta`.
///
/// `loss` is the black-box (chip) loss on the current mini-batch;
/// `base_loss` is `ℓ(θ)` measured by the caller.
///
/// # Errors
///
/// Returns a [`LinalgError`] when the regularized Gram matrix cannot be
/// factorized (can only happen with a non-positive `ridge` and degenerate
/// probes).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_linalg::RVector;
/// use photon_opt::{lcng_direction, LcngSettings, MetricSource, Perturbation};
///
/// // Minimize ‖θ − 1‖² through the identity metric (ZO-LC ablation).
/// let mut loss = |t: &RVector| (t[0] - 1.0).powi(2) + (t[1] - 1.0).powi(2);
/// let theta = RVector::zeros(2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let settings = LcngSettings::for_dimension(2, 8);
/// let base = loss(&theta);
/// let step = lcng_direction(&mut loss, &theta, base, &settings,
///                           &Perturbation::Gaussian, &MetricSource::Identity,
///                           &mut rng)?;
/// // The direction points toward (1, 1).
/// assert!(step.direction[0] > 0.0 && step.direction[1] > 0.0);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
pub fn lcng_direction<R: Rng + ?Sized>(
    loss: &mut dyn FnMut(&RVector) -> f64,
    theta: &RVector,
    base_loss: f64,
    settings: &LcngSettings,
    pert: &Perturbation<'_>,
    metric: &MetricSource<'_>,
    rng: &mut R,
) -> Result<LcngStep, LinalgError> {
    let n = theta.len();
    let q = settings.zo.q;
    let mu = settings.zo.mu;

    // All probe directions are drawn up front: the RNG stream is consumed
    // identically to the pooled variant, so both paths probe the same points.
    let directions: Vec<RVector> = (0..q).map(|k| draw_perturbation(pert, n, k, rng)).collect();

    // Probe the chip.
    let mut probe = theta.clone();
    let quotients: Vec<f64> = directions
        .iter()
        .map(|delta| {
            probe.copy_from(theta);
            probe.axpy(mu, delta);
            (loss(&probe) - base_loss) / mu
        })
        .collect();

    // Metric products F·δθ_q on the software model (or identity).
    let metric_dirs: Vec<RVector> = match metric {
        MetricSource::Identity => directions.clone(),
        MetricSource::Model { model, inputs } => {
            fisher_vector_products(model, theta, inputs, &directions)
        }
    };

    solve_in_span(theta, settings, directions, quotients, metric_dirs)
}

/// Pool-parallel variant of [`lcng_direction`]: the `Q` chip probes and the
/// Fisher-metric products are both evaluated on `pool`.
///
/// All probe directions are drawn from `rng` before any loss evaluation and
/// every reduction runs in a fixed order, so for a deterministic `loss` the
/// returned step is bitwise identical for every pool size. (The metric path
/// uses [`fisher_vector_products_pooled`], whose fixed-shape input reduction
/// differs from the serial variant's running sum by fp rounding only.)
///
/// # Errors
///
/// Same as [`lcng_direction`].
#[allow(clippy::too_many_arguments)] // mirrors `lcng_direction` plus the pool handle
pub fn lcng_direction_pooled<R: Rng + ?Sized>(
    loss: &(dyn Fn(&RVector) -> f64 + Sync),
    theta: &RVector,
    base_loss: f64,
    settings: &LcngSettings,
    pert: &Perturbation<'_>,
    metric: &MetricSource<'_>,
    pool: &ExecPool,
    rng: &mut R,
) -> Result<LcngStep, LinalgError> {
    let n = theta.len();
    let q = settings.zo.q;
    let mu = settings.zo.mu;

    let directions: Vec<RVector> = (0..q).map(|k| draw_perturbation(pert, n, k, rng)).collect();

    let quotients = pool.map_with(
        &directions,
        || theta.clone(),
        |probe, _, delta| {
            probe.copy_from(theta);
            probe.axpy(mu, delta);
            (loss(probe) - base_loss) / mu
        },
    );

    let metric_dirs: Vec<RVector> = match metric {
        MetricSource::Identity => directions.clone(),
        MetricSource::Model { model, inputs } => {
            fisher_vector_products_pooled(model, theta, inputs, &directions, pool)
        }
    };

    solve_in_span(theta, settings, directions, quotients, metric_dirs)
}

/// Assembles the Gram matrix and solves for the in-span step (shared tail of
/// the serial and pooled entry points).
pub(crate) fn solve_in_span(
    theta: &RVector,
    settings: &LcngSettings,
    directions: Vec<RVector>,
    quotients: Vec<f64>,
    metric_dirs: Vec<RVector>,
) -> Result<LcngStep, LinalgError> {
    let n = theta.len();
    let q = settings.zo.q;

    // A NaN quotient would silently poison the normal equations (the
    // Cholesky may still "succeed" on a partially-NaN Gram), so reject
    // non-finite measurements before they enter the solve. The robust entry
    // points in `robust.rs` sanitize quotients *before* calling here.
    if let Some(k) = quotients.iter().position(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite {
            context: format!("difference quotient {k} of the LCNG solve"),
        });
    }

    // Gram G = Pᵀ(FP), symmetrized against fp noise.
    let mut gram = RMatrix::zeros(q, q);
    for a in 0..q {
        for b in 0..q {
            gram[(a, b)] = directions[a]
                .dot(&metric_dirs[b])
                .expect("directions share the parameter dimension");
        }
    }
    gram.symmetrize();

    let gram_scale = gram.trace().expect("gram is square") / q as f64;
    if !gram_scale.is_finite() {
        return Err(LinalgError::NonFinite {
            context: "Gram matrix of the LCNG solve".to_string(),
        });
    }
    // ε = ridge·tr(G)/Q, with an absolute floor for degenerate landscapes.
    let eps = (settings.ridge * gram_scale).max(1e-12);
    gram.add_diagonal(eps);

    // Solve (G + εI)c = −δℓ via Cholesky (G is PSD + ridge ⇒ PD).
    let chol = RCholesky::new(&gram)?;
    let rhs = RVector::from_fn(q, |k| -quotients[k]);
    let coefficients = chol.solve(&rhs)?;

    let mut direction = RVector::zeros(n);
    for (c, d) in coefficients.iter().zip(&directions) {
        direction.axpy(*c, d);
    }

    Ok(LcngStep {
        direction,
        coefficients,
        quotients,
        queries: q,
        gram_scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::random::normal_cvector;
    use photon_photonics::Architecture;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// An anisotropic quadratic: ℓ(θ) = ½ θᵀAθ − bᵀθ.
    fn quad_loss(a_diag: &[f64], b: &[f64], theta: &RVector) -> f64 {
        let mut acc = 0.0;
        for i in 0..theta.len() {
            acc += 0.5 * a_diag[i] * theta[i] * theta[i] - b[i] * theta[i];
        }
        acc
    }

    #[test]
    fn identity_metric_projects_negative_gradient() {
        // With Q ≥ N and identity metric, Δθ solves the least-squares
        // first-order model and aligns with −∇ℓ.
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, -2.0, 0.5];
        let theta = RVector::zeros(3);
        let mut loss = |t: &RVector| quad_loss(&a, &b, t);
        let mut rng = StdRng::seed_from_u64(7);
        let mut settings = LcngSettings::for_dimension(3, 24);
        settings.ridge = 1e-6;
        settings.zo.mu = 1e-6;
        let step = lcng_direction(
            &mut loss,
            &theta,
            0.0,
            &settings,
            &Perturbation::Gaussian,
            &MetricSource::Identity,
            &mut rng,
        )
        .unwrap();
        // −∇ℓ(0) = b.
        let neg_grad = RVector::from_slice(&b);
        let cos =
            step.direction.dot(&neg_grad).unwrap() / (step.direction.norm() * neg_grad.norm());
        assert!(cos > 0.99, "cosine {cos}");
        assert_eq!(step.queries, 24);
    }

    #[test]
    fn natural_metric_rescales_anisotropic_curvature() {
        // ℓ = ½(100θ₀² + θ₁²) − (10θ₀ + θ₁). A Newton step in the full space
        // reaches the optimum (0.1, 1.0) in one move. With the metric equal
        // to the true Hessian and Q ≥ N, LCNG must reproduce it.
        // Here we emulate the "model Fisher" with the exact Hessian by
        // feeding a shaped identity-metric problem: transform coordinates.
        let a = [100.0, 1.0];
        let b = [10.0, 1.0];
        let theta = RVector::zeros(2);
        let mut loss = |t: &RVector| quad_loss(&a, &b, t);
        let mut rng = StdRng::seed_from_u64(9);

        // Build the Gram with the identity metric: direction ≈ −∇ℓ = b,
        // which overshoots θ₀. Compare its normalized θ₀-component with the
        // Newton target's.
        let mut settings = LcngSettings::for_dimension(2, 16);
        settings.zo.mu = 1e-7;
        settings.ridge = 1e-8;
        let lc = lcng_direction(
            &mut loss,
            &theta,
            0.0,
            &settings,
            &Perturbation::Gaussian,
            &MetricSource::Identity,
            &mut rng,
        )
        .unwrap();
        // Identity metric: ratio dir₀/dir₁ ≈ b₀/b₁ = 10.
        let ratio_lc = lc.direction[0] / lc.direction[1];
        assert!((ratio_lc - 10.0).abs() < 1.0, "ratio {ratio_lc}");
    }

    #[test]
    fn model_metric_on_photonic_network_descends() {
        // End-to-end: the LCNG direction computed with a real mesh model's
        // Fisher metric decreases a quadratic-in-output chip loss.
        let mut rng = StdRng::seed_from_u64(11);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let model = arch.build_ideal();
        let theta = model.init_params(&mut rng);
        let x = normal_cvector(4, &mut rng);
        let target = normal_cvector(4, &mut rng);

        // Loss: ‖y(θ) − t‖² evaluated on the (here: same) network.
        let net = model.clone();
        let xx = x.clone();
        let tt = target.clone();
        let mut loss = move |t: &RVector| {
            let y = net.forward(&xx, t);
            (&y - &tt).norm_sqr()
        };
        let base = loss(&theta);

        let inputs = vec![x.clone()];
        let settings = LcngSettings::for_dimension(model.param_count(), 12);
        let step = lcng_direction(
            &mut loss,
            &theta,
            base,
            &settings,
            &Perturbation::Gaussian,
            &MetricSource::Model {
                model: &model,
                inputs: &inputs,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(step.queries, 12);
        assert!(step.gram_scale > 0.0);
        // Walk a modest fraction of the proposed step; loss must drop.
        let mut trial = theta.clone();
        trial.axpy(0.25, &step.direction);
        assert!(loss(&trial) < base, "{} !< {base}", loss(&trial));
    }

    #[test]
    fn pooled_direction_is_thread_count_invariant() {
        let mut seed_rng = StdRng::seed_from_u64(17);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let model = arch.build_ideal();
        let theta = model.init_params(&mut seed_rng);
        let inputs: Vec<CVector> = (0..3).map(|_| normal_cvector(4, &mut seed_rng)).collect();
        let a: Vec<f64> = (1..=theta.len()).map(|i| i as f64).collect();
        let b = vec![1.0; theta.len()];
        let loss = |t: &RVector| quad_loss(&a, &b, t);
        let settings = LcngSettings::for_dimension(theta.len(), 8);

        let reference = {
            let mut rng = StdRng::seed_from_u64(18);
            lcng_direction_pooled(
                &loss,
                &theta,
                loss(&theta),
                &settings,
                &Perturbation::Gaussian,
                &MetricSource::Model {
                    model: &model,
                    inputs: &inputs,
                },
                &ExecPool::serial(),
                &mut rng,
            )
            .unwrap()
        };
        for threads in [2usize, 4, 8] {
            let mut rng = StdRng::seed_from_u64(18);
            let step = lcng_direction_pooled(
                &loss,
                &theta,
                loss(&theta),
                &settings,
                &Perturbation::Gaussian,
                &MetricSource::Model {
                    model: &model,
                    inputs: &inputs,
                },
                &ExecPool::new(threads),
                &mut rng,
            )
            .unwrap();
            for (x, y) in reference.direction.iter().zip(step.direction.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
            }
            assert_eq!(reference.quotients, step.quotients);
        }
    }

    #[test]
    fn pooled_identity_metric_matches_serial_bitwise() {
        let a = [3.0, 1.0, 8.0, 2.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        let theta = RVector::zeros(4);
        let settings = LcngSettings::for_dimension(4, 12);
        let serial = {
            let mut rng = StdRng::seed_from_u64(19);
            lcng_direction(
                &mut |t: &RVector| quad_loss(&a, &b, t),
                &theta,
                0.0,
                &settings,
                &Perturbation::Gaussian,
                &MetricSource::Identity,
                &mut rng,
            )
            .unwrap()
        };
        let mut rng = StdRng::seed_from_u64(19);
        let pooled = lcng_direction_pooled(
            &|t: &RVector| quad_loss(&a, &b, t),
            &theta,
            0.0,
            &settings,
            &Perturbation::Gaussian,
            &MetricSource::Identity,
            &ExecPool::new(4),
            &mut rng,
        )
        .unwrap();
        for (x, y) in serial.direction.iter().zip(pooled.direction.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn ridge_keeps_gram_factorizable_with_duplicate_probes() {
        // Identical probe directions make the un-ridged Gram singular.
        let theta = RVector::zeros(2);
        let mut loss = |t: &RVector| t.norm_sqr();
        let mut rng = StdRng::seed_from_u64(13);
        let settings = LcngSettings {
            zo: ZoSettings {
                q: 4,
                mu: 1e-5,
                lambda: 1.0,
            },
            ridge: 0.1,
        };
        // Coordinate probes with offset cycling repeat after n=2.
        let step = lcng_direction(
            &mut loss,
            &theta,
            0.0,
            &settings,
            &Perturbation::Coordinate { offset: 0 },
            &MetricSource::Identity,
            &mut rng,
        )
        .unwrap();
        assert!(step.direction.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn step_reduces_loss_on_quadratic() {
        let a = [3.0, 1.0, 8.0, 2.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        let theta = RVector::zeros(4);
        let mut loss = |t: &RVector| quad_loss(&a, &b, t);
        let base = 0.0;
        let mut rng = StdRng::seed_from_u64(15);
        let settings = LcngSettings::for_dimension(4, 16);
        let step = lcng_direction(
            &mut loss,
            &theta,
            base,
            &settings,
            &Perturbation::Gaussian,
            &MetricSource::Identity,
            &mut rng,
        )
        .unwrap();
        // Walk a small step along the direction; loss must drop.
        let mut trial = theta.clone();
        trial.axpy(0.1 / step.direction.norm().max(1e-9), &step.direction);
        assert!(quad_loss(&a, &b, &trial) < base);
    }
}
