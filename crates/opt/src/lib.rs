//! # photon-opt
//!
//! Optimizers for black-box ONN training:
//!
//! - first-order update rules ([`Sgd`], [`Adam`]) fed by exact or surrogate
//!   gradients;
//! - the vanilla zeroth-order estimator ([`estimate_gradient`]) with
//!   Gaussian / Bernoulli / coordinate-wise / covariance-shaped probes;
//! - **the paper's contribution**: the linear combination natural gradient
//!   ([`lcng_direction`]) — a subspace Newton/natural step whose first-order
//!   term comes from chip measurements and whose curvature comes from a
//!   (calibrated) software model's Fisher metric;
//! - block natural-gradient preconditioning and layered covariance shaping
//!   ([`BlockNaturalPreconditioner`], [`layered_sigma_segments`]) for the
//!   ablation grid;
//! - a from-scratch [`CmaEs`] baseline;
//! - a log-uniform [`random_search`] tuner standing in for Optuna.
//!
//! # Examples
//!
//! Estimate a ZO gradient for a two-parameter toy loss:
//!
//! ```
//! use rand::SeedableRng;
//! use photon_linalg::RVector;
//! use photon_opt::{estimate_gradient, Perturbation, ZoSettings};
//!
//! let mut loss = |t: &RVector| (t[0] - 1.0).powi(2) + t[1] * t[1];
//! let theta = RVector::zeros(2);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let base = loss(&theta);
//! let est = estimate_gradient(
//!     &mut loss, &theta, base,
//!     &ZoSettings { q: 500, mu: 1e-5, lambda: 1.0 },
//!     &Perturbation::Gaussian, &mut rng,
//! );
//! assert!(est.gradient[0] < 0.0); // points downhill toward θ₀ = 1
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cmaes;
mod first_order;
mod lcng;
mod natural;
mod robust;
mod tuning;
mod zo;

pub use cmaes::{penalize_non_finite, CmaEs, CmaEsState};
pub use first_order::{Adam, AdamState, Optimizer, Sgd};
pub use lcng::{lcng_direction, lcng_direction_pooled, LcngSettings, LcngStep, MetricSource};
pub use robust::{
    estimate_gradient_robust_pooled, lcng_direction_robust_pooled, retry_non_finite, RobustEval,
    RobustStats,
};
pub use natural::{layered_sigma_segments, sigma_from_fisher, BlockNaturalPreconditioner};
pub use tuning::{random_search, tune, LogUniform, Trial};
pub use zo::{
    draw_perturbation, estimate_gradient, estimate_gradient_pooled, Perturbation, ZoEstimate,
    ZoSettings,
};
