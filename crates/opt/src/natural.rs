//! Block-diagonal natural-gradient preconditioning and covariance-shaped
//! ("layered") perturbation sampling.
//!
//! Two consumers:
//!
//! - the **ZO-NG ablation** ("natural" without "linear combination"):
//!   precondition a vanilla ZO gradient estimate with the per-module Fisher
//!   blocks of a software model, `d_u = (F_u + ρ·I)⁻¹ ĝ_u`;
//! - the **layered-perturbation extension** (following the successor work of
//!   the same research line): sample probe directions from
//!   `N(0, Σ_u)` with `Σ_u = (1 + ρ)(F_u + ρ·I)⁻¹` on layered modules, so
//!   the induced output perturbations become near-isotropic.

use photon_linalg::CVector;
use photon_linalg::{LinalgError, RCholesky, RMatrix, RVector};
use photon_photonics::{module_fisher_block, Network};

/// Per-module Fisher blocks of a software model, with damping.
///
/// Built every `T_ud` iterations (it is the expensive part) and applied
/// cheaply to every subsequent gradient estimate.
#[derive(Debug)]
pub struct BlockNaturalPreconditioner {
    blocks: Vec<(std::ops::Range<usize>, RCholesky)>,
    dim: usize,
}

impl BlockNaturalPreconditioner {
    /// Assembles damped per-module Fisher blocks `F_u + ρ·I` for every
    /// module of `model` at parameters `theta`, averaged over `inputs`.
    ///
    /// `layered_only` restricts preconditioning to layered (mesh) modules —
    /// element-wise modules already have (near-)diagonal Fisher blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`LinalgError`] when a damped block is not positive
    /// definite (cannot happen for `rho > 0`).
    ///
    /// # Panics
    ///
    /// Panics when `inputs` is empty or `rho < 0`.
    pub fn assemble(
        model: &Network,
        theta: &RVector,
        inputs: &[CVector],
        rho: f64,
        layered_only: bool,
    ) -> Result<Self, LinalgError> {
        assert!(rho >= 0.0, "damping must be non-negative");
        assert!(!inputs.is_empty(), "need at least one Fisher input");
        let mut blocks = Vec::new();
        // Propagate each Fisher input through the earlier modules so every
        // block sees its *own* input distribution.
        let mut states: Vec<CVector> = inputs.to_vec();
        for (i, module) in model.modules().iter().enumerate() {
            let range = model.module_param_range(i);
            let theta_u = &theta.as_slice()[range.clone()];
            if !layered_only || module.is_layered() {
                let mut f = module_fisher_block(module.as_ref(), theta_u, &states);
                f.add_diagonal(rho);
                blocks.push((range.clone(), RCholesky::new(&f)?));
            }
            for s in &mut states {
                *s = module.forward(s, theta_u);
            }
        }
        Ok(BlockNaturalPreconditioner {
            blocks,
            dim: theta.len(),
        })
    }

    /// Applies the block-wise inverse: `d_u = (F_u + ρI)⁻¹ g_u` on covered
    /// blocks, identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics when `grad.len()` differs from the assembly dimension.
    pub fn apply(&self, grad: &RVector) -> RVector {
        assert_eq!(grad.len(), self.dim, "gradient dimension mismatch");
        let mut out = grad.clone();
        for (range, chol) in &self.blocks {
            let g_u = grad.subvector(range.start, range.len());
            let d_u = chol.solve(&g_u).expect("block dimension fixed at assembly");
            out.set_subvector(range.start, &d_u);
        }
        out
    }

    /// Number of preconditioned blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// Covariance-shaped perturbation sampler for layered modules:
/// `Σ_u = (1 + ρ)·(F_u + ρ·I)⁻¹` per layered module, identity elsewhere.
///
/// Returns `(start index, Cholesky of Σ_u)` segments compatible with
/// [`crate::Perturbation::Shaped`].
///
/// # Errors
///
/// Returns a [`LinalgError`] when a shaped covariance cannot be factorized
/// (cannot happen for `rho > 0`).
///
/// # Panics
///
/// Panics when `inputs` is empty or `rho <= 0`.
pub fn layered_sigma_segments(
    model: &Network,
    theta: &RVector,
    inputs: &[CVector],
    rho: f64,
) -> Result<Vec<(usize, RCholesky)>, LinalgError> {
    assert!(rho > 0.0, "rho must be positive");
    assert!(!inputs.is_empty(), "need at least one Fisher input");
    let mut segments = Vec::new();
    let mut states: Vec<CVector> = inputs.to_vec();
    for (i, module) in model.modules().iter().enumerate() {
        let range = model.module_param_range(i);
        let theta_u = &theta.as_slice()[range.clone()];
        if module.is_layered() {
            let mut f = module_fisher_block(module.as_ref(), theta_u, &states);
            f.add_diagonal(rho);
            let sigma = f.inverse()?.scale(1.0 + rho);
            // Symmetrize against fp drift before factorizing.
            let mut sym = sigma;
            sym.symmetrize();
            segments.push((range.start, RCholesky::new(&sym)?));
        }
        for s in &mut states {
            *s = module.forward(s, theta_u);
        }
    }
    Ok(segments)
}

/// Dense damped-inverse covariance for a single Fisher block — the shape
/// plotted in the diagnostics figure.
///
/// # Errors
///
/// [`LinalgError`] when `f + rho·I` is singular (requires `rho ≤ 0`).
pub fn sigma_from_fisher(f: &RMatrix, rho: f64) -> Result<RMatrix, LinalgError> {
    let mut damped = f.clone();
    damped.add_diagonal(rho);
    let mut sigma = damped.inverse()?.scale(1.0 + rho);
    sigma.symmetrize();
    Ok(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::random::{normal_cvector, normal_rvector};
    use photon_photonics::Architecture;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network, RVector, Vec<CVector>, StdRng) {
        let mut rng = StdRng::seed_from_u64(41);
        let net = Architecture::two_mesh_classifier(4, 4)
            .unwrap()
            .build_ideal();
        let theta = net.init_params(&mut rng);
        let inputs: Vec<CVector> = (0..4).map(|_| normal_cvector(4, &mut rng)).collect();
        (net, theta, inputs, rng)
    }

    #[test]
    fn assemble_covers_layered_modules() {
        let (net, theta, inputs, _) = setup();
        let pre = BlockNaturalPreconditioner::assemble(&net, &theta, &inputs, 0.1, true).unwrap();
        assert_eq!(pre.block_count(), 2); // the two Clements meshes
        let all = BlockNaturalPreconditioner::assemble(&net, &theta, &inputs, 0.1, false).unwrap();
        assert_eq!(all.block_count(), 5);
    }

    #[test]
    fn apply_is_identity_outside_blocks() {
        let (net, theta, inputs, mut rng) = setup();
        let pre = BlockNaturalPreconditioner::assemble(&net, &theta, &inputs, 0.1, true).unwrap();
        let g = normal_rvector(net.param_count(), &mut rng);
        let d = pre.apply(&g);
        // Non-layered coordinates (PSdiag, modReLU) pass through unchanged.
        for i in net.module_param_range(1).chain(net.module_param_range(2)) {
            assert_eq!(d[i], g[i], "coordinate {i} should be untouched");
        }
        // Layered coordinates change.
        let mesh = net.module_param_range(0);
        let changed = mesh.clone().any(|i| (d[i] - g[i]).abs() > 1e-12);
        assert!(changed);
    }

    #[test]
    fn preconditioner_solves_block_system() {
        // apply(F_u·v + ρ·v) ≈ v on a layered block.
        let (net, theta, inputs, mut rng) = setup();
        let rho = 0.05;
        let pre = BlockNaturalPreconditioner::assemble(&net, &theta, &inputs, rho, true).unwrap();
        let range = net.module_param_range(0);
        let module = &net.modules()[0];
        let mut f = module_fisher_block(module.as_ref(), &theta.as_slice()[range.clone()], &inputs);
        f.add_diagonal(rho);
        let v = normal_rvector(range.len(), &mut rng);
        let fv = f.mul_vec(&v).unwrap();
        let mut g = RVector::zeros(net.param_count());
        g.set_subvector(range.start, &fv);
        let d = pre.apply(&g);
        let d_u = d.subvector(range.start, range.len());
        assert!((&d_u - &v).max_abs() < 1e-8);
    }

    #[test]
    fn sigma_segments_cover_meshes() {
        let (net, theta, inputs, _) = setup();
        let segs = layered_sigma_segments(&net, &theta, &inputs, 0.1).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0, net.module_param_range(0).start);
        assert_eq!(segs[1].0, net.module_param_range(3).start);
        // Factor dims match the mesh parameter counts.
        assert_eq!(segs[0].1.dim(), net.module_param_range(0).len());
    }

    #[test]
    fn sigma_from_fisher_inverts() {
        let f = RMatrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]);
        let rho = 0.1;
        let sigma = sigma_from_fisher(&f, rho).unwrap();
        // Σ·(F + ρI) = (1+ρ)·I.
        let mut damped = f.clone();
        damped.add_diagonal(rho);
        let prod = sigma.mul_mat(&damped).unwrap();
        let expected = RMatrix::identity(2).scale(1.0 + rho);
        assert!((&prod - &expected).max_abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least one Fisher input")]
    fn empty_inputs_panics() {
        let (net, theta, _, _) = setup();
        let _ = BlockNaturalPreconditioner::assemble(&net, &theta, &[], 0.1, true);
    }
}
