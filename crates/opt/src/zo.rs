//! Zeroth-order gradient estimation: the black-box workhorse.
//!
//! Given only loss evaluations `ℓ(θ)` (chip queries), the estimator probes
//! `Q` random directions and forms
//!
//! ```text
//! ĝ = (λ/Q) Σ_q δℓ_q · δθ_q,    δℓ_q = [ℓ(θ + μ·δθ_q) − ℓ(θ)] / μ
//! ```
//!
//! Perturbation families: Gaussian (`N(0, I)`), Bernoulli sign vectors,
//! coordinate-wise one-hot probes, and covariance-shaped Gaussian draws
//! (used by the layered-perturbation extension).
//!
//! The loss closure is opaque to the estimator; in the training loop it is
//! `chip_batch_loss_pooled`, which evaluates each probe's batch through the
//! compiled batched chip path (one cached-unitary GEMM per block), so the
//! per-probe cost is `O(ops·N) + O(N²·B)` rather than `O(ops·B)`.

use photon_exec::ExecPool;
use rand::Rng;

use photon_linalg::random::{normal_rvector, sample_gaussian};
use photon_linalg::{RCholesky, RVector};

/// Hyperparameters of the finite-difference ZO estimator.
///
/// The defaults follow the research line: `Q = K` (set by the caller),
/// `λ = 1/N`, `μ = 0.001/√N`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoSettings {
    /// Number of probe directions per estimate.
    pub q: usize,
    /// Finite-difference smoothing step `μ`.
    pub mu: f64,
    /// Estimate scale `λ`.
    pub lambda: f64,
}

impl ZoSettings {
    /// The paper-line defaults for a network with `n` parameters and `q`
    /// probes: `μ = 0.001/√N`, `λ = 1/N`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `q == 0`.
    pub fn for_dimension(n: usize, q: usize) -> Self {
        assert!(n > 0, "parameter count must be positive");
        assert!(q > 0, "need at least one probe direction");
        ZoSettings {
            q,
            mu: 1e-3 / (n as f64).sqrt(),
            lambda: 1.0 / n as f64,
        }
    }
}

/// How probe directions are drawn.
#[derive(Debug)]
pub enum Perturbation<'a> {
    /// `δθ_q ~ N(0, I_N)` — the conventional choice.
    Gaussian,
    /// Independent `±1` signs (Bernoulli / Rademacher probing).
    Bernoulli,
    /// One-hot coordinate probes cycling through the coordinates starting
    /// at the given offset.
    Coordinate {
        /// First coordinate to probe this round.
        offset: usize,
    },
    /// Covariance-shaped Gaussian `δθ ~ N(0, Σ)` given per-segment Cholesky
    /// factors `(start index, factor)`; unlisted coordinates use `N(0, 1)`.
    Shaped {
        /// `(start, L)` pairs: coordinates `start..start+L.dim()` are drawn
        /// jointly from `N(0, L·Lᵀ)`.
        segments: &'a [(usize, RCholesky)],
    },
}

impl Perturbation<'_> {
    /// When probe `index` of an `n`-dimensional draw is a one-hot basis
    /// vector, the coordinate it perturbs; `None` for dense families.
    ///
    /// Dense probe construction (`probe = θ + μ·δ`) touches every
    /// coordinate with a `+ μ·0.0`, which both wastes `O(N)` flops per
    /// probe and perturbs the bit pattern of negative-zero phases. Routing
    /// one-hot probes through this index instead writes the single
    /// perturbed coordinate and leaves the rest bitwise equal to `θ` — the
    /// sparse-diff shape the chip's pinned compile base serves with an
    /// `O(N²)` rank-1 update instead of a full mesh recompile.
    pub fn one_hot_index(&self, n: usize, index: usize) -> Option<usize> {
        match self {
            Perturbation::Coordinate { offset } => Some((offset + index) % n),
            _ => None,
        }
    }
}

/// Draws one probe direction of dimension `n`.
pub fn draw_perturbation<R: Rng + ?Sized>(
    pert: &Perturbation<'_>,
    n: usize,
    index: usize,
    rng: &mut R,
) -> RVector {
    match pert {
        Perturbation::Gaussian => normal_rvector(n, rng),
        Perturbation::Bernoulli => {
            RVector::from_fn(n, |_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        }
        Perturbation::Coordinate { offset } => RVector::basis(n, (offset + index) % n),
        Perturbation::Shaped { segments } => {
            let mut v = normal_rvector(n, rng);
            for (start, chol) in segments.iter() {
                let shaped =
                    sample_gaussian(chol, rng).expect("cholesky dimension fixed at construction");
                v.set_subvector(*start, &shaped);
            }
            v
        }
    }
}

/// One ZO gradient estimate together with its probe bookkeeping.
#[derive(Debug, Clone)]
pub struct ZoEstimate {
    /// The gradient estimate `ĝ`.
    pub gradient: RVector,
    /// The probe directions used (column-wise `P`).
    pub directions: Vec<RVector>,
    /// The measured difference quotients `δℓ_q`.
    pub quotients: Vec<f64>,
    /// Loss-oracle calls consumed (`Q` probes; the base loss is passed in).
    pub queries: usize,
}

/// Estimates `∇ℓ(θ)` from loss evaluations only.
///
/// `base_loss` must be `ℓ(θ)` (measured by the caller so it can be shared
/// across estimators); `loss` is charged once per probe.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_linalg::RVector;
/// use photon_opt::{estimate_gradient, Perturbation, ZoSettings};
///
/// // ℓ(θ) = ‖θ‖²: the true gradient at θ=(1,0) is (2,0).
/// let mut loss = |t: &RVector| t.norm_sqr();
/// let theta = RVector::from_slice(&[1.0, 0.0]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let settings = ZoSettings { q: 2000, mu: 1e-4, lambda: 1.0 };
/// let est = estimate_gradient(&mut loss, &theta, theta.norm_sqr(),
///                             &settings, &Perturbation::Gaussian, &mut rng);
/// assert_eq!(est.queries, 2000);
/// assert!((est.gradient[0] - 2.0).abs() < 0.2);
/// ```
pub fn estimate_gradient<R: Rng + ?Sized>(
    loss: &mut dyn FnMut(&RVector) -> f64,
    theta: &RVector,
    base_loss: f64,
    settings: &ZoSettings,
    pert: &Perturbation<'_>,
    rng: &mut R,
) -> ZoEstimate {
    // All probe directions are drawn up front: the RNG stream is consumed
    // identically to the pooled variant, so both paths probe the same points.
    let n = theta.len();
    let directions = draw_perturbations(pert, n, settings.q, rng);
    let mut probe = theta.clone();
    let quotients: Vec<f64> = directions
        .iter()
        .enumerate()
        .map(|(k, delta)| {
            probe.copy_from(theta);
            match pert.one_hot_index(n, k) {
                Some(i) => probe.as_mut_slice()[i] = theta[i] + settings.mu,
                None => probe.axpy(settings.mu, delta),
            }
            (loss(&probe) - base_loss) / settings.mu
        })
        .collect();
    assemble_estimate(n, settings, directions, quotients)
}

/// Pool-parallel variant of [`estimate_gradient`]: the `Q` probe losses are
/// evaluated concurrently on `pool`.
///
/// All probe directions are drawn from `rng` before any loss evaluation and
/// the estimate is assembled in probe order, so for a deterministic `loss`
/// the result is bitwise identical to the serial estimator for every pool
/// size.
pub fn estimate_gradient_pooled<R: Rng + ?Sized>(
    loss: &(dyn Fn(&RVector) -> f64 + Sync),
    theta: &RVector,
    base_loss: f64,
    settings: &ZoSettings,
    pert: &Perturbation<'_>,
    pool: &ExecPool,
    rng: &mut R,
) -> ZoEstimate {
    let n = theta.len();
    let directions = draw_perturbations(pert, n, settings.q, rng);
    let quotients = pool.map_with(
        &directions,
        || theta.clone(),
        |probe, k, delta| {
            probe.copy_from(theta);
            match pert.one_hot_index(n, k) {
                Some(i) => probe.as_mut_slice()[i] = theta[i] + settings.mu,
                None => probe.axpy(settings.mu, delta),
            }
            (loss(probe) - base_loss) / settings.mu
        },
    );
    assemble_estimate(n, settings, directions, quotients)
}

/// Draws the `q` probe directions of one estimate in index order.
pub(crate) fn draw_perturbations<R: Rng + ?Sized>(
    pert: &Perturbation<'_>,
    n: usize,
    q: usize,
    rng: &mut R,
) -> Vec<RVector> {
    (0..q).map(|k| draw_perturbation(pert, n, k, rng)).collect()
}

/// Combines probe directions and measured quotients into the ZO estimate,
/// accumulating in probe order.
pub(crate) fn assemble_estimate(
    n: usize,
    settings: &ZoSettings,
    directions: Vec<RVector>,
    quotients: Vec<f64>,
) -> ZoEstimate {
    let mut gradient = RVector::zeros(n);
    for (dl, delta) in quotients.iter().zip(&directions) {
        gradient.axpy(*dl, delta);
    }
    gradient = gradient.scale(settings.lambda / settings.q as f64);
    ZoEstimate {
        gradient,
        directions,
        quotients,
        queries: settings.q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic(theta: &RVector) -> f64 {
        // ℓ(θ) = Σ wᵢ θᵢ² with distinct curvatures.
        theta
            .iter()
            .enumerate()
            .map(|(i, t)| (i + 1) as f64 * t * t)
            .sum()
    }

    #[test]
    fn gaussian_estimate_aligns_with_true_gradient() {
        let theta = RVector::from_slice(&[1.0, -1.0, 0.5]);
        let true_grad = RVector::from_slice(&[2.0, -4.0, 3.0]);
        let mut loss = |t: &RVector| quadratic(t);
        let mut rng = StdRng::seed_from_u64(1);
        let settings = ZoSettings {
            q: 4000,
            mu: 1e-5,
            lambda: 1.0,
        };
        let est = estimate_gradient(
            &mut loss,
            &theta,
            quadratic(&theta),
            &settings,
            &Perturbation::Gaussian,
            &mut rng,
        );
        let cos = est.gradient.dot(&true_grad).unwrap() / (est.gradient.norm() * true_grad.norm());
        assert!(cos > 0.98, "cosine {cos}");
    }

    #[test]
    fn coordinate_probes_recover_exact_gradient() {
        // With μ→0 central... even forward differences on a quadratic are
        // exact up to O(μ); coordinate probing scaled by λ=1, Q=n touches
        // every coordinate once.
        let theta = RVector::from_slice(&[0.5, -0.25]);
        let mut loss = |t: &RVector| quadratic(t);
        let mut rng = StdRng::seed_from_u64(2);
        let settings = ZoSettings {
            q: 2,
            mu: 1e-7,
            lambda: 2.0, // λ/Q · Σ e_i δℓ_i = (2/2)·[δℓ_0, δℓ_1]
        };
        let est = estimate_gradient(
            &mut loss,
            &theta,
            quadratic(&theta),
            &settings,
            &Perturbation::Coordinate { offset: 0 },
            &mut rng,
        );
        assert!((est.gradient[0] - 1.0).abs() < 1e-4);
        assert!((est.gradient[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn coordinate_offset_cycles() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Perturbation::Coordinate { offset: 2 };
        let d0 = draw_perturbation(&p, 3, 0, &mut rng);
        let d1 = draw_perturbation(&p, 3, 1, &mut rng);
        assert_eq!(d0.as_slice(), &[0.0, 0.0, 1.0]);
        assert_eq!(d1.as_slice(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn bernoulli_directions_are_signs() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = draw_perturbation(&Perturbation::Bernoulli, 64, 0, &mut rng);
        assert!(d.iter().all(|&x| x == 1.0 || x == -1.0));
        // Not all the same sign (overwhelming probability).
        assert!(d.iter().any(|&x| x == 1.0) && d.iter().any(|&x| x == -1.0));
    }

    #[test]
    fn shaped_perturbations_follow_covariance() {
        use photon_linalg::RMatrix;
        let sigma = RMatrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 0.25]]);
        let chol = RCholesky::new(&sigma).unwrap();
        let segments = [(1usize, chol)];
        let p = Perturbation::Shaped {
            segments: &segments,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let (mut var1, mut var2) = (0.0, 0.0);
        for _ in 0..n {
            let d = draw_perturbation(&p, 4, 0, &mut rng);
            var1 += d[1] * d[1];
            var2 += d[2] * d[2];
        }
        var1 /= n as f64;
        var2 /= n as f64;
        assert!((var1 - 4.0).abs() < 0.4, "var1 {var1}");
        assert!((var2 - 0.25).abs() < 0.05, "var2 {var2}");
    }

    #[test]
    fn query_accounting() {
        let mut count = 0usize;
        let mut loss = |t: &RVector| {
            count += 1;
            t.norm_sqr()
        };
        let theta = RVector::zeros(3);
        let mut rng = StdRng::seed_from_u64(6);
        let settings = ZoSettings::for_dimension(3, 7);
        let est = estimate_gradient(
            &mut loss,
            &theta,
            0.0,
            &settings,
            &Perturbation::Gaussian,
            &mut rng,
        );
        assert_eq!(est.queries, 7);
        assert_eq!(count, 7);
        assert_eq!(est.directions.len(), 7);
        assert_eq!(est.quotients.len(), 7);
    }

    #[test]
    fn pooled_estimate_is_bitwise_identical_to_serial() {
        let theta = RVector::from_slice(&[1.0, -1.0, 0.5, 0.25, -0.75, 2.0]);
        let settings = ZoSettings::for_dimension(6, 16);
        let serial = {
            let mut rng = StdRng::seed_from_u64(21);
            estimate_gradient(
                &mut |t| quadratic(t),
                &theta,
                quadratic(&theta),
                &settings,
                &Perturbation::Gaussian,
                &mut rng,
            )
        };
        for threads in [1usize, 2, 4, 8] {
            let mut rng = StdRng::seed_from_u64(21);
            let pooled = estimate_gradient_pooled(
                &|t| quadratic(t),
                &theta,
                quadratic(&theta),
                &settings,
                &Perturbation::Gaussian,
                &ExecPool::new(threads),
                &mut rng,
            );
            for (a, b) in serial.gradient.iter().zip(pooled.gradient.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
            assert_eq!(serial.quotients, pooled.quotients);
        }
    }

    #[test]
    fn default_settings_scale_with_dimension() {
        let s = ZoSettings::for_dimension(100, 10);
        assert!((s.mu - 1e-4).abs() < 1e-12);
        assert!((s.lambda - 0.01).abs() < 1e-12);
    }
}
