//! CMA-ES: covariance matrix adaptation evolution strategy.
//!
//! The black-box baseline the paper compares against. This is a faithful
//! from-scratch implementation of the standard (μ/μ_w, λ)-CMA-ES with
//! rank-one + rank-μ covariance updates and cumulative step-size adaptation
//! — including its well-known failure mode: per-generation eigendecomposition
//! of the full `N×N` covariance, which is what stops it from scaling to
//! large ONNs.

use rand::Rng;

use photon_linalg::random::standard_normal;
use photon_linalg::{symmetric_eig, LinalgError, RMatrix, RVector};

/// The CMA-ES optimizer state.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_linalg::RVector;
/// use photon_opt::CmaEs;
///
/// // Minimize the sphere function from (3, 3).
/// let mut es = CmaEs::new(&RVector::from_slice(&[3.0, 3.0]), 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// for _ in 0..60 {
///     let xs = es.ask(&mut rng);
///     let losses: Vec<f64> = xs.iter().map(|x| x.norm_sqr()).collect();
///     es.tell(&xs, &losses)?;
/// }
/// assert!(es.best().expect("telled").1 < 1e-3);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CmaEs {
    dim: usize,
    lambda: usize,
    mu: usize,
    weights: Vec<f64>,
    mueff: f64,
    cc: f64,
    cs: f64,
    c1: f64,
    cmu: f64,
    damps: f64,
    chi_n: f64,

    mean: RVector,
    sigma: f64,
    cov: RMatrix,
    pc: RVector,
    ps: RVector,
    eig_vectors: RMatrix,
    eig_sqrt: RVector,
    generations_since_eig: usize,
    eig_gap: usize,
    generation: u64,
    best: Option<(RVector, f64)>,
}

impl CmaEs {
    /// Creates an optimizer centered at `initial_mean` with step size
    /// `sigma0` and the default population `λ = 4 + ⌊3·ln N⌋`.
    ///
    /// # Panics
    ///
    /// Panics when the mean is empty or `sigma0 <= 0`.
    pub fn new(initial_mean: &RVector, sigma0: f64) -> Self {
        let n = initial_mean.len();
        let lambda = 4 + (3.0 * (n as f64).ln()).floor() as usize;
        CmaEs::with_population(initial_mean, sigma0, lambda.max(4))
    }

    /// Creates an optimizer with an explicit population size `λ ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics when the mean is empty, `sigma0 <= 0` or `lambda < 2`.
    pub fn with_population(initial_mean: &RVector, sigma0: f64, lambda: usize) -> Self {
        let n = initial_mean.len();
        assert!(n > 0, "dimension must be positive");
        assert!(sigma0 > 0.0, "initial step size must be positive");
        assert!(lambda >= 2, "population must be at least 2");
        let nf = n as f64;
        let mu = lambda / 2;
        // Log-linear recombination weights.
        let raw: Vec<f64> = (0..mu)
            .map(|i| ((lambda as f64 + 1.0) / 2.0).ln() - ((i + 1) as f64).ln())
            .collect();
        let wsum: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / wsum).collect();
        let mueff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();

        let cc = (4.0 + mueff / nf) / (nf + 4.0 + 2.0 * mueff / nf);
        let cs = (mueff + 2.0) / (nf + mueff + 5.0);
        let c1 = 2.0 / ((nf + 1.3) * (nf + 1.3) + mueff);
        let cmu =
            (1.0 - c1).min(2.0 * (mueff - 2.0 + 1.0 / mueff) / ((nf + 2.0) * (nf + 2.0) + mueff));
        let damps = 1.0 + 2.0 * (0.0f64).max(((mueff - 1.0) / (nf + 1.0)).sqrt() - 1.0) + cs;
        let chi_n = nf.sqrt() * (1.0 - 1.0 / (4.0 * nf) + 1.0 / (21.0 * nf * nf));
        // Lazy eigen-update cadence (standard heuristic).
        let eig_gap = (1.0 / ((c1 + cmu) * nf * 10.0)).ceil().max(1.0) as usize;

        CmaEs {
            dim: n,
            lambda,
            mu,
            weights,
            mueff,
            cc,
            cs,
            c1,
            cmu,
            damps,
            chi_n,
            mean: initial_mean.clone(),
            sigma: sigma0,
            cov: RMatrix::identity(n),
            pc: RVector::zeros(n),
            ps: RVector::zeros(n),
            eig_vectors: RMatrix::identity(n),
            eig_sqrt: RVector::ones(n),
            generations_since_eig: 0,
            eig_gap,
            generation: 0,
            best: None,
        }
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Population size λ.
    pub fn population_size(&self) -> usize {
        self.lambda
    }

    /// Current distribution mean.
    pub fn mean(&self) -> &RVector {
        &self.mean
    }

    /// Current global step size σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Best `(candidate, loss)` seen so far.
    pub fn best(&self) -> Option<(RVector, f64)> {
        self.best.clone()
    }

    /// Generations completed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Samples one population of λ candidates.
    pub fn ask<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<RVector> {
        (0..self.lambda)
            .map(|_| {
                let z = RVector::from_fn(self.dim, |_| standard_normal(rng));
                // y = B·D·z
                let mut y = RVector::zeros(self.dim);
                for c in 0..self.dim {
                    let zc = self.eig_sqrt[c] * z[c];
                    if zc != 0.0 {
                        for r in 0..self.dim {
                            y[r] += self.eig_vectors[(r, c)] * zc;
                        }
                    }
                }
                let mut x = self.mean.clone();
                x.axpy(self.sigma, &y);
                x
            })
            .collect()
    }

    /// Updates the distribution from evaluated candidates.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures (pathological covariance).
    ///
    /// # Panics
    ///
    /// Panics when `candidates.len() != losses.len()` or the count differs
    /// from λ.
    pub fn tell(&mut self, candidates: &[RVector], losses: &[f64]) -> Result<(), LinalgError> {
        assert_eq!(candidates.len(), losses.len(), "candidate/loss mismatch");
        assert_eq!(candidates.len(), self.lambda, "population size mismatch");

        debug_assert_eq!(self.weights.len(), self.mu, "weights track μ parents");
        let mut order: Vec<usize> = (0..self.lambda).collect();
        // `total_cmp` ranks NaN losses (dropped chip readings on a faulty
        // chip) strictly after +inf — worst of the population — instead of
        // panicking mid-run.
        order.sort_by(|&a, &b| losses[a].total_cmp(&losses[b]));

        if self
            .best
            .as_ref()
            .is_none_or(|(_, b)| losses[order[0]] < *b)
        {
            self.best = Some((candidates[order[0]].clone(), losses[order[0]]));
        }

        let old_mean = self.mean.clone();
        let mut new_mean = RVector::zeros(self.dim);
        for (w, &idx) in self.weights.iter().zip(&order) {
            new_mean.axpy(*w, &candidates[idx]);
        }
        self.mean = new_mean;

        // Mean displacement in "z-space": C^{-1/2}·(m' − m)/σ = B·D⁻¹·Bᵀ·Δ.
        let delta = (&self.mean - &old_mean).scale(1.0 / self.sigma);
        let bt_delta = self.eig_vectors.transpose_mul_vec(&delta)?;
        let mut z_disp = RVector::zeros(self.dim);
        for c in 0..self.dim {
            let scaled = bt_delta[c] / self.eig_sqrt[c].max(1e-30);
            for r in 0..self.dim {
                z_disp[r] += self.eig_vectors[(r, c)] * scaled;
            }
        }

        // Step-size path.
        let cs = self.cs;
        let ps_coef = (cs * (2.0 - cs) * self.mueff).sqrt();
        self.ps = self.ps.scale(1.0 - cs);
        self.ps.axpy(ps_coef, &z_disp);

        let gen_f = (self.generation + 1) as f64;
        let ps_norm = self.ps.norm();
        let hsig_thresh = (1.4 + 2.0 / (self.dim as f64 + 1.0))
            * self.chi_n
            * (1.0 - (1.0 - cs).powf(2.0 * gen_f)).sqrt();
        let hsig = if ps_norm < hsig_thresh { 1.0 } else { 0.0 };

        // Covariance path.
        let cc = self.cc;
        let pc_coef = hsig * (cc * (2.0 - cc) * self.mueff).sqrt();
        self.pc = self.pc.scale(1.0 - cc);
        self.pc.axpy(pc_coef, &delta);

        // Rank-one + rank-μ covariance update.
        let c1 = self.c1;
        let cmu = self.cmu;
        let decay = 1.0 - c1 - cmu;
        let mut new_cov = self.cov.scale(decay);
        let rank1 = RMatrix::outer(&self.pc, &self.pc);
        new_cov.axpy(c1, &rank1);
        if hsig == 0.0 {
            // Compensate the variance loss when pc is stalled.
            new_cov.axpy(c1 * cc * (2.0 - cc), &self.cov);
        }
        for (w, &idx) in self.weights.iter().zip(&order) {
            let y = (&candidates[idx] - &old_mean).scale(1.0 / self.sigma);
            new_cov.axpy(cmu * w, &RMatrix::outer(&y, &y));
        }
        new_cov.symmetrize();
        self.cov = new_cov;

        // Step-size adaptation.
        self.sigma *= ((cs / self.damps) * (ps_norm / self.chi_n - 1.0)).exp();
        self.sigma = self.sigma.clamp(1e-12, 1e12);

        self.generation += 1;
        self.generations_since_eig += 1;
        if self.generations_since_eig >= self.eig_gap {
            self.refresh_eigensystem()?;
            self.generations_since_eig = 0;
        }
        Ok(())
    }

    /// Captures the complete evolving state for serialization.
    ///
    /// Derived constants (recombination weights, cumulation rates, damping,
    /// `χ_N`, eigen-refresh cadence) are *not* captured: they are pure
    /// functions of `(dim, λ)` and are recomputed by [`CmaEs::from_state`],
    /// so the snapshot stays compact and cannot drift out of sync.
    pub fn snapshot(&self) -> CmaEsState {
        CmaEsState {
            lambda: self.lambda,
            mean: self.mean.clone(),
            sigma: self.sigma,
            cov: self.cov.clone(),
            pc: self.pc.clone(),
            ps: self.ps.clone(),
            eig_vectors: self.eig_vectors.clone(),
            eig_sqrt: self.eig_sqrt.clone(),
            generations_since_eig: self.generations_since_eig,
            generation: self.generation,
            best: self.best.clone(),
        }
    }

    /// Reconstructs an optimizer from a snapshot; the result continues the
    /// original trajectory bitwise-identically (given the same RNG stream).
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's dimensions are inconsistent (e.g. `cov`
    /// not square of the mean's dimension) or `lambda < 2`.
    pub fn from_state(state: CmaEsState) -> Self {
        let n = state.mean.len();
        assert_eq!(state.cov.rows(), n, "covariance rows must match dim");
        assert_eq!(state.cov.cols(), n, "covariance cols must match dim");
        assert_eq!(state.pc.len(), n, "pc length must match dim");
        assert_eq!(state.ps.len(), n, "ps length must match dim");
        assert_eq!(state.eig_sqrt.len(), n, "eig_sqrt length must match dim");
        // Rebuild every derived constant from (dim, λ), then overwrite the
        // evolving fields with the captured values.
        let mut es = CmaEs::with_population(&state.mean, 1.0, state.lambda);
        es.mean = state.mean;
        es.sigma = state.sigma;
        es.cov = state.cov;
        es.pc = state.pc;
        es.ps = state.ps;
        es.eig_vectors = state.eig_vectors;
        es.eig_sqrt = state.eig_sqrt;
        es.generations_since_eig = state.generations_since_eig;
        es.generation = state.generation;
        es.best = state.best;
        es
    }

    fn refresh_eigensystem(&mut self) -> Result<(), LinalgError> {
        let eig = symmetric_eig(&self.cov)?;
        self.eig_vectors = eig.vectors;
        self.eig_sqrt = RVector::from_fn(self.dim, |i| eig.values[i].max(1e-20).sqrt());
        Ok(())
    }

    /// Convenience driver: runs `generations` ask/tell cycles against `f`,
    /// returning the best `(candidate, loss)`.
    ///
    /// # Errors
    ///
    /// Propagates [`CmaEs::tell`] failures.
    pub fn optimize<R: Rng + ?Sized>(
        &mut self,
        f: &mut dyn FnMut(&RVector) -> f64,
        generations: usize,
        rng: &mut R,
    ) -> Result<(RVector, f64), LinalgError> {
        for _ in 0..generations {
            let xs = self.ask(rng);
            let losses: Vec<f64> = xs.iter().map(&mut *f).collect();
            self.tell(&xs, &losses)?;
        }
        Ok(self.best.clone().expect("at least one generation ran"))
    }
}

/// A serializable snapshot of a [`CmaEs`] optimizer's evolving state.
///
/// Produced by [`CmaEs::snapshot`] and consumed by [`CmaEs::from_state`].
/// Only evolving quantities are stored; constants derived from `(dim, λ)`
/// are recomputed on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct CmaEsState {
    /// Population size λ.
    pub lambda: usize,
    /// Distribution mean.
    pub mean: RVector,
    /// Global step size σ.
    pub sigma: f64,
    /// Covariance matrix `C`.
    pub cov: RMatrix,
    /// Covariance evolution path `p_c`.
    pub pc: RVector,
    /// Step-size evolution path `p_σ`.
    pub ps: RVector,
    /// Eigenvector basis `B` of the lazily-refreshed eigensystem.
    pub eig_vectors: RMatrix,
    /// Square roots of the eigenvalues (diagonal `D`).
    pub eig_sqrt: RVector,
    /// Generations since the last eigensystem refresh.
    pub generations_since_eig: usize,
    /// Generations completed.
    pub generation: u64,
    /// Best `(candidate, loss)` seen so far.
    pub best: Option<(RVector, f64)>,
}

/// Replaces non-finite member losses with a penalty strictly worse than the
/// worst finite member, so CMA-ES ranking survives dropped/NaN chip reads.
///
/// Returns the number of members penalized. When *no* member is finite, a
/// large fixed penalty is used for all of them (the generation carries no
/// ranking information, but the update stays finite).
pub fn penalize_non_finite(losses: &mut [f64]) -> u64 {
    let worst_finite = losses
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let penalty = if worst_finite.is_finite() {
        worst_finite.abs() * 10.0 + 1.0
    } else {
        1e30
    };
    let mut hit = 0;
    for v in losses.iter_mut() {
        if !v.is_finite() {
            *v = penalty;
            hit += 1;
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn penalize_non_finite_preserves_ranking() {
        let mut losses = [1.0, f64::NAN, -3.0, f64::INFINITY, 7.0];
        let hit = penalize_non_finite(&mut losses);
        assert_eq!(hit, 2);
        assert!(losses.iter().all(|v| v.is_finite()));
        // Penalized entries rank strictly worse than every finite one.
        assert!(losses[1] > 7.0 && losses[3] > 7.0);
        assert_eq!(losses[0], 1.0);
        // All-NaN generations still come back finite.
        let mut all_bad = [f64::NAN, f64::NAN];
        assert_eq!(penalize_non_finite(&mut all_bad), 2);
        assert!(all_bad.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sphere_converges() {
        let mut es = CmaEs::new(&RVector::from_slice(&[2.0, -1.5, 3.0]), 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        let (x, loss) = es
            .optimize(&mut |t: &RVector| t.norm_sqr(), 120, &mut rng)
            .unwrap();
        assert!(loss < 1e-6, "loss {loss}");
        assert!(x.norm() < 1e-2);
    }

    #[test]
    fn rosenbrock_2d_converges() {
        let mut rosen = |t: &RVector| {
            let (x, y) = (t[0], t[1]);
            100.0 * (y - x * x).powi(2) + (1.0 - x).powi(2)
        };
        let mut es = CmaEs::with_population(&RVector::from_slice(&[-1.0, 1.0]), 0.5, 12);
        let mut rng = StdRng::seed_from_u64(2);
        let (x, loss) = es.optimize(&mut rosen, 400, &mut rng).unwrap();
        assert!(loss < 1e-4, "loss {loss}");
        assert!((x[0] - 1.0).abs() < 0.05 && (x[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn anisotropic_quadratic_adapts_covariance() {
        // Badly scaled axes: CMA must adapt and still converge.
        let mut f = |t: &RVector| 1000.0 * t[0] * t[0] + t[1] * t[1];
        let mut es = CmaEs::new(&RVector::from_slice(&[1.0, 1.0]), 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let (_, loss) = es.optimize(&mut f, 250, &mut rng).unwrap();
        assert!(loss < 1e-5, "loss {loss}");
    }

    #[test]
    fn best_is_monotone() {
        let mut es = CmaEs::new(&RVector::from_slice(&[5.0; 4]), 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut last = f64::INFINITY;
        for _ in 0..30 {
            let xs = es.ask(&mut rng);
            let losses: Vec<f64> = xs.iter().map(|x| x.norm_sqr()).collect();
            es.tell(&xs, &losses).unwrap();
            let b = es.best().unwrap().1;
            assert!(b <= last + 1e-12);
            last = b;
        }
    }

    #[test]
    fn default_population_formula() {
        let es = CmaEs::new(&RVector::zeros(10), 1.0);
        assert_eq!(
            es.population_size(),
            4 + (3.0 * 10f64.ln()).floor() as usize
        );
        assert_eq!(es.dim(), 10);
        assert_eq!(es.generation(), 0);
    }

    #[test]
    fn snapshot_roundtrip_continues_bitwise() {
        let mut es = CmaEs::with_population(&RVector::from_slice(&[2.0, -1.0, 0.5]), 0.7, 8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..7 {
            let xs = es.ask(&mut rng);
            let losses: Vec<f64> = xs.iter().map(|x| x.norm_sqr()).collect();
            es.tell(&xs, &losses).unwrap();
        }
        let mut restored = CmaEs::from_state(es.snapshot());
        // Two parallel RNG streams seeded identically: both copies must walk
        // the exact same trajectory from here on.
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let xs_a = es.ask(&mut rng_a);
            let xs_b = restored.ask(&mut rng_b);
            let losses_a: Vec<f64> = xs_a.iter().map(|x| x.norm_sqr()).collect();
            let losses_b: Vec<f64> = xs_b.iter().map(|x| x.norm_sqr()).collect();
            es.tell(&xs_a, &losses_a).unwrap();
            restored.tell(&xs_b, &losses_b).unwrap();
        }
        let bits = |v: &RVector| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(es.mean()), bits(restored.mean()));
        assert_eq!(es.sigma().to_bits(), restored.sigma().to_bits());
        assert_eq!(es.generation(), restored.generation());
        assert_eq!(es.snapshot(), restored.snapshot());
    }

    #[test]
    #[should_panic(expected = "covariance rows must match dim")]
    fn from_state_rejects_inconsistent_dims() {
        let es = CmaEs::with_population(&RVector::zeros(3), 1.0, 6);
        let mut state = es.snapshot();
        state.cov = RMatrix::identity(2);
        let _ = CmaEs::from_state(state);
    }

    #[test]
    #[should_panic(expected = "population size mismatch")]
    fn tell_rejects_wrong_count() {
        let mut es = CmaEs::with_population(&RVector::zeros(2), 1.0, 6);
        let _ = es.tell(&[RVector::zeros(2)], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn zero_sigma_rejected() {
        let _ = CmaEs::new(&RVector::zeros(2), 0.0);
    }
}
