//! Hyperparameter tuning: a small random-search tuner standing in for the
//! paper's Optuna runs.
//!
//! The experimental protocol tunes each method's step size per (task,
//! dimensionality, method) combination before the comparison runs; this
//! module provides the log-uniform random search that fills that role.

use rand::Rng;

/// A log-uniform range `[lo, hi]`, the natural prior for learning rates and
/// CMA-ES step sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogUniform {
    lo: f64,
    hi: f64,
}

impl LogUniform {
    /// Creates the range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "require 0 < lo < hi");
        LogUniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
    }
}

/// One tuning trial result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// The sampled hyperparameter value.
    pub value: f64,
    /// The objective score (lower is better).
    pub score: f64,
}

/// Random-search tuner: draws `trials` values from `range`, scores each with
/// `objective` (lower is better) and returns all trials with the best first.
///
/// The first trial always probes the geometric midpoint so a single-trial
/// budget is deterministic.
///
/// # Panics
///
/// Panics when `trials == 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_opt::{random_search, LogUniform};
///
/// // Score is minimized at lr = 0.01.
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let trials = random_search(
///     LogUniform::new(1e-4, 1.0),
///     20,
///     &mut |lr| (lr.ln() - 0.01f64.ln()).abs(),
///     &mut rng,
/// );
/// assert!((trials[0].value - 0.01).abs() < 0.05);
/// ```
pub fn random_search<R: Rng + ?Sized>(
    range: LogUniform,
    trials: usize,
    objective: &mut dyn FnMut(f64) -> f64,
    rng: &mut R,
) -> Vec<Trial> {
    assert!(trials > 0, "need at least one trial");
    let mut results = Vec::with_capacity(trials);
    for t in 0..trials {
        let value = if t == 0 {
            (range.lo.ln() * 0.5 + range.hi.ln() * 0.5).exp()
        } else {
            range.sample(rng)
        };
        let score = objective(value);
        results.push(Trial { value, score });
    }
    // NaN scores (a diverged objective) sort last instead of panicking.
    results.sort_by(|a, b| a.score.total_cmp(&b.score));
    results
}

/// Convenience wrapper returning only the best hyperparameter value.
///
/// # Panics
///
/// Panics when `trials == 0`.
pub fn tune<R: Rng + ?Sized>(
    range: LogUniform,
    trials: usize,
    objective: &mut dyn FnMut(f64) -> f64,
    rng: &mut R,
) -> f64 {
    random_search(range, trials, objective, rng)[0].value
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let r = LogUniform::new(1e-3, 1e-1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.sample(&mut rng);
            assert!((1e-3..=1e-1).contains(&v));
        }
    }

    #[test]
    fn log_uniform_is_log_spread() {
        // Roughly half of samples below the geometric midpoint.
        let r = LogUniform::new(1e-4, 1.0);
        let mid = 1e-2;
        let mut rng = StdRng::seed_from_u64(2);
        let below = (0..2000).filter(|_| r.sample(&mut rng) < mid).count();
        assert!((800..1200).contains(&below), "below={below}");
    }

    #[test]
    fn search_finds_minimum() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut obj = |v: f64| (v.ln() - 0.05f64.ln()).powi(2);
        let trials = random_search(LogUniform::new(1e-4, 10.0), 40, &mut obj, &mut rng);
        assert_eq!(trials.len(), 40);
        // Sorted ascending by score.
        for w in trials.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
        let best = trials[0].value;
        assert!(best > 0.01 && best < 0.25, "best {best}");
    }

    #[test]
    fn single_trial_is_deterministic_midpoint() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut obj = |_| 0.0;
        let r = LogUniform::new(1e-4, 1.0);
        let t = random_search(r, 1, &mut obj, &mut rng);
        assert!((t[0].value - 1e-2).abs() < 1e-10);
    }

    #[test]
    fn tune_returns_best_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut obj = |v: f64| (v - 0.1).abs();
        let best = tune(LogUniform::new(1e-3, 1.0), 50, &mut obj, &mut rng);
        assert!((best - 0.1).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn bad_range_rejected() {
        let _ = LogUniform::new(1.0, 0.5);
    }
}
