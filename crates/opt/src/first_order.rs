//! First-order parameter-update rules: SGD (with momentum) and Adam.
//!
//! These consume gradient *estimates* — exact backprop gradients in the
//! warm-start stage, ZO/LCNG surrogate gradients in the black-box stage.

use photon_linalg::RVector;

/// A stateful first-order update rule `θ ← step(θ, ĝ)`.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update in place given the gradient (estimate) `grad`.
    ///
    /// # Panics
    ///
    /// Panics when `grad.len() != theta.len()`.
    fn step(&mut self, theta: &mut RVector, grad: &RVector);

    /// Clears all internal state (moments, step counters).
    fn reset(&mut self);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by the hyperparameter tuner).
    fn set_learning_rate(&mut self, lr: f64);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Stochastic gradient descent with optional classical momentum.
///
/// # Examples
///
/// ```
/// use photon_linalg::RVector;
/// use photon_opt::{Optimizer, Sgd};
///
/// let mut opt = Sgd::new(0.5);
/// let mut theta = RVector::from_slice(&[1.0, -2.0]);
/// opt.step(&mut theta, &RVector::from_slice(&[1.0, 1.0]));
/// assert_eq!(theta.as_slice(), &[0.5, -2.5]);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Option<RVector>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: None,
        }
    }

    /// SGD with classical momentum `μ ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0` or `momentum ∉ [0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, theta: &mut RVector, grad: &RVector) {
        assert_eq!(theta.len(), grad.len(), "gradient length mismatch");
        if self.momentum == 0.0 {
            theta.axpy(-self.lr, grad);
            return;
        }
        let v = self
            .velocity
            .get_or_insert_with(|| RVector::zeros(theta.len()));
        assert_eq!(v.len(), theta.len(), "optimizer state dimension changed");
        for i in 0..v.len() {
            v[i] = self.momentum * v[i] + grad[i];
        }
        theta.axpy(-self.lr, v);
    }

    fn reset(&mut self) {
        self.velocity = None;
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// The Adam optimizer (Kingma & Ba, 2014) with bias correction.
///
/// # Examples
///
/// ```
/// use photon_linalg::RVector;
/// use photon_opt::{Adam, Optimizer};
///
/// let mut opt = Adam::new(0.1);
/// let mut theta = RVector::zeros(2);
/// // A constant gradient moves θ by ≈ lr per step once bias-corrected.
/// opt.step(&mut theta, &RVector::from_slice(&[1.0, -1.0]));
/// assert!((theta[0] + 0.1).abs() < 1e-9);
/// assert!((theta[1] - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Option<RVector>,
    v: Option<RVector>,
    t: u64,
}

impl Adam {
    /// Adam with the standard moments `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Adam::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit moment coefficients.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range hyperparameters.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        assert!(eps > 0.0, "epsilon must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            m: None,
            v: None,
            t: 0,
        }
    }
}

/// A serializable snapshot of an [`Adam`] optimizer's full state.
///
/// Captures both the hyperparameters and the moment estimates so a training
/// run can be checkpointed and resumed bitwise-identically. Produced by
/// [`Adam::snapshot`] and consumed by [`Adam::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay coefficient.
    pub beta1: f64,
    /// Second-moment decay coefficient.
    pub beta2: f64,
    /// Denominator stabilizer.
    pub eps: f64,
    /// First-moment estimate (`None` before the first step).
    pub m: Option<RVector>,
    /// Second-moment estimate (`None` before the first step).
    pub v: Option<RVector>,
    /// Number of steps taken (drives bias correction).
    pub t: u64,
}

impl Adam {
    /// Captures the optimizer's complete state for serialization.
    pub fn snapshot(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
        }
    }

    /// Reconstructs an optimizer from a snapshot; the result continues the
    /// original trajectory bitwise-identically.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range hyperparameters (same domain as
    /// [`Adam::with_betas`]).
    pub fn from_state(state: AdamState) -> Self {
        let mut opt = Adam::with_betas(state.lr, state.beta1, state.beta2, state.eps);
        opt.m = state.m;
        opt.v = state.v;
        opt.t = state.t;
        opt
    }
}

impl Optimizer for Adam {
    fn step(&mut self, theta: &mut RVector, grad: &RVector) {
        assert_eq!(theta.len(), grad.len(), "gradient length mismatch");
        let n = theta.len();
        let m = self.m.get_or_insert_with(|| RVector::zeros(n));
        let v = self.v.get_or_insert_with(|| RVector::zeros(n));
        assert_eq!(m.len(), n, "optimizer state dimension changed");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..n {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            theta[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m = None;
        self.v = None;
        self.t = 0;
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize the quadratic ‖θ − t‖² with exact gradients.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let target = RVector::from_slice(&[1.0, -2.0, 0.5]);
        let mut theta = RVector::zeros(3);
        for _ in 0..steps {
            let grad = (&theta - &target).scale(2.0);
            opt.step(&mut theta, &grad);
        }
        (&theta - &target).norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(quadratic_descent(&mut opt, 200) < 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!(quadratic_descent(&mut opt, 300) < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(quadratic_descent(&mut opt, 500) < 1e-4);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        let mut opt = Adam::new(0.01);
        let mut theta = RVector::zeros(1);
        opt.step(&mut theta, &RVector::from_slice(&[123.0]));
        // Bias correction makes the first step ≈ lr regardless of scale.
        assert!((theta[0].abs() - 0.01).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut theta = RVector::zeros(2);
        opt.step(&mut theta, &RVector::from_slice(&[1.0, 1.0]));
        opt.reset();
        let mut theta2 = RVector::zeros(2);
        opt.step(&mut theta2, &RVector::from_slice(&[1.0, 1.0]));
        assert_eq!(theta, theta2);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.3);
        assert_eq!(s.learning_rate(), 0.3);
        s.set_learning_rate(0.7);
        assert_eq!(s.learning_rate(), 0.7);
        assert_eq!(s.name(), "sgd");
        assert_eq!(Adam::new(1.0).name(), "adam");
    }

    #[test]
    fn adam_snapshot_roundtrip_continues_bitwise() {
        let mut opt = Adam::new(0.05);
        let mut theta = RVector::from_slice(&[0.3, -0.7, 1.1]);
        let grad = RVector::from_slice(&[0.4, 0.1, -0.9]);
        for _ in 0..5 {
            opt.step(&mut theta, &grad);
        }
        let mut restored = Adam::from_state(opt.snapshot());
        let mut theta_r = theta.clone();
        for _ in 0..5 {
            opt.step(&mut theta, &grad);
            restored.step(&mut theta_r, &grad);
        }
        let bits = |v: &RVector| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&theta), bits(&theta_r));
        assert_eq!(opt.snapshot(), restored.snapshot());
    }

    #[test]
    fn adam_snapshot_before_first_step_is_fresh() {
        let opt = Adam::new(0.01);
        let state = opt.snapshot();
        assert_eq!(state.t, 0);
        assert!(state.m.is_none() && state.v.is_none());
        let restored = Adam::from_state(state);
        assert_eq!(restored.snapshot(), opt.snapshot());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        let mut theta = RVector::zeros(2);
        opt.step(&mut theta, &RVector::zeros(3));
    }
}
