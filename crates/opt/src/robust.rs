//! Fault-tolerant measurement wrappers for the ZO estimators.
//!
//! Real chip readouts occasionally fail: a dropped read comes back NaN, an
//! outlier spike turns one difference quotient into garbage. The robust
//! entry points here wrap [`estimate_gradient_pooled`] /
//! [`lcng_direction_pooled`] measurement loops with the recovery ladder
//!
//! 1. **retry** — a non-finite loss reading is re-measured up to
//!    `max_retries` times (each re-read is a fresh chip query);
//! 2. **reject** — difference quotients are screened by a median/MAD
//!    outlier test; flagged probes are re-measured `rereads` times and
//!    replaced by the median of the finite re-reads;
//! 3. **zero** — a probe that stays non-finite after all of the above
//!    contributes a zero quotient (the probe is dropped from the estimate)
//!    and is counted as unrecovered.
//!
//! All decisions are functions of measured values only — never of thread
//! scheduling — so with a content-deterministic chip (see `photon-faults`)
//! the robust estimates stay bitwise identical across pool sizes. This
//! holds on the compiled batched loss path too: batch blocks are fixed-size
//! and index-ordered, so every re-measured loss reads the same content keys
//! regardless of pool size.
//!
//! [`estimate_gradient_pooled`]: crate::estimate_gradient_pooled
//! [`lcng_direction_pooled`]: crate::lcng_direction_pooled

use photon_exec::ExecPool;
use rand::Rng;

use photon_linalg::{LinalgError, RVector};
use photon_photonics::fisher_vector_products_pooled;

use crate::lcng::{solve_in_span, LcngSettings, LcngStep, MetricSource};
use crate::zo::{assemble_estimate, draw_perturbations, Perturbation, ZoEstimate, ZoSettings};

/// Settings of the robust measurement ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustEval {
    /// Maximum immediate re-measurements of a non-finite loss reading.
    pub max_retries: u32,
    /// Outlier threshold in robust z-score units
    /// (`|q − median| > z·1.4826·MAD` flags the probe).
    pub outlier_zscore: f64,
    /// Number of re-reads a flagged probe is replaced by the median of.
    pub rereads: usize,
}

impl RobustEval {
    /// A balanced default: 3 retries, z = 6, median-of-3 re-reads.
    pub fn standard() -> Self {
        RobustEval {
            max_retries: 3,
            outlier_zscore: 6.0,
            rereads: 3,
        }
    }
}

/// What the robust ladder had to do during one estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustStats {
    /// Non-finite readings that were immediately re-measured.
    pub retries: u64,
    /// Probes flagged by the outlier test and re-read.
    pub rejected: u64,
    /// Probes that stayed non-finite and were zeroed out of the estimate.
    pub unrecovered: u64,
}

impl RobustStats {
    /// Accumulates another estimate's stats into this one.
    pub fn absorb(&mut self, other: RobustStats) {
        self.retries += other.retries;
        self.rejected += other.rejected;
        self.unrecovered += other.unrecovered;
    }
}

/// Evaluates `loss(point)`, re-measuring while the reading is non-finite,
/// up to `max_retries` extra attempts. Returns the last reading (possibly
/// still non-finite) and the number of retries consumed.
pub fn retry_non_finite(
    loss: &(dyn Fn(&RVector) -> f64 + Sync),
    point: &RVector,
    max_retries: u32,
) -> (f64, u32) {
    let mut value = loss(point);
    let mut retries = 0;
    while !value.is_finite() && retries < max_retries {
        value = loss(point);
        retries += 1;
    }
    (value, retries)
}

/// Median of a non-empty slice (even lengths average the middle pair).
fn median(values: &[f64]) -> f64 {
    debug_assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    // Callers screen for finite values, but a NaN slipping through must
    // degrade the median, not panic the robust ladder.
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Measures the `Q` difference quotients for `directions` with the full
/// retry → reject → re-read ladder.
fn measure_quotients_robust(
    loss: &(dyn Fn(&RVector) -> f64 + Sync),
    theta: &RVector,
    base_loss: f64,
    mu: f64,
    directions: &[RVector],
    robust: &RobustEval,
    pool: &ExecPool,
) -> (Vec<f64>, RobustStats) {
    let mut stats = RobustStats::default();

    // Stage 1: sweep all probes, retrying non-finite readings in place.
    let sweep: Vec<(f64, u32)> = pool.map_with(
        directions,
        || theta.clone(),
        |probe, _, delta| {
            probe.copy_from(theta);
            probe.axpy(mu, delta);
            let (l, retries) = retry_non_finite(loss, probe, robust.max_retries);
            ((l - base_loss) / mu, retries)
        },
    );
    let mut quotients: Vec<f64> = sweep.iter().map(|&(q, _)| q).collect();
    stats.retries = sweep.iter().map(|&(_, r)| r as u64).sum();

    // Stage 2: median/MAD outlier screen over the finite quotients.
    let finite: Vec<f64> = quotients.iter().copied().filter(|v| v.is_finite()).collect();
    let flagged: Vec<usize> = if finite.is_empty() {
        (0..quotients.len()).collect()
    } else {
        let med = median(&finite);
        let deviations: Vec<f64> = finite.iter().map(|v| (v - med).abs()).collect();
        // 1.4826·MAD ≈ σ for Gaussian data; the floor keeps a zero-spread
        // batch (e.g. a flat loss landscape) from flagging fp noise.
        let scale = (1.4826 * median(&deviations)).max(1e-9 * med.abs().max(1.0));
        quotients
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_finite() || (**v - med).abs() > robust.outlier_zscore * scale)
            .map(|(i, _)| i)
            .collect()
    };
    if flagged.is_empty() {
        return (quotients, stats);
    }
    stats.rejected = flagged.len() as u64;

    // Stage 3: re-read every flagged probe `rereads` times and take the
    // median of the finite readings.
    let rereads = robust.rereads.max(1);
    let replacements: Vec<f64> = pool.map_subset(
        directions,
        &flagged,
        || theta.clone(),
        |probe, _, delta| {
            probe.copy_from(theta);
            probe.axpy(mu, delta);
            let readings: Vec<f64> = (0..rereads)
                .filter_map(|_| {
                    let (l, _) = retry_non_finite(loss, probe, robust.max_retries);
                    l.is_finite().then(|| (l - base_loss) / mu)
                })
                .collect();
            if readings.is_empty() {
                f64::NAN
            } else {
                median(&readings)
            }
        },
    );
    for (&i, &q) in flagged.iter().zip(&replacements) {
        if q.is_finite() {
            quotients[i] = q;
        } else {
            // The probe is lost; a zero quotient removes it from the
            // estimate without poisoning the rest.
            quotients[i] = 0.0;
            stats.unrecovered += 1;
        }
    }
    (quotients, stats)
}

/// Fault-tolerant variant of
/// [`estimate_gradient_pooled`](crate::estimate_gradient_pooled): the probe
/// measurements run through the retry → reject → re-read ladder.
///
/// `base_loss` must already be finite (the trainer's divergence guard
/// retries the base measurement before calling any estimator).
#[allow(clippy::too_many_arguments)] // mirrors the non-robust entry point
pub fn estimate_gradient_robust_pooled<R: Rng + ?Sized>(
    loss: &(dyn Fn(&RVector) -> f64 + Sync),
    theta: &RVector,
    base_loss: f64,
    settings: &ZoSettings,
    pert: &Perturbation<'_>,
    robust: &RobustEval,
    pool: &ExecPool,
    rng: &mut R,
) -> (ZoEstimate, RobustStats) {
    let directions = draw_perturbations(pert, theta.len(), settings.q, rng);
    let (quotients, stats) = measure_quotients_robust(
        loss,
        theta,
        base_loss,
        settings.mu,
        &directions,
        robust,
        pool,
    );
    (
        assemble_estimate(theta.len(), settings, directions, quotients),
        stats,
    )
}

/// Fault-tolerant variant of
/// [`lcng_direction_pooled`](crate::lcng_direction_pooled): probe
/// measurements run through the retry → reject → re-read ladder before the
/// in-span solve (which therefore never sees a non-finite quotient).
///
/// # Errors
///
/// Same as [`lcng_direction_pooled`](crate::lcng_direction_pooled).
#[allow(clippy::too_many_arguments)] // mirrors the non-robust entry point
pub fn lcng_direction_robust_pooled<R: Rng + ?Sized>(
    loss: &(dyn Fn(&RVector) -> f64 + Sync),
    theta: &RVector,
    base_loss: f64,
    settings: &LcngSettings,
    pert: &Perturbation<'_>,
    metric: &MetricSource<'_>,
    robust: &RobustEval,
    pool: &ExecPool,
    rng: &mut R,
) -> Result<(LcngStep, RobustStats), LinalgError> {
    let n = theta.len();
    let directions = draw_perturbations(pert, n, settings.zo.q, rng);
    let (quotients, stats) = measure_quotients_robust(
        loss,
        theta,
        base_loss,
        settings.zo.mu,
        &directions,
        robust,
        pool,
    );
    let metric_dirs: Vec<RVector> = match metric {
        MetricSource::Identity => directions.clone(),
        MetricSource::Model { model, inputs } => {
            fisher_vector_products_pooled(model, theta, inputs, &directions, pool)
        }
    };
    let step = solve_in_span(theta, settings, directions, quotients, metric_dirs)?;
    Ok((step, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use std::sync::Mutex;

    fn quadratic(t: &RVector) -> f64 {
        t.iter()
            .enumerate()
            .map(|(i, v)| (i + 1) as f64 * v * v)
            .sum()
    }

    /// A loss oracle that fails deterministically by *content*: the k-th
    /// evaluation of any given point follows a per-point fault schedule, so
    /// results are scheduling-independent like a `FaultyChip`.
    struct FaultyLoss {
        attempts: Mutex<HashMap<u64, u32>>,
        /// Fault decision per (content-hash, attempt).
        fault: fn(u64, u32) -> Option<f64>,
    }

    impl FaultyLoss {
        fn new(fault: fn(u64, u32) -> Option<f64>) -> Self {
            FaultyLoss {
                attempts: Mutex::new(HashMap::new()),
                fault,
            }
        }

        fn eval(&self, t: &RVector) -> f64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for v in t.iter() {
                h = (h ^ v.to_bits()).wrapping_mul(0x100_0000_01b3);
            }
            let mut attempts = self.attempts.lock().unwrap();
            let a = attempts.entry(h).or_insert(0);
            let attempt = *a;
            *a += 1;
            match (self.fault)(h, attempt) {
                Some(v) => v,
                None => quadratic(t),
            }
        }
    }

    #[test]
    fn retry_recovers_transient_nan() {
        // Every point NaNs on its first attempt, succeeds on the second.
        let oracle = FaultyLoss::new(|_, attempt| (attempt == 0).then_some(f64::NAN));
        let loss = |t: &RVector| oracle.eval(t);
        let (v, retries) = retry_non_finite(&loss, &RVector::from_slice(&[1.0, 2.0]), 3);
        assert_eq!(v, quadratic(&RVector::from_slice(&[1.0, 2.0])));
        assert_eq!(retries, 1);
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let oracle = FaultyLoss::new(|_, _| Some(f64::NAN));
        let loss = |t: &RVector| oracle.eval(t);
        let (v, retries) = retry_non_finite(&loss, &RVector::from_slice(&[1.0]), 3);
        assert!(v.is_nan());
        assert_eq!(retries, 3);
    }

    #[test]
    fn robust_estimate_matches_clean_when_faults_are_transient() {
        // First attempt of ~1/4 of points is NaN; retries always recover, so
        // the robust estimate must equal the fault-free one exactly.
        let theta = RVector::from_slice(&[1.0, -1.0, 0.5, 0.25]);
        let settings = ZoSettings::for_dimension(4, 12);
        let robust = RobustEval::standard();
        let clean = {
            let mut rng = StdRng::seed_from_u64(33);
            let loss = |t: &RVector| quadratic(t);
            crate::estimate_gradient_pooled(
                &loss,
                &theta,
                quadratic(&theta),
                &settings,
                &Perturbation::Gaussian,
                &ExecPool::serial(),
                &mut rng,
            )
        };
        let oracle =
            FaultyLoss::new(|h, attempt| (h % 4 == 0 && attempt == 0).then_some(f64::NAN));
        let loss = |t: &RVector| oracle.eval(t);
        let mut rng = StdRng::seed_from_u64(33);
        let (est, stats) = estimate_gradient_robust_pooled(
            &loss,
            &theta,
            quadratic(&theta),
            &settings,
            &Perturbation::Gaussian,
            &robust,
            &ExecPool::serial(),
            &mut rng,
        );
        assert_eq!(stats.unrecovered, 0);
        for (a, b) in clean.gradient.iter().zip(est.gradient.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn outlier_spike_is_rejected_and_replaced() {
        // One content in ~8 spikes by ×1e6 on its first attempt only; the
        // re-read path must restore the clean quotient.
        let theta = RVector::from_slice(&[1.0, -1.0, 0.5, 0.25]);
        let settings = ZoSettings::for_dimension(4, 16);
        let clean = {
            let mut rng = StdRng::seed_from_u64(35);
            let loss = |t: &RVector| quadratic(t);
            crate::estimate_gradient_pooled(
                &loss,
                &theta,
                quadratic(&theta),
                &settings,
                &Perturbation::Gaussian,
                &ExecPool::serial(),
                &mut rng,
            )
        };
        let oracle = FaultyLoss::new(|h, attempt| (h % 8 == 0 && attempt == 0).then_some(1e6));
        let loss = |t: &RVector| oracle.eval(t);
        let mut rng = StdRng::seed_from_u64(35);
        let (est, stats) = estimate_gradient_robust_pooled(
            &loss,
            &theta,
            quadratic(&theta),
            &settings,
            &Perturbation::Gaussian,
            &RobustEval::standard(),
            &ExecPool::serial(),
            &mut rng,
        );
        assert!(stats.rejected > 0, "the spike should be flagged");
        assert_eq!(stats.unrecovered, 0);
        for (a, b) in clean.gradient.iter().zip(est.gradient.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn permanently_dead_probe_is_zeroed_not_propagated() {
        let theta = RVector::from_slice(&[1.0, -1.0]);
        let settings = ZoSettings::for_dimension(2, 8);
        // A fraction of contents always NaN — unrecoverable.
        let oracle = FaultyLoss::new(|h, _| (h % 3 == 0).then_some(f64::NAN));
        let loss = |t: &RVector| oracle.eval(t);
        let mut rng = StdRng::seed_from_u64(37);
        let (est, stats) = estimate_gradient_robust_pooled(
            &loss,
            &theta,
            quadratic(&theta),
            &settings,
            &Perturbation::Gaussian,
            &RobustEval::standard(),
            &ExecPool::serial(),
            &mut rng,
        );
        assert!(stats.unrecovered > 0, "some probes must be dead");
        assert!(est.gradient.iter().all(|v| v.is_finite()));
        assert!(est.quotients.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn robust_lcng_survives_faults_and_rejects_all_nan() {
        let theta = RVector::zeros(3);
        let settings = LcngSettings::for_dimension(3, 8);
        let oracle = FaultyLoss::new(|h, attempt| (h % 5 == 0 && attempt == 0).then_some(f64::NAN));
        let loss = |t: &RVector| oracle.eval(t);
        let mut rng = StdRng::seed_from_u64(39);
        let (step, _) = lcng_direction_robust_pooled(
            &loss,
            &theta,
            quadratic(&theta),
            &settings,
            &Perturbation::Gaussian,
            &MetricSource::Identity,
            &RobustEval::standard(),
            &ExecPool::serial(),
            &mut rng,
        )
        .unwrap();
        assert!(step.direction.iter().all(|v| v.is_finite()));

        // The raw (non-robust) pooled path must refuse NaN quotients.
        let oracle = FaultyLoss::new(|_, _| Some(f64::NAN));
        let loss = |t: &RVector| oracle.eval(t);
        let mut rng = StdRng::seed_from_u64(39);
        let err = crate::lcng_direction_pooled(
            &loss,
            &theta,
            0.0,
            &settings,
            &Perturbation::Gaussian,
            &MetricSource::Identity,
            &ExecPool::serial(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::NonFinite { .. }));
    }

    #[test]
    fn robust_stats_absorb_accumulates() {
        let mut a = RobustStats {
            retries: 1,
            rejected: 2,
            unrecovered: 3,
        };
        a.absorb(RobustStats {
            retries: 10,
            rejected: 20,
            unrecovered: 30,
        });
        assert_eq!(
            a,
            RobustStats {
                retries: 11,
                rejected: 22,
                unrecovered: 33,
            }
        );
    }
}
