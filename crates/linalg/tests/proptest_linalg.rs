//! Property-based tests of the algebraic identities `photon-linalg`
//! promises.

use proptest::prelude::*;

use photon_linalg::{
    hermitian_eig, symmetric_eig, CLu, CMatrix, CVector, RCholesky, RMatrix, RVector, C64,
};

fn arb_c64() -> impl Strategy<Value = C64> {
    (-2.0..2.0f64, -2.0..2.0f64).prop_map(|(re, im)| C64::new(re, im))
}

fn arb_cvec(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec(arb_c64(), n).prop_map(CVector::from_vec)
}

fn arb_cmat(rows: usize, cols: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(arb_c64(), rows * cols)
        .prop_map(move |v| CMatrix::from_vec(rows, cols, v))
}

fn arb_rmat(rows: usize, cols: usize) -> impl Strategy<Value = RMatrix> {
    proptest::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |v| RMatrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn complex_field_axioms(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        let assoc = (a + b) + c - (a + (b + c));
        prop_assert!(assoc.abs() < 1e-12);
        let distr = a * (b + c) - (a * b + a * c);
        prop_assert!(distr.abs() < 1e-12);
        let comm = a * b - b * a;
        prop_assert!(comm.abs() < 1e-12);
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-10);
    }

    #[test]
    fn conjugation_is_involutive_and_multiplicative(a in arb_c64(), b in arb_c64()) {
        prop_assert_eq!(a.conj().conj(), a);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-12);
    }

    #[test]
    fn hermitian_dot_cauchy_schwarz(x in arb_cvec(5), y in arb_cvec(5)) {
        let ip = x.dot(&y).unwrap().abs();
        prop_assert!(ip <= x.norm() * y.norm() + 1e-9);
    }

    #[test]
    fn adjoint_moves_inner_product(
        a in arb_cmat(3, 4),
        x in arb_cvec(4),
        y in arb_cvec(3),
    ) {
        // ⟨A·x, y⟩ = ⟨x, Aᴴ·y⟩
        let lhs = a.mul_vec(&x).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&a.adjoint().mul_vec(&y).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn matmul_is_associative(
        a in arb_cmat(2, 3),
        b in arb_cmat(3, 4),
        c in arb_cmat(4, 2),
    ) {
        let left = a.mul_mat(&b).unwrap().mul_mat(&c).unwrap();
        let right = a.mul_mat(&b.mul_mat(&c).unwrap()).unwrap();
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    #[test]
    fn transpose_reverses_products(a in arb_rmat(3, 4), b in arb_rmat(4, 2)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.mul_mat(&b).unwrap().transpose();
        let rhs = b.transpose().mul_mat(&a.transpose()).unwrap();
        prop_assert!((&lhs - &rhs).max_abs() < 1e-10);
    }

    #[test]
    fn lu_inverse_roundtrip_on_dominant(
        vals in proptest::collection::vec(arb_c64(), 16),
    ) {
        let a = CMatrix::from_fn(4, 4, |r, c| {
            vals[r * 4 + c] + if r == c { C64::from_real(8.0) } else { C64::ZERO }
        });
        let lu = CLu::new(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        prop_assert!((&prod - &CMatrix::identity(4)).max_abs() < 1e-8);
        // det(A)·det(A⁻¹) = 1
        let d = lu.det() * inv.det().unwrap();
        prop_assert!((d - C64::ONE).abs() < 1e-6);
    }

    #[test]
    fn cholesky_solve_matches_lu_solve(
        vals in proptest::collection::vec(-1.0..1.0f64, 12),
        b in proptest::collection::vec(-1.0..1.0f64, 3),
    ) {
        let base = RMatrix::from_fn(4, 3, |r, c| vals[r * 3 + c]);
        let mut g = base.gram();
        g.add_diagonal(1.0);
        let bv = RVector::from_slice(&b);
        let x_chol = RCholesky::new(&g).unwrap().solve(&bv).unwrap();
        let x_lu = g.solve(&bv).unwrap();
        prop_assert!((&x_chol - &x_lu).max_abs() < 1e-8);
    }

    #[test]
    fn symmetric_eig_trace_and_det_invariants(
        vals in proptest::collection::vec(-1.0..1.0f64, 9),
    ) {
        let mut a = RMatrix::from_fn(3, 3, |r, c| vals[r * 3 + c]);
        a.symmetrize();
        let eig = symmetric_eig(&a).unwrap();
        // Trace = Σλ, det = Πλ.
        prop_assert!((eig.values.sum() - a.trace().unwrap()).abs() < 1e-8);
        let prod: f64 = eig.values.iter().product();
        prop_assert!((prod - a.det().unwrap()).abs() < 1e-7);
    }

    #[test]
    fn hermitian_eig_diagonalizes(
        vals in proptest::collection::vec(arb_c64(), 9),
    ) {
        let raw = CMatrix::from_vec(3, 3, vals);
        // Make Hermitian: H = (A + Aᴴ)/2.
        let h = (&raw + &raw.adjoint()).scale_real(0.5);
        let eig = hermitian_eig(&h).unwrap();
        // Vᴴ·H·V is diagonal with the eigenvalues.
        let d = eig
            .vectors
            .adjoint()
            .mul_mat(&h)
            .unwrap()
            .mul_mat(&eig.vectors)
            .unwrap();
        for r in 0..3 {
            for c in 0..3 {
                if r == c {
                    prop_assert!((d[(r, c)].re - eig.values[r]).abs() < 1e-7);
                    prop_assert!(d[(r, c)].im.abs() < 1e-7);
                } else {
                    prop_assert!(d[(r, c)].abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    fn powers_sum_equals_norm_sqr(x in arb_cvec(6)) {
        prop_assert!((x.powers().sum() - x.norm_sqr()).abs() < 1e-10);
    }

    #[test]
    fn axpy_matches_operator_form(
        x in arb_cvec(5),
        y in arb_cvec(5),
        alpha in arb_c64(),
    ) {
        let mut a = x.clone();
        a.axpy(alpha, &y);
        let b = &x + &y.scale(alpha);
        prop_assert!((&a - &b).max_abs() < 1e-12);
    }
}
