//! LU decomposition with partial pivoting, for real and complex matrices.

use crate::c64::C64;
use crate::cmatrix::CMatrix;
use crate::cvector::CVector;
use crate::error::{LinalgError, Result};
use crate::rmatrix::RMatrix;
use crate::rvector::RVector;

/// LU factorization `P·A = L·U` of a square complex matrix.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CMatrix, CVector, CLu};
///
/// let a = CMatrix::from_rows(&[
///     vec![C64::from_real(4.0), C64::from_real(3.0)],
///     vec![C64::from_real(6.0), C64::from_real(3.0)],
/// ]);
/// let lu = CLu::new(&a)?;
/// let b = CVector::from_real_slice(&[10.0, 12.0]);
/// let x = lu.solve(&b)?;
/// let back = a.mul_vec(&x)?;
/// assert!((&back - &b).max_abs() < 1e-10);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CLu {
    lu: CMatrix,
    pivots: Vec<usize>,
    sign_flips: usize,
}

impl CLu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::Singular`] when a pivot vanishes to working precision.
    pub fn new(a: &CMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots = Vec::with_capacity(n);
        let mut sign_flips = 0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for r in k + 1..n {
                let v = lu[(r, k)].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best <= f64::EPSILON * scale * n as f64 {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                sign_flips += 1;
            }
            pivots.push(p);

            let pivot_inv = lu[(k, k)].recip();
            for r in k + 1..n {
                let factor = lu[(r, k)] * pivot_inv;
                lu[(r, k)] = factor;
                for c in k + 1..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(CLu {
            lu,
            pivots,
            sign_flips,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &CVector) -> Result<CVector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut x = b.clone();
        // Apply row permutation.
        for (k, &p) in self.pivots.iter().enumerate() {
            if p != k {
                let tmp = x[k];
                x[k] = x[p];
                x[p] = tmp;
            }
        }
        // Forward substitution (L has unit diagonal).
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        // Back substitution.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in r + 1..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &CMatrix) -> Result<CMatrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.dim()),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut out = CMatrix::zeros(b.rows(), b.cols());
        for c in 0..b.cols() {
            let x = self.solve(&b.col(c))?;
            out.set_col(c, &x);
        }
        Ok(out)
    }

    /// Matrix inverse `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (shape errors cannot occur here).
    pub fn inverse(&self) -> Result<CMatrix> {
        self.solve_mat(&CMatrix::identity(self.dim()))
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> C64 {
        let mut d = if self.sign_flips.is_multiple_of(2) {
            C64::ONE
        } else {
            -C64::ONE
        };
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// LU factorization `P·A = L·U` of a square real matrix.
///
/// # Examples
///
/// ```
/// use photon_linalg::{RMatrix, RVector, RLu};
///
/// let a = RMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
/// let x = RLu::new(&a)?.solve(&RVector::from_slice(&[3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RLu {
    lu: RMatrix,
    pivots: Vec<usize>,
    sign_flips: usize,
}

impl RLu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::Singular`] when a pivot vanishes to working precision.
    pub fn new(a: &RMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots = Vec::with_capacity(n);
        let mut sign_flips = 0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for r in k + 1..n {
                let v = lu[(r, k)].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best <= f64::EPSILON * scale * n as f64 {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                sign_flips += 1;
            }
            pivots.push(p);

            let pivot_inv = 1.0 / lu[(k, k)];
            for r in k + 1..n {
                let factor = lu[(r, k)] * pivot_inv;
                lu[(r, k)] = factor;
                for c in k + 1..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(RLu {
            lu,
            pivots,
            sign_flips,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &RVector) -> Result<RVector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut x = b.clone();
        for (k, &p) in self.pivots.iter().enumerate() {
            if p != k {
                x.as_mut_slice().swap(k, p);
            }
        }
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in r + 1..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &RMatrix) -> Result<RMatrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.dim()),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut out = RMatrix::zeros(b.rows(), b.cols());
        for c in 0..b.cols() {
            let x = self.solve(&b.col(c))?;
            out.set_col(c, &x);
        }
        Ok(out)
    }

    /// Matrix inverse `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (shape errors cannot occur here).
    pub fn inverse(&self) -> Result<RMatrix> {
        self.solve_mat(&RMatrix::identity(self.dim()))
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = if self.sign_flips.is_multiple_of(2) { 1.0 } else { -1.0 };
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

impl CMatrix {
    /// Computes the inverse via LU factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<CMatrix> {
        CLu::new(self)?.inverse()
    }

    /// Solves `self·x = b` via LU factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`], [`LinalgError::Singular`], or shape errors.
    pub fn solve(&self, b: &CVector) -> Result<CVector> {
        CLu::new(self)?.solve(b)
    }

    /// Determinant via LU factorization; zero for singular matrices.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square matrices.
    pub fn det(&self) -> Result<C64> {
        match CLu::new(self) {
            Ok(lu) => Ok(lu.det()),
            Err(LinalgError::Singular) => Ok(C64::ZERO),
            Err(e) => Err(e),
        }
    }
}

impl RMatrix {
    /// Computes the inverse via LU factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<RMatrix> {
        RLu::new(self)?.inverse()
    }

    /// Solves `self·x = b` via LU factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`], [`LinalgError::Singular`], or shape errors.
    pub fn solve(&self, b: &RVector) -> Result<RVector> {
        RLu::new(self)?.solve(b)
    }

    /// Determinant via LU factorization; zero for singular matrices.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square matrices.
    pub fn det(&self) -> Result<f64> {
        match RLu::new(self) {
            Ok(lu) => Ok(lu.det()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_solve_roundtrip() {
        let a = RMatrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ]);
        let x_true = RVector::from_slice(&[1.0, -2.0, 0.5]);
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert!((&x - &x_true).max_abs() < 1e-10);
    }

    #[test]
    fn real_inverse() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        assert!((&prod - &RMatrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn real_det() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((a.det().unwrap() + 2.0).abs() < 1e-12);
        let sing = RMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(sing.det().unwrap(), 0.0);
        assert!(matches!(sing.inverse(), Err(LinalgError::Singular)));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = RMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&RVector::from_slice(&[2.0, 3.0])).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
        assert!((a.det().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_solve_roundtrip() {
        let a = CMatrix::from_rows(&[
            vec![C64::new(2.0, 1.0), C64::new(0.0, -1.0)],
            vec![C64::new(1.0, 0.0), C64::new(3.0, 2.0)],
        ]);
        let x_true = CVector::from_vec(vec![C64::new(1.0, -1.0), C64::new(0.5, 2.0)]);
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert!((&x - &x_true).max_abs() < 1e-10);
    }

    #[test]
    fn complex_inverse_and_det() {
        let a = CMatrix::from_rows(&[vec![C64::ONE, C64::I], vec![-C64::I, C64::from_real(2.0)]]);
        let inv = a.inverse().unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        assert!((&prod - &CMatrix::identity(2)).max_abs() < 1e-12);
        // det = 1*2 - i*(-i) = 2 - 1 = 1
        assert!((a.det().unwrap() - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn complex_singular_detected() {
        let a = CMatrix::from_rows(&[vec![C64::ONE, C64::ONE], vec![C64::ONE, C64::ONE]]);
        assert!(matches!(CLu::new(&a), Err(LinalgError::Singular)));
        assert_eq!(a.det().unwrap(), C64::ZERO);
    }

    #[test]
    fn non_square_rejected() {
        let a = RMatrix::zeros(2, 3);
        assert!(matches!(RLu::new(&a), Err(LinalgError::NotSquare { .. })));
        let c = CMatrix::zeros(3, 2);
        assert!(matches!(CLu::new(&c), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_mat_identity_is_inverse() {
        let a = RMatrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let lu = RLu::new(&a).unwrap();
        let inv = lu.solve_mat(&RMatrix::identity(2)).unwrap();
        assert!((&inv - &lu.inverse().unwrap()).max_abs() < 1e-14);
        assert!(lu.solve_mat(&RMatrix::zeros(3, 1)).is_err());
        assert!(lu.solve(&RVector::zeros(3)).is_err());
    }

    #[test]
    fn larger_random_like_system() {
        // Deterministic pseudo-random entries via a simple LCG.
        let n = 12;
        let mut state = 0x12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = RMatrix::from_fn(n, n, |r, c| next() + if r == c { 4.0 } else { 0.0 });
        let x_true = RVector::from_fn(n, |i| (i as f64 * 0.37).sin());
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert!((&x - &x_true).max_abs() < 1e-9);
    }
}
