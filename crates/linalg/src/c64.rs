//! Double-precision complex numbers.
//!
//! The crate ships its own complex type instead of depending on
//! `num-complex`: the photonic simulator needs only a small, fixed surface
//! (arithmetic, conjugation, polar forms) and keeping it local makes the
//! numeric stack fully auditable.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};


/// A complex number with `f64` real and imaginary parts.
///
/// `C64` is `Copy` and implements the full set of arithmetic operators,
/// including mixed `C64`/`f64` forms.
///
/// # Examples
///
/// ```
/// use photon_linalg::C64;
///
/// let a = C64::new(1.0, 2.0);
/// let b = C64::I;
/// assert_eq!(a * b, C64::new(-2.0, 1.0));
/// assert_eq!(a.conj(), C64::new(1.0, -2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// ```
    /// use photon_linalg::C64;
    /// assert_eq!(C64::from_real(3.0), C64::new(3.0, 0.0));
    /// ```
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r · e^{jφ}`.
    ///
    /// ```
    /// use photon_linalg::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, phi: f64) -> Self {
        C64 {
            re: r * phi.cos(),
            im: r * phi.sin(),
        }
    }

    /// Returns `e^{jφ}`, a unit-modulus phasor.
    ///
    /// This is the transfer function of an ideal phase shifter and appears
    /// throughout the photonic stage implementations.
    #[inline]
    pub fn cis(phi: f64) -> Self {
        C64 {
            re: phi.cos(),
            im: phi.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²` — the optical *power* carried by an amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`, matching IEEE float division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Complex square root (principal branch).
    ///
    /// ```
    /// use photon_linalg::C64;
    /// let z = C64::new(-1.0, 0.0).sqrt();
    /// assert!((z - C64::I).abs() < 1e-12);
    /// ```
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let phi = self.arg();
        C64::from_polar(r.sqrt(), phi / 2.0)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Returns `true` if either part is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c`, written out for inlining.
    #[inline]
    pub fn mul_add(self, b: C64, c: C64) -> Self {
        C64 {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w^-1 by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64 {
            re: self.re + rhs,
            im: self.im,
        }
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64 {
            re: self.re - rhs,
            im: self.im,
        }
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64 {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Add<C64> for f64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        rhs + self
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl Product for C64 {
    fn product<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn constructors_and_constants() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::from(2.5), C64::new(2.5, 0.0));
        assert_eq!(C64::from_real(-1.0), C64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::new(3.0, -4.0);
        let back = C64::from_polar(z.abs(), z.arg());
        assert!(close(z, back));
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..32 {
            let phi = k as f64 * 0.3;
            assert!((C64::cis(phi).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.25, -0.5);
        let b = C64::new(-2.0, 3.5);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * a.recip(), C64::ONE));
        assert!(close(-(-a), a));
    }

    #[test]
    fn conjugation_rules() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 0.25);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!(close((a + b).conj(), a.conj() + b.conj()));
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-12);
        assert!((a * a.conj()).im.abs() < 1e-15);
    }

    #[test]
    fn mixed_real_ops() {
        let a = C64::new(1.0, 2.0);
        assert_eq!(a * 2.0, C64::new(2.0, 4.0));
        assert_eq!(2.0 * a, C64::new(2.0, 4.0));
        assert_eq!(a + 1.0, C64::new(2.0, 2.0));
        assert_eq!(1.0 + a, C64::new(2.0, 2.0));
        assert_eq!(a - 1.0, C64::new(0.0, 2.0));
        assert_eq!(a / 2.0, C64::new(0.5, 1.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = C64::new(1.0, 1.0);
        a += C64::ONE;
        assert_eq!(a, C64::new(2.0, 1.0));
        a -= C64::I;
        assert_eq!(a, C64::new(2.0, 0.0));
        a *= C64::I;
        assert_eq!(a, C64::new(0.0, 2.0));
        a /= C64::new(0.0, 2.0);
        assert!(close(a, C64::ONE));
        a *= 3.0;
        assert!(close(a, C64::new(3.0, 0.0)));
    }

    #[test]
    fn sqrt_and_exp() {
        let z = C64::new(0.0, 2.0);
        let s = z.sqrt();
        assert!(close(s * s, z));
        let e = C64::new(0.0, std::f64::consts::PI).exp();
        assert!(close(e, -C64::ONE));
    }

    #[test]
    fn sum_and_product() {
        let xs = [C64::ONE, C64::I, C64::new(2.0, 0.0)];
        let s: C64 = xs.iter().copied().sum();
        assert!(close(s, C64::new(3.0, 1.0)));
        let p: C64 = xs.iter().copied().product();
        assert!(close(p, C64::new(0.0, 2.0)));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(C64::new(f64::NAN, 0.0).is_nan());
        assert!(!C64::ONE.is_nan());
        assert!(C64::ONE.is_finite());
        assert!(!C64::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let a = C64::new(1.5, -2.0);
        let b = C64::new(0.25, 3.0);
        let c = C64::new(-1.0, 1.0);
        assert!(close(a.mul_add(b, c), a * b + c));
    }
}
