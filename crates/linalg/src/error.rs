//! Error types for linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible linear-algebra routines.
///
/// # Examples
///
/// ```
/// use photon_linalg::{CMatrix, LinalgError};
///
/// let singular = CMatrix::zeros(2, 2);
/// match singular.inverse() {
///     Err(LinalgError::Singular) => {}
///     other => panic!("expected singular, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// The matrix is singular to working precision.
    Singular,
    /// A matrix that must be square is not.
    NotSquare {
        /// Number of rows found.
        rows: usize,
        /// Number of columns found.
        cols: usize,
    },
    /// A matrix that must be (Hermitian) positive definite is not.
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was invalid (e.g. zero dimension where nonzero required).
    InvalidArgument(String),
    /// An input contained a non-finite (NaN or infinite) value where only
    /// finite values are meaningful (e.g. entries of a normal-equation
    /// right-hand side assembled from physical measurements).
    NonFinite {
        /// Human-readable description of where the non-finite value appeared.
        context: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, found {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            LinalgError::NonFinite { context } => {
                write!(f, "non-finite value in {context}")
            }
        }
    }
}

impl Error for LinalgError {}

/// Convenience alias for `Result<T, LinalgError>`.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::ShapeMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        let s = e.to_string();
        assert!(s.contains("3x3") && s.contains("2x3"));
        assert_eq!(
            LinalgError::Singular.to_string(),
            "matrix is singular to working precision"
        );
        assert!(LinalgError::NotSquare { rows: 2, cols: 3 }
            .to_string()
            .contains("2x3"));
        assert!(LinalgError::NoConvergence { iterations: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<LinalgError>();
    }
}
