//! # photon-linalg
//!
//! Self-contained dense linear algebra for the `photon-zo` workspace: the
//! numeric substrate beneath the optical-neural-network simulator, the LCNG
//! optimizer and the chip calibrator.
//!
//! The crate provides:
//!
//! - [`C64`]: double-precision complex scalars;
//! - [`CVector`] / [`RVector`]: dense complex / real vectors;
//! - [`CMatrix`] / [`RMatrix`]: dense row-major complex / real matrices;
//! - [`CLu`] / [`RLu`]: LU factorization with partial pivoting;
//! - [`RCholesky`] / [`CCholesky`]: Cholesky factorization of positive
//!   definite matrices (also the engine for `N(0, Σ)` sampling);
//! - [`CQr`]: Householder QR;
//! - [`symmetric_eig`] / [`hermitian_eig`]: Jacobi eigensolvers;
//! - [`CPanel`] / [`gemm_into`] / [`mzi_rotate`]: packed `N×B` multi-RHS
//!   panels and the blocked complex GEMM / fused-rotation kernels behind
//!   the compiled batched forward paths;
//! - [`Matrix32`] / [`Panel32`] / [`gemm32_into`] / [`kernel_tier`]: the
//!   opt-in single-precision structure-of-arrays fast path with runtime
//!   SIMD dispatch (AVX2+FMA / NEON / scalar reference);
//! - [`random`]: seeded Gaussian vectors, Ginibre matrices and Haar-random
//!   unitaries.
//!
//! Everything is written against explicit seeds and returns typed errors —
//! no global state, no panics on bad user input (hot-loop primitives that
//! assert shapes are documented as such).
//!
//! # Examples
//!
//! Build a random unitary, push an optical state through it, and verify that
//! power is conserved:
//!
//! ```
//! use rand::SeedableRng;
//! use photon_linalg::{random, CVector};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let u = random::haar_unitary(8, &mut rng)?;
//! let x = random::normal_cvector(8, &mut rng);
//! let y = u.mul_vec(&x)?;
//! assert!((y.norm_sqr() - x.norm_sqr()).abs() < 1e-10);
//! # Ok::<(), photon_linalg::LinalgError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod c64;
mod cholesky;
mod cmatrix;
mod cvector;
mod eig;
mod error;
mod gemm;
mod gemm32;
mod lu;
mod qr;
mod rmatrix;
mod rvector;

pub mod random;

pub use c64::C64;
pub use cholesky::{CCholesky, RCholesky};
pub use cmatrix::CMatrix;
pub use cvector::CVector;
pub use eig::{hermitian_eig, symmetric_eig, HermitianEig, SymmetricEig};
pub use error::{LinalgError, Result};
pub use gemm::{gemm_into, mzi_rotate, scale_slice, CPanel};
pub use gemm32::{gemm32_into, kernel_tier, KernelTier, Matrix32, Panel32};
pub use lu::{CLu, RLu};
pub use qr::CQr;
pub use rmatrix::RMatrix;
pub use rvector::RVector;
