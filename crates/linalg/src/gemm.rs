//! Batched multi-RHS kernels: a packed `N×B` complex panel and the blocked
//! GEMM / fused-rotation primitives that let one compiled mesh unitary be
//! applied to a whole mini-batch at once.
//!
//! The panel is **column-major**: column `b` (one sample's optical field)
//! is the contiguous slice `data[b*dim .. (b+1)*dim]`. With [`CMatrix`]
//! stored row-major, the GEMM inner product pairs a contiguous matrix row
//! with a contiguous panel column — both streams are unit-stride, which is
//! what makes the microkernel cache-friendly without explicit re-packing.
//!
//! Determinism contract: every kernel in this module uses a fixed
//! per-element summation order that does not depend on blocking, panel
//! width, or caller threading. Two calls with the same inputs produce
//! bitwise-identical outputs, which the worker-pool evaluation layer relies
//! on for pool-size invariance.

use crate::c64::C64;
use crate::cmatrix::CMatrix;
use crate::cvector::CVector;

/// Number of panel columns processed per block of the blocked GEMM loop.
///
/// Purely a traversal choice: results are bitwise-independent of this value
/// because each output element is a self-contained dot product.
const COL_BLOCK: usize = 16;

/// A packed `dim × batch` complex panel holding `batch` right-hand sides.
///
/// Column-major storage: column `b` is contiguous, so one sample's field is
/// a single slice. Buffers are reused across [`CPanel::resize`] calls so a
/// scratch panel allocates only on growth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CPanel {
    dim: usize,
    batch: usize,
    data: Vec<C64>,
}

impl CPanel {
    /// Creates a zero-filled `dim × batch` panel.
    #[must_use]
    pub fn zeros(dim: usize, batch: usize) -> Self {
        Self {
            dim,
            batch,
            data: vec![C64::ZERO; dim * batch],
        }
    }

    /// Creates an empty panel; use [`CPanel::resize`] before filling it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes to `dim × batch`, zero-filling the contents. Keeps the
    /// existing allocation whenever it is large enough.
    pub fn resize(&mut self, dim: usize, batch: usize) {
        self.dim = dim;
        self.batch = batch;
        self.data.clear();
        self.data.resize(dim * batch, C64::ZERO);
    }

    /// Number of rows (the optical dimension `N`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of columns (the batch width `B`).
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Column `b` as a contiguous slice (one sample's field).
    ///
    /// # Panics
    ///
    /// Panics when `b >= self.batch()`.
    #[must_use]
    pub fn col(&self, b: usize) -> &[C64] {
        &self.data[b * self.dim..(b + 1) * self.dim]
    }

    /// Mutable column `b` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when `b >= self.batch()`.
    pub fn col_mut(&mut self, b: usize) -> &mut [C64] {
        &mut self.data[b * self.dim..(b + 1) * self.dim]
    }

    /// Copies vector `v` into column `b`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.dim()` or `b >= self.batch()`.
    pub fn set_col(&mut self, b: usize, v: &CVector) {
        assert_eq!(v.len(), self.dim, "panel column length mismatch");
        self.col_mut(b).copy_from_slice(v.as_slice());
    }

    /// The whole panel as a flat column-major slice.
    #[must_use]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// The whole panel as a flat mutable column-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }
}

/// 2×-unrolled complex dot product of two equal-length slices.
///
/// Two independent accumulators hide the multiply-add latency chain; the
/// split (evens into `acc0`, odds into `acc1`, combined once at the end) is
/// a fixed summation order, so the result is deterministic and independent
/// of any outer blocking.
/// The equal-length precondition is validated by the `gemm_into` shape
/// assert; per-element access is expressed through `chunks_exact`, whose
/// length guarantee lets the compiler elide bounds checks in the hot loop
/// (debug builds still verify the slice shapes below).
#[inline]
fn dot_unrolled(a: &[C64], x: &[C64]) -> C64 {
    debug_assert_eq!(a.len(), x.len());
    let n = a.len();
    let mut acc0 = C64::ZERO;
    let mut acc1 = C64::ZERO;
    for (pa, px) in a.chunks_exact(2).zip(x.chunks_exact(2)) {
        acc0 += pa[0] * px[0];
        acc1 += pa[1] * px[1];
    }
    if n % 2 == 1 {
        acc0 += a[n - 1] * x[n - 1];
    }
    acc0 + acc1
}

/// Blocked multi-RHS complex GEMM: `y = a · x` with `x` and `y` packed
/// panels. Reshapes `y` to `a.rows() × x.batch()`.
///
/// Each output element is one contiguous-row × contiguous-column dot
/// product computed by the 2×-unrolled microkernel, so output values are
/// bitwise-independent of the column blocking and of how callers partition
/// the batch.
///
/// # Panics
///
/// Panics when `a.cols() != x.dim()`.
pub fn gemm_into(a: &CMatrix, x: &CPanel, y: &mut CPanel) {
    assert_eq!(a.cols(), x.dim(), "gemm inner dimension mismatch");
    let m = a.rows();
    let b_total = x.batch();
    y.resize(m, b_total);
    let mut b0 = 0;
    while b0 < b_total {
        let b1 = (b0 + COL_BLOCK).min(b_total);
        for b in b0..b1 {
            let xc = x.col(b);
            let yc = y.col_mut(b);
            for (r, out) in yc.iter_mut().enumerate() {
                *out = dot_unrolled(a.row(r), xc);
            }
        }
        b0 = b1;
    }
}

/// Scales every element of `row` by `f` — a phase-shifter applied across
/// all right-hand sides at once.
pub fn scale_slice(row: &mut [C64], f: C64) {
    for v in row.iter_mut() {
        *v = f * *v;
    }
}

/// Fused 2×2 MZI beam-splitter rotation applied across `B` right-hand
/// sides: for each column position `k`,
///
/// ```text
/// top[k] ← c·top[k] + i·s·bot[k]
/// bot[k] ← i·s·top[k] + c·bot[k]
/// ```
///
/// element for element the same arithmetic as the interpreted
/// single-sample op walk, so compiled and interpreted paths agree to
/// rounding.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn mzi_rotate(top: &mut [C64], bot: &mut [C64], c: f64, s: f64) {
    assert_eq!(top.len(), bot.len(), "mzi_rotate slice length mismatch");
    for (t, b) in top.iter_mut().zip(bot.iter_mut()) {
        let a = *t;
        let d = *b;
        *t = a.scale(c) + C64::new(-s * d.im, s * d.re);
        *b = C64::new(-s * a.im, s * a.re) + d.scale(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    #[test]
    fn gemm_matches_mul_vec_per_column() {
        let a = CMatrix::from_fn(5, 5, |r, k| c((r * 5 + k) as f64 * 0.1, -(k as f64) * 0.3));
        let cols: Vec<CVector> = (0..7)
            .map(|b| CVector::from_fn(5, |k| c((b + k) as f64 * 0.2, (b as f64) - k as f64)))
            .collect();
        let mut x = CPanel::zeros(5, 7);
        for (b, v) in cols.iter().enumerate() {
            x.set_col(b, v);
        }
        let mut y = CPanel::new();
        gemm_into(&a, &x, &mut y);
        for (b, v) in cols.iter().enumerate() {
            let want = a.mul_vec(v).unwrap();
            for k in 0..5 {
                assert!((y.col(b)[k] - want[k]).abs() < 1e-12, "col {b} row {k}");
            }
        }
    }

    #[test]
    fn gemm_is_independent_of_batch_partition() {
        let a = CMatrix::from_fn(6, 6, |r, k| c((r + 1) as f64 / (k + 2) as f64, 0.05 * k as f64));
        let mut wide = CPanel::zeros(6, 33);
        for b in 0..33 {
            for k in 0..6 {
                wide.col_mut(b)[k] = c((b * 6 + k) as f64 * 0.01, -(b as f64) * 0.02);
            }
        }
        let mut y_wide = CPanel::new();
        gemm_into(&a, &wide, &mut y_wide);
        // Re-run one column at a time; results must be bitwise identical.
        for b in 0..33 {
            let mut narrow = CPanel::zeros(6, 1);
            narrow.col_mut(0).copy_from_slice(wide.col(b));
            let mut y_narrow = CPanel::new();
            gemm_into(&a, &narrow, &mut y_narrow);
            assert_eq!(y_narrow.col(0), y_wide.col(b), "column {b} not bitwise equal");
        }
    }

    #[test]
    fn mzi_rotate_preserves_power() {
        let mut top = vec![c(0.3, -0.4), c(1.0, 0.0), c(-0.2, 0.9)];
        let mut bot = vec![c(0.1, 0.7), c(0.0, -1.0), c(0.5, 0.5)];
        let before: f64 = top
            .iter()
            .chain(bot.iter())
            .map(|z| z.norm_sqr())
            .sum();
        let phi = 0.37_f64;
        mzi_rotate(&mut top, &mut bot, phi.cos(), phi.sin());
        let after: f64 = top
            .iter()
            .chain(bot.iter())
            .map(|z| z.norm_sqr())
            .sum();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn panel_resize_reuses_and_zeroes() {
        let mut p = CPanel::zeros(4, 4);
        p.col_mut(2)[1] = c(3.0, 4.0);
        p.resize(3, 2);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.batch(), 2);
        assert!(p.as_slice().iter().all(|z| *z == C64::ZERO));
    }
}
