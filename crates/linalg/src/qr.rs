//! Householder QR decomposition of complex matrices.

use crate::c64::C64;
use crate::cmatrix::CMatrix;
use crate::error::{LinalgError, Result};

/// QR decomposition `A = Q·R` with unitary `Q` and upper-triangular `R`.
///
/// Used by [`crate::random::haar_unitary`] to turn a Ginibre matrix into a
/// Haar-distributed random unitary.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CMatrix, CQr};
///
/// let a = CMatrix::from_rows(&[
///     vec![C64::from_real(1.0), C64::from_real(2.0)],
///     vec![C64::from_real(3.0), C64::from_real(4.0)],
/// ]);
/// let qr = CQr::new(&a)?;
/// let recon = qr.q().mul_mat(qr.r())?;
/// assert!((&recon - &a).max_abs() < 1e-10);
/// assert!(qr.q().is_unitary(1e-10));
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CQr {
    q: CMatrix,
    r: CMatrix,
}

impl CQr {
    /// Factorizes a matrix with `rows >= cols` using Householder reflectors.
    ///
    /// Produces the "thick" factorization: `Q` is `rows × rows` unitary and
    /// `R` is `rows × cols` upper-triangular.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidArgument`] when `rows < cols` or the matrix is
    /// empty.
    pub fn new(a: &CMatrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot factorize an empty matrix".into(),
            ));
        }
        if m < n {
            return Err(LinalgError::InvalidArgument(format!(
                "QR requires rows >= cols, found {m}x{n}"
            )));
        }
        let mut r = a.clone();
        let mut q = CMatrix::identity(m);

        for k in 0..n.min(m - 1) {
            // Householder vector for column k below (and including) row k.
            let mut norm_sqr = 0.0;
            for i in k..m {
                norm_sqr += r[(i, k)].norm_sqr();
            }
            let norm = norm_sqr.sqrt();
            if norm < f64::EPSILON {
                continue; // column already zero below the diagonal
            }
            let x0 = r[(k, k)];
            // alpha = -e^{j·arg(x0)}·‖x‖ avoids cancellation.
            let phase = if x0.abs() < f64::EPSILON {
                C64::ONE
            } else {
                x0 / x0.abs()
            };
            let alpha = -phase * norm;
            // v = x - alpha·e1
            let mut v = vec![C64::ZERO; m - k];
            v[0] = x0 - alpha;
            for i in k + 1..m {
                v[i - k] = r[(i, k)];
            }
            let vnorm_sqr: f64 = v.iter().map(|z| z.norm_sqr()).sum();
            if vnorm_sqr < f64::EPSILON * f64::EPSILON {
                continue;
            }
            let beta = 2.0 / vnorm_sqr;

            // R ← H·R where H = I - beta·v·vᴴ (acting on rows k..m).
            for c in k..n {
                let mut dot = C64::ZERO;
                for i in k..m {
                    dot += v[i - k].conj() * r[(i, c)];
                }
                let f = dot.scale(beta);
                for i in k..m {
                    let sub = v[i - k] * f;
                    r[(i, c)] -= sub;
                }
            }
            // Q ← Q·H (accumulate reflectors on the right).
            for row in 0..m {
                let mut dot = C64::ZERO;
                for i in k..m {
                    dot += q[(row, i)] * v[i - k];
                }
                let f = dot.scale(beta);
                for i in k..m {
                    let sub = f * v[i - k].conj();
                    q[(row, i)] -= sub;
                }
            }
        }
        // Zero out numerical noise below the diagonal of R.
        for c in 0..n {
            for rix in c + 1..m {
                r[(rix, c)] = C64::ZERO;
            }
        }
        Ok(CQr { q, r })
    }

    /// The unitary factor.
    pub fn q(&self) -> &CMatrix {
        &self.q
    }

    /// The upper-triangular factor.
    pub fn r(&self) -> &CMatrix {
        &self.r
    }

    /// Consumes the decomposition, returning `(Q, R)`.
    pub fn into_parts(self) -> (CMatrix, CMatrix) {
        (self.q, self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix(m: usize, n: usize) -> CMatrix {
        // Deterministic pseudo-random complex entries.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| C64::new(next(), next()))
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = sample_matrix(5, 5);
        let qr = CQr::new(&a).unwrap();
        let recon = qr.q().mul_mat(qr.r()).unwrap();
        assert!((&recon - &a).max_abs() < 1e-10);
        assert!(qr.q().is_unitary(1e-10));
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = sample_matrix(6, 3);
        let qr = CQr::new(&a).unwrap();
        let recon = qr.q().mul_mat(qr.r()).unwrap();
        assert!((&recon - &a).max_abs() < 1e-10);
        assert!(qr.q().is_unitary(1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = sample_matrix(4, 4);
        let qr = CQr::new(&a).unwrap();
        for c in 0..4 {
            for r in c + 1..4 {
                assert_eq!(qr.r()[(r, c)], C64::ZERO);
            }
        }
    }

    #[test]
    fn wide_and_empty_rejected() {
        assert!(CQr::new(&CMatrix::zeros(2, 3)).is_err());
        assert!(CQr::new(&CMatrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn identity_passthrough() {
        let id = CMatrix::identity(3);
        let qr = CQr::new(&id).unwrap();
        let recon = qr.q().mul_mat(qr.r()).unwrap();
        assert!((&recon - &id).max_abs() < 1e-12);
    }

    #[test]
    fn into_parts() {
        let a = sample_matrix(3, 3);
        let qr = CQr::new(&a).unwrap();
        let (q, r) = qr.into_parts();
        let recon = q.mul_mat(&r).unwrap();
        assert!((&recon - &a).max_abs() < 1e-10);
    }
}
