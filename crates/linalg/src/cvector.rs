//! Dense complex vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};


use crate::c64::C64;
use crate::error::{LinalgError, Result};
use crate::rvector::RVector;

/// A dense, heap-allocated complex vector.
///
/// `CVector` is the amplitude container of the photonic simulator: an optical
/// state on a `K`-port circuit is a `CVector` of length `K`.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CVector};
///
/// let x = CVector::from_fn(3, |i| C64::new(i as f64, 0.0));
/// assert_eq!(x.len(), 3);
/// assert_eq!(x[2], C64::new(2.0, 0.0));
/// assert!((x.norm() - 5.0f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CVector {
    data: Vec<C64>,
}

impl CVector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        CVector {
            data: vec![C64::ZERO; n],
        }
    }

    /// Creates a vector by evaluating `f` at each index.
    pub fn from_fn<F: FnMut(usize) -> C64>(n: usize, f: F) -> Self {
        CVector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<C64>) -> Self {
        CVector { data }
    }

    /// Builds a complex vector from a slice of real values.
    pub fn from_real_slice(xs: &[f64]) -> Self {
        CVector {
            data: xs.iter().map(|&x| C64::from_real(x)).collect(),
        }
    }

    /// Standard basis vector `e_i` of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for length {n}");
        let mut v = CVector::zeros(n);
        v.data[i] = C64::ONE;
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector and returns its storage.
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Overwrites this vector with the contents of `src`, reusing the
    /// existing allocation whenever `src` fits in the current capacity.
    ///
    /// This is the buffer-reuse primitive of the zero-allocation forward
    /// paths: in steady state (same dimension every call) it performs no
    /// heap allocation.
    pub fn copy_from(&mut self, src: &CVector) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Overwrites this vector with the complex slice `src`, reusing the
    /// existing allocation when possible — the panel-column ↔ vector
    /// transfer primitive of the batched forward paths.
    pub fn copy_from_slice(&mut self, src: &[C64]) {
        self.data.clear();
        self.data.extend_from_slice(src);
    }

    /// Overwrites this vector with the real slice `xs` (imaginary parts
    /// zero), reusing the existing allocation when possible.
    pub fn copy_from_real_slice(&mut self, xs: &[f64]) {
        self.data.clear();
        self.data.extend(xs.iter().map(|&x| C64::from_real(x)));
    }

    /// Sets every element to `value` without changing the length.
    pub fn fill(&mut self, value: C64) {
        self.data.fill(value);
    }

    /// Resizes to length `n`, zero-filling and reusing the allocation when
    /// possible.
    pub fn resize_zeroed(&mut self, n: usize) {
        self.data.clear();
        self.data.resize(n, C64::ZERO);
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, C64> {
        self.data.iter()
    }

    /// Mutable iterator over elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, C64> {
        self.data.iter_mut()
    }

    /// Hermitian inner product `⟨self, other⟩ = Σᵢ selfᵢ* · otherᵢ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &CVector) -> Result<C64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {}", self.len()),
                found: format!("length {}", other.len()),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(C64::ZERO, |acc, (a, b)| acc + a.conj() * *b))
    }

    /// Unconjugated (bilinear) dot product `Σᵢ selfᵢ · otherᵢ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when lengths differ.
    pub fn dot_unconj(&self, other: &CVector) -> Result<C64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {}", self.len()),
                found: format!("length {}", other.len()),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(C64::ZERO, |acc, (a, b)| acc + *a * *b))
    }

    /// Squared Euclidean norm `Σᵢ |selfᵢ|²` — total optical power.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Per-element powers `|selfᵢ|²` as a real vector — what a photodetector
    /// array measures at the circuit output.
    pub fn powers(&self) -> RVector {
        RVector::from_vec(self.data.iter().map(|z| z.norm_sqr()).collect())
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> CVector {
        CVector {
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every element by a complex factor.
    pub fn scale(&self, s: C64) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Scales every element by a real factor.
    pub fn scale_real(&self, s: f64) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// In-place `self += alpha · other` (complex axpy).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ; this is a hot-loop primitive and the caller
    /// is expected to have validated shapes.
    pub fn axpy(&mut self, alpha: C64, other: &CVector) {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Returns a normalized copy (unit Euclidean norm).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] for the zero vector.
    pub fn normalized(&self) -> Result<CVector> {
        let n = self.norm();
        if n == 0.0 {
            return Err(LinalgError::InvalidArgument(
                "cannot normalize the zero vector".into(),
            ));
        }
        Ok(self.scale_real(1.0 / n))
    }

    /// Real parts as an [`RVector`].
    pub fn re(&self) -> RVector {
        RVector::from_vec(self.data.iter().map(|z| z.re).collect())
    }

    /// Imaginary parts as an [`RVector`].
    pub fn im(&self) -> RVector {
        RVector::from_vec(self.data.iter().map(|z| z.im).collect())
    }

    /// Maximum elementwise modulus, or 0 for the empty vector.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Extracts `self[start..start+len]` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subvector(&self, start: usize, len: usize) -> CVector {
        CVector {
            data: self.data[start..start + len].to_vec(),
        }
    }
}

impl Index<usize> for CVector {
    type Output = C64;
    #[inline]
    fn index(&self, i: usize) -> &C64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut C64 {
        &mut self.data[i]
    }
}

impl fmt::Display for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<C64> for CVector {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        CVector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<C64> for CVector {
    fn extend<I: IntoIterator<Item = C64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl From<Vec<C64>> for CVector {
    fn from(data: Vec<C64>) -> Self {
        CVector { data }
    }
}

impl<'a> IntoIterator for &'a CVector {
    type Item = &'a C64;
    type IntoIter = std::slice::Iter<'a, C64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for CVector {
    type Item = C64;
    type IntoIter = std::vec::IntoIter<C64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&CVector> for &CVector {
            type Output = CVector;
            fn $method(self, rhs: &CVector) -> CVector {
                assert_eq!(self.len(), rhs.len(), "vector length mismatch");
                CVector {
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| *a $op *b)
                        .collect(),
                }
            }
        }

        impl $trait<CVector> for CVector {
            type Output = CVector;
            fn $method(self, rhs: CVector) -> CVector {
                (&self).$method(&rhs)
            }
        }
    };
}

elementwise_binop!(Add, add, +);
elementwise_binop!(Sub, sub, -);

impl AddAssign<&CVector> for CVector {
    fn add_assign(&mut self, rhs: &CVector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl SubAssign<&CVector> for CVector {
    fn sub_assign(&mut self, rhs: &CVector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
    }
}

impl Mul<C64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: C64) -> CVector {
        self.scale(rhs)
    }
}

impl Mul<f64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: f64) -> CVector {
        self.scale_real(rhs)
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| -z).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let v = CVector::from_fn(4, |i| C64::new(i as f64, -(i as f64)));
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v[3], C64::new(3.0, -3.0));
        let mut w = v.clone();
        w[0] = C64::ONE;
        assert_eq!(w[0], C64::ONE);
        assert!(CVector::zeros(0).is_empty());
    }

    #[test]
    fn basis_vectors() {
        let e1 = CVector::basis(3, 1);
        assert_eq!(e1[0], C64::ZERO);
        assert_eq!(e1[1], C64::ONE);
        assert_eq!(e1[2], C64::ZERO);
        assert!((e1.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = CVector::basis(2, 2);
    }

    #[test]
    fn hermitian_dot_is_conjugate_linear() {
        let a = CVector::from_vec(vec![C64::new(1.0, 1.0), C64::I]);
        let b = CVector::from_vec(vec![C64::ONE, C64::new(0.0, -2.0)]);
        let ab = a.dot(&b).unwrap();
        let ba = b.dot(&a).unwrap();
        assert!((ab - ba.conj()).abs() < 1e-12);
        // ⟨a, a⟩ = ‖a‖²
        let aa = a.dot(&a).unwrap();
        assert!((aa.re - a.norm_sqr()).abs() < 1e-12);
        assert!(aa.im.abs() < 1e-15);
    }

    #[test]
    fn dot_shape_mismatch_errors() {
        let a = CVector::zeros(2);
        let b = CVector::zeros(3);
        assert!(matches!(a.dot(&b), Err(LinalgError::ShapeMismatch { .. })));
        assert!(a.dot_unconj(&b).is_err());
    }

    #[test]
    fn powers_are_photodetector_readout() {
        let v = CVector::from_vec(vec![C64::new(3.0, 4.0), C64::I]);
        let p = v.powers();
        assert!((p[0] - 25.0).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
        assert!((v.norm_sqr() - 26.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_axpy() {
        let a = CVector::from_real_slice(&[1.0, 2.0]);
        let b = CVector::from_real_slice(&[3.0, 5.0]);
        let s = &a + &b;
        assert_eq!(s[1], C64::from_real(7.0));
        let d = &b - &a;
        assert_eq!(d[0], C64::from_real(2.0));
        let mut c = a.clone();
        c.axpy(C64::from_real(2.0), &b);
        assert_eq!(c[0], C64::from_real(7.0));
        let n = -&a;
        assert_eq!(n[0], C64::from_real(-1.0));
        let mut acc = a.clone();
        acc += &b;
        assert_eq!(acc[1], C64::from_real(7.0));
        acc -= &b;
        assert_eq!(acc[1], C64::from_real(2.0));
    }

    #[test]
    fn normalize() {
        let v = CVector::from_vec(vec![C64::new(3.0, 0.0), C64::new(0.0, 4.0)]);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(CVector::zeros(2).normalized().is_err());
    }

    #[test]
    fn re_im_split_roundtrip() {
        let v = CVector::from_vec(vec![C64::new(1.0, 2.0), C64::new(-3.0, 4.0)]);
        let re = v.re();
        let im = v.im();
        assert_eq!(re[1], -3.0);
        assert_eq!(im[1], 4.0);
    }

    #[test]
    fn iterators_and_collect() {
        let v: CVector = (0..3).map(|i| C64::from_real(i as f64)).collect();
        assert_eq!(v.len(), 3);
        let total: C64 = v.iter().copied().sum();
        assert_eq!(total, C64::from_real(3.0));
        let owned: Vec<C64> = v.clone().into_iter().collect();
        assert_eq!(owned.len(), 3);
        let mut w = CVector::zeros(0);
        w.extend(owned);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn subvector_and_max_abs() {
        let v = CVector::from_real_slice(&[1.0, -5.0, 2.0, 0.0]);
        let s = v.subvector(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], C64::from_real(-5.0));
        assert!((v.max_abs() - 5.0).abs() < 1e-15);
        assert_eq!(CVector::zeros(0).max_abs(), 0.0);
    }
}
