//! Random vectors, matrices and Haar-distributed unitaries.
//!
//! All generators take an explicit `&mut impl Rng`; nothing in this crate
//! ever touches global RNG state, so every experiment is reproducible from a
//! seed.

use rand::Rng;

use crate::c64::C64;
use crate::cholesky::RCholesky;
use crate::cmatrix::CMatrix;
use crate::cvector::CVector;
use crate::error::Result;
use crate::qr::CQr;
use crate::rmatrix::RMatrix;
use crate::rvector::RVector;

/// Draws one standard-normal sample via the Box-Muller transform.
///
/// `rand` 0.8 does not bundle a normal distribution (that lives in
/// `rand_distr`, which is outside the approved dependency set), so the crate
/// carries its own tiny implementation.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_linalg::random::standard_normal;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller; u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Real vector with i.i.d. `N(0, 1)` entries.
pub fn normal_rvector<R: Rng + ?Sized>(n: usize, rng: &mut R) -> RVector {
    RVector::from_fn(n, |_| standard_normal(rng))
}

/// Complex vector with i.i.d. standard complex normal entries
/// (`E[|z|²] = 1`, real and imaginary parts each `N(0, 1/2)`).
pub fn normal_cvector<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CVector {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CVector::from_fn(n, |_| {
        C64::new(standard_normal(rng) * s, standard_normal(rng) * s)
    })
}

/// Complex vector whose real and imaginary parts are each i.i.d. `N(0, 1)`
/// (so `E[|z|²] = 2`). This is the convention used when a complex output
/// perturbation is treated as a `2M`-dimensional real standard normal.
pub fn normal_cvector_unit_parts<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CVector {
    CVector::from_fn(n, |_| C64::new(standard_normal(rng), standard_normal(rng)))
}

/// Real matrix with i.i.d. `N(0, 1)` entries.
pub fn normal_rmatrix<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> RMatrix {
    RMatrix::from_fn(rows, cols, |_, _| standard_normal(rng))
}

/// Complex Ginibre matrix: i.i.d. standard complex normal entries.
pub fn ginibre<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> CMatrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMatrix::from_fn(rows, cols, |_, _| {
        C64::new(standard_normal(rng) * s, standard_normal(rng) * s)
    })
}

/// Haar-distributed random `n × n` unitary matrix.
///
/// Implements the Mezzadri construction: QR-factorize a Ginibre matrix and
/// fix the phase ambiguity by normalizing with the phases of `diag(R)`, which
/// makes the distribution exactly Haar.
///
/// # Errors
///
/// [`crate::LinalgError::InvalidArgument`] when `n == 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use photon_linalg::random::haar_unitary;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let u = haar_unitary(4, &mut rng)?;
/// assert!(u.is_unitary(1e-10));
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<CMatrix> {
    let g = ginibre(n, n, rng);
    let (q, r) = CQr::new(&g)?.into_parts();
    // Λ = diag(r_ii / |r_ii|); U = Q·Λ has Haar distribution.
    let mut u = q;
    for c in 0..n {
        let d = r[(c, c)];
        let phase = if d.abs() < f64::EPSILON {
            C64::ONE
        } else {
            d / d.abs()
        };
        for row in 0..n {
            u[(row, c)] *= phase;
        }
    }
    Ok(u)
}

/// Random unit-norm complex vector (uniform on the complex sphere).
pub fn random_unit_cvector<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CVector {
    loop {
        let v = normal_cvector(n, rng);
        if let Ok(u) = v.normalized() {
            return u;
        }
    }
}

/// Samples `N(0, Σ)` given a pre-computed Cholesky factorization of Σ.
///
/// # Errors
///
/// Propagates shape errors from the factor application.
pub fn sample_gaussian<R: Rng + ?Sized>(chol: &RCholesky, rng: &mut R) -> Result<RVector> {
    let r = normal_rvector(chol.dim(), rng);
    chol.sample_from_standard(&r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let v = normal_rvector(n, &mut rng);
        let mean = v.mean();
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn complex_normal_power() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = normal_cvector(10_000, &mut rng);
        let avg_power = v.norm_sqr() / 10_000.0;
        assert!((avg_power - 1.0).abs() < 0.05, "power {avg_power}");
        let w = normal_cvector_unit_parts(10_000, &mut rng);
        let avg_power2 = w.norm_sqr() / 10_000.0;
        assert!((avg_power2 - 2.0).abs() < 0.1, "power {avg_power2}");
    }

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1, 2, 5, 8] {
            let u = haar_unitary(n, &mut rng).unwrap();
            assert!(u.is_unitary(1e-9), "n={n}");
        }
        assert!(haar_unitary(0, &mut rng).is_err());
    }

    #[test]
    fn haar_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(4);
        let u = haar_unitary(6, &mut rng).unwrap();
        let x = normal_cvector(6, &mut rng);
        let y = u.mul_vec(&x).unwrap();
        assert!((y.norm() - x.norm()).abs() < 1e-10);
    }

    #[test]
    fn seeded_generators_are_reproducible() {
        let a = {
            let mut rng = StdRng::seed_from_u64(99);
            haar_unitary(4, &mut rng).unwrap()
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(99);
            haar_unitary(4, &mut rng).unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn unit_vector_is_unit() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = random_unit_cvector(7, &mut rng);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_sampling_matches_target() {
        // Empirical covariance of L·r should approach Σ.
        let sigma = RMatrix::from_rows(&[vec![2.0, 0.8], vec![0.8, 1.0]]);
        let chol = RCholesky::new(&sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let n = 40_000;
        let mut acc = RMatrix::zeros(2, 2);
        for _ in 0..n {
            let s = sample_gaussian(&chol, &mut rng).unwrap();
            acc.axpy(1.0 / n as f64, &RMatrix::outer(&s, &s));
        }
        assert!((&acc - &sigma).max_abs() < 0.07, "emp cov {acc}");
    }
}
