//! Jacobi eigensolvers for real symmetric and complex Hermitian matrices.

use crate::c64::C64;
use crate::cmatrix::CMatrix;
use crate::error::{LinalgError, Result};
use crate::rmatrix::RMatrix;
use crate::rvector::RVector;

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a real symmetric matrix.
///
/// Eigenvalues are sorted ascending; `vectors.col(i)` is the eigenvector of
/// `values[i]`.
#[derive(Debug, Clone)]
pub struct SymmetricEig {
    /// Eigenvalues, ascending.
    pub values: RVector,
    /// Orthogonal matrix whose columns are the eigenvectors.
    pub vectors: RMatrix,
}

/// Eigendecomposition `A = V·diag(λ)·Vᴴ` of a complex Hermitian matrix.
///
/// Eigenvalues are real and sorted ascending.
#[derive(Debug, Clone)]
pub struct HermitianEig {
    /// Eigenvalues, ascending (real for Hermitian matrices).
    pub values: RVector,
    /// Unitary matrix whose columns are the eigenvectors.
    pub vectors: CMatrix,
}

/// Computes the eigendecomposition of a real symmetric matrix by cyclic
/// Jacobi rotations.
///
/// # Errors
///
/// [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NoConvergence`] if the off-diagonal mass fails to vanish
/// within the sweep budget (does not occur for finite symmetric input).
///
/// # Examples
///
/// ```
/// use photon_linalg::{RMatrix, symmetric_eig};
///
/// let a = RMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = symmetric_eig(&a)?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 3.0).abs() < 1e-10);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
pub fn symmetric_eig(a: &RMatrix) -> Result<SymmetricEig> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    m.symmetrize();
    let mut v = RMatrix::identity(n);
    let scale = m.max_abs().max(1.0);
    let tol = f64::EPSILON * scale * n as f64;

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                off = off.max(m[(p, q)].abs());
            }
        }
        if off <= tol {
            return Ok(sorted_sym(m, v));
        }
        let _ = sweep;
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                for k in 0..n {
                    if k == p || k == q {
                        continue;
                    }
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(p, k)] = m[(k, p)];
                    m[(k, q)] = s * akp + c * akq;
                    m[(q, k)] = m[(k, q)];
                }
                m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: MAX_SWEEPS,
    })
}

fn sorted_sym(m: RMatrix, v: RMatrix) -> SymmetricEig {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).unwrap());
    let values = RVector::from_fn(n, |i| m[(idx[i], idx[i])]);
    let vectors = RMatrix::from_fn(n, n, |r, c| v[(r, idx[c])]);
    SymmetricEig { values, vectors }
}

/// Computes the eigendecomposition of a complex Hermitian matrix by cyclic
/// complex Jacobi rotations.
///
/// # Errors
///
/// [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NoConvergence`] if the off-diagonal mass fails to vanish
/// within the sweep budget.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CMatrix, hermitian_eig};
///
/// let a = CMatrix::from_rows(&[
///     vec![C64::from_real(2.0), C64::new(0.0, 1.0)],
///     vec![C64::new(0.0, -1.0), C64::from_real(2.0)],
/// ]);
/// let eig = hermitian_eig(&a)?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 3.0).abs() < 1e-10);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
pub fn hermitian_eig(a: &CMatrix) -> Result<HermitianEig> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    // Enforce exact Hermitian symmetry to stabilize the sweeps.
    let mut m = CMatrix::from_fn(n, n, |r, c| (a[(r, c)] + a[(c, r)].conj()).scale(0.5));
    let mut v = CMatrix::identity(n);
    let scale = m.max_abs().max(1.0);
    let tol = f64::EPSILON * scale * n as f64;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                off = off.max(m[(p, q)].abs());
            }
        }
        if off <= tol {
            return Ok(sorted_herm(m, v));
        }
        for p in 0..n {
            for q in p + 1..n {
                let gamma = m[(p, q)];
                let g = gamma.abs();
                if g <= tol * 1e-2 {
                    continue;
                }
                // Phase e = γ/|γ| reduces the 2x2 block to a real problem.
                let e = gamma / g;
                let alpha = m[(p, p)].re;
                let beta = m[(q, q)].re;
                let tau = (beta - alpha) / (2.0 * g);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                let se = e.scale(s); // s·e
                let se_conj = e.conj().scale(s); // s·e*

                // Rotation J: J_pp = c, J_pq = s·e, J_qp = -s·e*, J_qq = c.
                for k in 0..n {
                    if k == p || k == q {
                        continue;
                    }
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    // (A·J) columns p, q for row k.
                    let new_kp = akp.scale(c) - akq * se_conj;
                    let new_kq = akp * se + akq.scale(c);
                    m[(k, p)] = new_kp;
                    m[(p, k)] = new_kp.conj();
                    m[(k, q)] = new_kq;
                    m[(q, k)] = new_kq.conj();
                }
                let new_pp = c * c * alpha - 2.0 * s * c * g + s * s * beta;
                let new_qq = s * s * alpha + 2.0 * s * c * g + c * c * beta;
                m[(p, p)] = C64::from_real(new_pp);
                m[(q, q)] = C64::from_real(new_qq);
                m[(p, q)] = C64::ZERO;
                m[(q, p)] = C64::ZERO;

                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp.scale(c) - vkq * se_conj;
                    v[(k, q)] = vkp * se + vkq.scale(c);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: MAX_SWEEPS,
    })
}

fn sorted_herm(m: CMatrix, v: CMatrix) -> HermitianEig {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| m[(i, i)].re.partial_cmp(&m[(j, j)].re).unwrap());
    let values = RVector::from_fn(n, |i| m[(idx[i], idx[i])].re);
    let vectors = CMatrix::from_fn(n, n, |r, c| v[(r, idx[c])]);
    HermitianEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvector::CVector;

    #[test]
    fn sym_eig_known_values() {
        let a = RMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let eig = symmetric_eig(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn sym_eig_reconstructs() {
        let a = RMatrix::from_rows(&[
            vec![4.0, 1.0, -0.5],
            vec![1.0, 3.0, 0.25],
            vec![-0.5, 0.25, 1.0],
        ]);
        let eig = symmetric_eig(&a).unwrap();
        let d = RMatrix::from_diagonal(&eig.values);
        let recon = eig
            .vectors
            .mul_mat(&d)
            .unwrap()
            .mul_mat(&eig.vectors.transpose())
            .unwrap();
        assert!((&recon - &a).max_abs() < 1e-9);
        // Eigenvector orthogonality.
        let vtv = eig.vectors.transpose().mul_mat(&eig.vectors).unwrap();
        assert!((&vtv - &RMatrix::identity(3)).max_abs() < 1e-10);
        // Ascending order.
        assert!(eig.values[0] <= eig.values[1] && eig.values[1] <= eig.values[2]);
    }

    #[test]
    fn sym_eig_diagonal_passthrough() {
        let a = RMatrix::from_diagonal(&RVector::from_slice(&[3.0, -1.0, 2.0]));
        let eig = symmetric_eig(&a).unwrap();
        assert!((eig.values[0] + 1.0).abs() < 1e-12);
        assert!((eig.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sym_eig_rejects_non_square() {
        assert!(symmetric_eig(&RMatrix::zeros(2, 3)).is_err());
        assert!(hermitian_eig(&CMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn herm_eig_known_values() {
        let a = CMatrix::from_rows(&[
            vec![C64::from_real(2.0), C64::new(0.0, 1.0)],
            vec![C64::new(0.0, -1.0), C64::from_real(2.0)],
        ]);
        let eig = hermitian_eig(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn herm_eig_reconstructs_and_unitary() {
        let a = CMatrix::from_rows(&[
            vec![
                C64::from_real(3.0),
                C64::new(1.0, -0.5),
                C64::new(0.0, 0.25),
            ],
            vec![
                C64::new(1.0, 0.5),
                C64::from_real(1.0),
                C64::new(-0.75, 0.0),
            ],
            vec![
                C64::new(0.0, -0.25),
                C64::new(-0.75, 0.0),
                C64::from_real(2.0),
            ],
        ]);
        assert!(a.is_hermitian(1e-12));
        let eig = hermitian_eig(&a).unwrap();
        assert!(eig.vectors.is_unitary(1e-9));
        let d = CMatrix::from_diagonal(&CVector::from_real_slice(eig.values.as_slice()));
        let recon = eig
            .vectors
            .mul_mat(&d)
            .unwrap()
            .mul_mat(&eig.vectors.adjoint())
            .unwrap();
        assert!((&recon - &a).max_abs() < 1e-9);
    }

    #[test]
    fn herm_eig_trace_preserved() {
        let a = CMatrix::from_rows(&[
            vec![C64::from_real(5.0), C64::new(2.0, 1.0)],
            vec![C64::new(2.0, -1.0), C64::from_real(-3.0)],
        ]);
        let eig = hermitian_eig(&a).unwrap();
        assert!((eig.values.sum() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn eig_of_gram_matrix_nonnegative() {
        // Gram matrices are PSD; all eigenvalues must be >= 0 (up to fp).
        let b = CMatrix::from_fn(4, 3, |r, c| {
            C64::new((r + 1) as f64 * 0.3, (c as f64) - 1.0)
        });
        let g = b.gram();
        let eig = hermitian_eig(&g).unwrap();
        for i in 0..3 {
            assert!(
                eig.values[i] > -1e-9,
                "negative eigenvalue {}",
                eig.values[i]
            );
        }
    }
}
