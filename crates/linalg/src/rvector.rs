//! Dense real vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};


use crate::error::{LinalgError, Result};

/// A dense, heap-allocated real (`f64`) vector.
///
/// Parameter vectors θ, gradients, perturbation directions and detector
/// powers are all `RVector`s.
///
/// # Examples
///
/// ```
/// use photon_linalg::RVector;
///
/// let g = RVector::from_slice(&[3.0, 4.0]);
/// assert!((g.norm() - 5.0).abs() < 1e-12);
/// assert_eq!(g.dot(&g).unwrap(), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RVector {
    data: Vec<f64>,
}

impl RVector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        RVector { data: vec![0.0; n] }
    }

    /// Creates a vector of ones of length `n`.
    pub fn ones(n: usize) -> Self {
        RVector { data: vec![1.0; n] }
    }

    /// Creates a vector by evaluating `f` at each index.
    pub fn from_fn<F: FnMut(usize) -> f64>(n: usize, f: F) -> Self {
        RVector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Copies a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        RVector { data: xs.to_vec() }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<f64>) -> Self {
        RVector { data }
    }

    /// Standard basis vector `e_i` of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for length {n}");
        let mut v = RVector::zeros(n);
        v.data[i] = 1.0;
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns its storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Overwrites this vector with the contents of `src`, reusing the
    /// existing allocation whenever `src` fits in the current capacity.
    ///
    /// Buffer-reuse primitive of the zero-allocation forward paths: in
    /// steady state (same length every call) it performs no heap allocation.
    pub fn copy_from(&mut self, src: &RVector) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Sets every element to `value` without changing the length.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Resizes to length `n`, zero-filling and reusing the allocation when
    /// possible.
    pub fn resize_zeroed(&mut self, n: usize) {
        self.data.clear();
        self.data.resize(n, 0.0);
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Inner product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &RVector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {}", self.len()),
                found: format!("length {}", other.len()),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Squared Euclidean norm.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean, or 0 for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element, or `-inf` for the empty vector.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element, or `+inf` for the empty vector.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index of the maximum element, or `None` for the empty vector.
    /// Ties resolve to the lowest index.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.data.len() {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Maximum absolute element, or 0 for the empty vector.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> RVector {
        RVector {
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// In-place `self += alpha · other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &RVector) {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hadamard(&self, other: &RVector) -> RVector {
        assert_eq!(self.len(), other.len(), "hadamard length mismatch");
        RVector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Extracts `self[start..start+len]` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subvector(&self, start: usize, len: usize) -> RVector {
        RVector {
            data: self.data[start..start + len].to_vec(),
        }
    }

    /// Overwrites `self[start..start+other.len()]` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn set_subvector(&mut self, start: usize, other: &RVector) {
        self.data[start..start + other.len()].copy_from_slice(&other.data);
    }
}

impl Index<usize> for RVector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for RVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Display for RVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<f64> for RVector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        RVector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for RVector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl From<Vec<f64>> for RVector {
    fn from(data: Vec<f64>) -> Self {
        RVector { data }
    }
}

impl<'a> IntoIterator for &'a RVector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for RVector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

macro_rules! relementwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&RVector> for &RVector {
            type Output = RVector;
            fn $method(self, rhs: &RVector) -> RVector {
                assert_eq!(self.len(), rhs.len(), "vector length mismatch");
                RVector {
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| *a $op *b)
                        .collect(),
                }
            }
        }

        impl $trait<RVector> for RVector {
            type Output = RVector;
            fn $method(self, rhs: RVector) -> RVector {
                (&self).$method(&rhs)
            }
        }
    };
}

relementwise_binop!(Add, add, +);
relementwise_binop!(Sub, sub, -);

impl AddAssign<&RVector> for RVector {
    fn add_assign(&mut self, rhs: &RVector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl SubAssign<&RVector> for RVector {
    fn sub_assign(&mut self, rhs: &RVector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
    }
}

impl Mul<f64> for &RVector {
    type Output = RVector;
    fn mul(self, rhs: f64) -> RVector {
        self.scale(rhs)
    }
}

impl Neg for &RVector {
    type Output = RVector;
    fn neg(self) -> RVector {
        RVector {
            data: self.data.iter().map(|&x| -x).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(RVector::zeros(3).sum(), 0.0);
        assert_eq!(RVector::ones(4).sum(), 4.0);
        let v = RVector::from_fn(3, |i| i as f64 * 2.0);
        assert_eq!(v[2], 4.0);
        assert_eq!(RVector::basis(3, 0)[0], 1.0);
    }

    #[test]
    fn stats() {
        let v = RVector::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(v.sum(), 2.0);
        assert!((v.mean() - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(v.max(), 3.0);
        assert_eq!(v.min(), -2.0);
        assert_eq!(v.argmax(), Some(2));
        assert_eq!(v.max_abs(), 3.0);
        assert_eq!(RVector::zeros(0).argmax(), None);
        assert_eq!(RVector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn argmax_tie_breaks_low() {
        let v = RVector::from_slice(&[5.0, 5.0, 1.0]);
        assert_eq!(v.argmax(), Some(0));
    }

    #[test]
    fn dot_and_norm() {
        let a = RVector::from_slice(&[1.0, 2.0, 2.0]);
        assert_eq!(a.dot(&a).unwrap(), 9.0);
        assert_eq!(a.norm(), 3.0);
        assert!(a.dot(&RVector::zeros(2)).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = RVector::from_slice(&[1.0, 2.0]);
        let b = RVector::from_slice(&[3.0, 4.0]);
        assert_eq!((&a + &b)[1], 6.0);
        assert_eq!((&b - &a)[0], 2.0);
        assert_eq!((&a * 2.0)[1], 4.0);
        assert_eq!((-&a)[0], -1.0);
        assert_eq!(a.hadamard(&b)[1], 8.0);
        let mut c = a.clone();
        c.axpy(10.0, &b);
        assert_eq!(c[0], 31.0);
        c += &a;
        assert_eq!(c[0], 32.0);
        c -= &a;
        assert_eq!(c[0], 31.0);
    }

    #[test]
    fn subvector_ops() {
        let mut v = RVector::from_slice(&[0.0, 1.0, 2.0, 3.0]);
        let s = v.subvector(1, 2);
        assert_eq!(s.as_slice(), &[1.0, 2.0]);
        v.set_subvector(2, &RVector::from_slice(&[9.0, 9.0]));
        assert_eq!(v.as_slice(), &[0.0, 1.0, 9.0, 9.0]);
    }

    #[test]
    fn collect_and_iterate() {
        let v: RVector = (0..4).map(|i| i as f64).collect();
        assert_eq!(v.len(), 4);
        let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled[3], 6.0);
        let mut w = RVector::zeros(0);
        w.extend(v.clone());
        assert_eq!(w, v);
    }
}
