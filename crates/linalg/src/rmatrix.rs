//! Dense real matrices (row-major).

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};


use crate::error::{LinalgError, Result};
use crate::rvector::RVector;

/// A dense, row-major real (`f64`) matrix.
///
/// Fisher information blocks, LCNG Gram matrices and CMA-ES covariances are
/// `RMatrix` values.
///
/// # Examples
///
/// ```
/// use photon_linalg::{RMatrix, RVector};
///
/// let a = RMatrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]);
/// let x = RVector::from_slice(&[1.0, 1.0]);
/// assert_eq!(a.mul_vec(&x).unwrap().as_slice(), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates a zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = RMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at each entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        RMatrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        RMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a diagonal matrix from diagonal entries.
    pub fn from_diagonal(diag: &RVector) -> Self {
        let n = diag.len();
        let mut m = RMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Wraps a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        RMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major storage view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major storage view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts column `c` as a vector.
    pub fn col(&self, c: usize) -> RVector {
        RVector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Overwrites column `c` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn set_col(&mut self, c: usize, v: &RVector) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for r in 0..self.rows {
            self[(r, c)] = v[r];
        }
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &RVector) -> Result<RVector> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", x.len()),
            });
        }
        let mut y = RVector::zeros(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[r] = acc;
        }
        Ok(y)
    }

    /// Transposed matrix-vector product `Aᵀ·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.rows()`.
    pub fn transpose_mul_vec(&self, x: &RVector) -> Result<RVector> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("length {}", x.len()),
            });
        }
        let mut y = RVector::zeros(self.cols);
        for r in 0..self.rows {
            let xr = x[r];
            let row = self.row(r);
            for c in 0..self.cols {
                y[c] += row[c] * xr;
            }
        }
        Ok(y)
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn mul_mat(&self, rhs: &RMatrix) -> Result<RMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", rhs.rows),
            });
        }
        let mut out = RMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for c in 0..rhs.cols {
                    out_row[c] += a * rhs_row[c];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> RMatrix {
        RMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Scales every entry.
    pub fn scale(&self, s: f64) -> RMatrix {
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// In-place `self += alpha · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &RMatrix) {
        assert_eq!(self.shape(), other.shape(), "matrix shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Adds `alpha` to every diagonal entry (square only).
    ///
    /// # Panics
    ///
    /// Panics for non-square matrices.
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Checks `‖A − Aᵀ‖_∞ ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in r + 1..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetric Gram matrix `AᵀA` (size `cols × cols`).
    pub fn gram(&self) -> RMatrix {
        let n = self.cols;
        let mut g = RMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = acc;
                g[(j, i)] = acc;
            }
        }
        g
    }

    /// Outer product `x·yᵀ`.
    pub fn outer(x: &RVector, y: &RVector) -> RMatrix {
        RMatrix::from_fn(x.len(), y.len(), |r, c| x[r] * y[c])
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`.
    ///
    /// # Panics
    ///
    /// Panics for non-square matrices.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for r in 0..self.rows {
            for c in r + 1..self.cols {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }
}

impl Index<(usize, usize)> for RMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for RMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>12.5}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add<&RMatrix> for &RMatrix {
    type Output = RMatrix;
    fn add(self, rhs: &RMatrix) -> RMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix shape mismatch");
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&RMatrix> for &RMatrix {
    type Output = RMatrix;
    fn sub(self, rhs: &RMatrix) -> RMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix shape mismatch");
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<&RMatrix> for &RMatrix {
    type Output = RMatrix;
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch. Use [`RMatrix::mul_mat`] for the
    /// fallible form.
    fn mul(self, rhs: &RMatrix) -> RMatrix {
        self.mul_mat(rhs).expect("matrix dimension mismatch in `*`")
    }
}

impl Mul<&RVector> for &RMatrix {
    type Output = RVector;
    /// # Panics
    ///
    /// Panics on dimension mismatch. Use [`RMatrix::mul_vec`] for the
    /// fallible form.
    fn mul(self, rhs: &RVector) -> RVector {
        self.mul_vec(rhs).expect("matrix-vector dimension mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_trace() {
        let id = RMatrix::identity(4);
        assert_eq!(id.trace().unwrap(), 4.0);
        assert!(id.is_symmetric(0.0));
        assert!(RMatrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let x = RVector::from_slice(&[1.0, 0.0, -1.0]);
        assert_eq!(a.mul_vec(&x).unwrap().as_slice(), &[-2.0, -2.0]);
        let y = RVector::from_slice(&[1.0, 1.0]);
        assert_eq!(
            a.transpose_mul_vec(&y).unwrap().as_slice(),
            &[5.0, 7.0, 9.0]
        );
        assert!(a.mul_vec(&RVector::zeros(2)).is_err());
        assert!(a.transpose_mul_vec(&RVector::zeros(3)).is_err());
    }

    #[test]
    fn matmul_assoc() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = RMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = RMatrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0]]);
        let left = a.mul_mat(&b).unwrap().mul_mat(&c).unwrap();
        let right = a.mul_mat(&b.mul_mat(&c).unwrap()).unwrap();
        assert!((&left - &right).max_abs() < 1e-12);
        assert!(a.mul_mat(&RMatrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        assert!(g.is_symmetric(1e-14));
        let g2 = a.transpose().mul_mat(&a).unwrap();
        assert!((&g - &g2).max_abs() < 1e-12);
        assert!(g[(0, 0)] >= 0.0 && g[(1, 1)] >= 0.0);
    }

    #[test]
    fn diagonal_helpers() {
        let mut m = RMatrix::from_diagonal(&RVector::from_slice(&[1.0, 2.0]));
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], 2.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn symmetrize() {
        let mut m = RMatrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 1.0]]);
        assert!(!m.is_symmetric(1e-12));
        m.symmetrize();
        assert!(m.is_symmetric(0.0));
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    fn outer_and_axpy() {
        let x = RVector::from_slice(&[1.0, 2.0]);
        let y = RVector::from_slice(&[3.0, 4.0]);
        let o = RMatrix::outer(&x, &y);
        assert_eq!(o[(1, 0)], 6.0);
        let mut acc = RMatrix::zeros(2, 2);
        acc.axpy(2.0, &o);
        assert_eq!(acc[(1, 1)], 16.0);
    }

    #[test]
    fn columns() {
        let mut m = RMatrix::zeros(2, 3);
        m.set_col(2, &RVector::from_slice(&[7.0, 8.0]));
        assert_eq!(m.col(2).as_slice(), &[7.0, 8.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 8.0]);
    }

    #[test]
    fn norms() {
        let m = RMatrix::from_rows(&[vec![3.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.scale(0.5)[(0, 0)], 1.5);
    }
}
