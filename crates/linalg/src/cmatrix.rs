//! Dense complex matrices (row-major).

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};


use crate::c64::C64;
use crate::cvector::CVector;
use crate::error::{LinalgError, Result};
use crate::rmatrix::RMatrix;

/// A dense, row-major complex matrix.
///
/// The transfer matrix of any photonic linear module is a `CMatrix`; module
/// Jacobians `∂y/∂θ` are `M×N` `CMatrix` values.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CMatrix, CVector};
///
/// let u = CMatrix::identity(2);
/// let x = CVector::from_real_slice(&[1.0, 2.0]);
/// let y = u.mul_vec(&x).unwrap();
/// assert_eq!(y, x);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at each entry.
    pub fn from_fn<F: FnMut(usize, usize) -> C64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<C64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a diagonal matrix from a vector of diagonal entries.
    pub fn from_diagonal(diag: &CVector) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Wraps a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        CMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major storage view.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable row-major storage view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[C64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrows row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [C64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrows adjacent rows `r` and `r + 1` as two mutable slices — the
    /// operand shape of a 2×2 MZI rotation applied across all columns.
    ///
    /// # Panics
    ///
    /// Panics when `r + 1 >= self.rows()`.
    #[inline]
    pub fn rows_pair_mut(&mut self, r: usize) -> (&mut [C64], &mut [C64]) {
        assert!(r + 1 < self.rows, "row pair out of bounds");
        let cols = self.cols;
        let (head, tail) = self.data.split_at_mut((r + 1) * cols);
        (&mut head[r * cols..], &mut tail[..cols])
    }

    /// Reshapes to the `n × n` identity in place, reusing the allocation
    /// whenever it is large enough.
    pub fn reset_identity(&mut self, n: usize) {
        self.rows = n;
        self.cols = n;
        self.data.clear();
        self.data.resize(n * n, C64::ZERO);
        for i in 0..n {
            self.data[i * n + i] = C64::ONE;
        }
    }

    /// Extracts column `c` as a vector.
    pub fn col(&self, c: usize) -> CVector {
        CVector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Overwrites column `c` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn set_col(&mut self, c: usize, v: &CVector) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for r in 0..self.rows {
            self[(r, c)] = v[r];
        }
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &CVector) -> Result<CVector> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", x.len()),
            });
        }
        let mut y = CVector::zeros(self.rows);
        for r in 0..self.rows {
            let mut acc = C64::ZERO;
            let row = self.row(r);
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[r] = acc;
        }
        Ok(y)
    }

    /// Adjoint-vector product `Aᴴ·x` without materializing the adjoint.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.rows()`.
    pub fn adjoint_mul_vec(&self, x: &CVector) -> Result<CVector> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("length {}", x.len()),
            });
        }
        let mut y = CVector::zeros(self.cols);
        for r in 0..self.rows {
            let xr = x[r];
            let row = self.row(r);
            for c in 0..self.cols {
                y[c] += row[c].conj() * xr;
            }
        }
        Ok(y)
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn mul_mat(&self, rhs: &CMatrix) -> Result<CMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", rhs.rows),
            });
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == C64::ZERO {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for c in 0..rhs.cols {
                    out_row[c] += a * rhs_row[c];
                }
            }
        }
        Ok(out)
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Conjugate transpose `Aᴴ`.
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Element-wise conjugate `A*`.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_real(&self, s: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<C64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Frobenius norm `√(Σ|aᵢⱼ|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Checks `‖AᴴA − I‖_∞ ≤ tol`: whether the matrix is unitary to tolerance.
    ///
    /// Non-square matrices are never unitary.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let gram = match self.adjoint().mul_mat(self) {
            Ok(g) => g,
            Err(_) => return false,
        };
        let mut max_dev: f64 = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let expected = if r == c { C64::ONE } else { C64::ZERO };
                max_dev = max_dev.max((gram[(r, c)] - expected).abs());
            }
        }
        max_dev <= tol
    }

    /// Checks `‖A − Aᴴ‖_∞ ≤ tol`: whether the matrix is Hermitian.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in r..self.cols {
                if (self[(r, c)] - self[(c, r)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Hermitian Gram matrix `AᴴA` (size `cols × cols`).
    pub fn gram(&self) -> CMatrix {
        // A direct loop halves the work relative to adjoint().mul_mat(self)
        // by exploiting Hermitian symmetry.
        let n = self.cols;
        let mut g = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut acc = C64::ZERO;
                for r in 0..self.rows {
                    acc += self[(r, i)].conj() * self[(r, j)];
                }
                g[(i, j)] = acc;
                g[(j, i)] = acc.conj();
            }
        }
        g
    }

    /// Entry-wise real parts as an [`RMatrix`].
    pub fn re(&self) -> RMatrix {
        RMatrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)].re)
    }

    /// Entry-wise imaginary parts as an [`RMatrix`].
    pub fn im(&self) -> RMatrix {
        RMatrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)].im)
    }

    /// Outer product `x·yᴴ`.
    pub fn outer(x: &CVector, y: &CVector) -> CMatrix {
        CMatrix::from_fn(x.len(), y.len(), |r, c| x[r] * y[c].conj())
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>20}", format!("{}", self[(r, c)]))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch. Use [`CMatrix::mul_mat`] for the
    /// fallible form.
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.mul_mat(rhs).expect("matrix dimension mismatch in `*`")
    }
}

impl Mul<&CVector> for &CMatrix {
    type Output = CVector;
    /// # Panics
    ///
    /// Panics on dimension mismatch. Use [`CMatrix::mul_vec`] for the
    /// fallible form.
    fn mul(self, rhs: &CVector) -> CVector {
        self.mul_vec(rhs).expect("matrix-vector dimension mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &CMatrix, b: &CMatrix, tol: f64) -> bool {
        a.shape() == b.shape() && (a - b).max_abs() < tol
    }

    #[test]
    fn identity_and_indexing() {
        let id = CMatrix::identity(3);
        assert!(id.is_square());
        assert_eq!(id[(1, 1)], C64::ONE);
        assert_eq!(id[(0, 2)], C64::ZERO);
        assert_eq!(id.shape(), (3, 3));
        assert_eq!(id.trace().unwrap(), C64::from_real(3.0));
    }

    #[test]
    fn from_rows_and_diag() {
        let m = CMatrix::from_rows(&[vec![C64::ONE, C64::I], vec![C64::ZERO, C64::from_real(2.0)]]);
        assert_eq!(m[(0, 1)], C64::I);
        let d = CMatrix::from_diagonal(&CVector::from_real_slice(&[1.0, 2.0]));
        assert_eq!(d[(1, 1)], C64::from_real(2.0));
        assert_eq!(d[(0, 1)], C64::ZERO);
    }

    #[test]
    fn matvec_matmat() {
        let a = CMatrix::from_fn(2, 3, |r, c| C64::from_real((r * 3 + c) as f64));
        let x = CVector::from_real_slice(&[1.0, 1.0, 1.0]);
        let y = a.mul_vec(&x).unwrap();
        assert_eq!(y[0], C64::from_real(3.0)); // 0+1+2
        assert_eq!(y[1], C64::from_real(12.0)); // 3+4+5

        let b = CMatrix::identity(3);
        let ab = a.mul_mat(&b).unwrap();
        assert!(approx(&ab, &a, 1e-14));

        assert!(a.mul_vec(&CVector::zeros(2)).is_err());
        assert!(a.mul_mat(&CMatrix::identity(2)).is_err());
    }

    #[test]
    fn adjoint_properties() {
        let a = CMatrix::from_fn(2, 3, |r, c| C64::new(r as f64, c as f64));
        let ah = a.adjoint();
        assert_eq!(ah.shape(), (3, 2));
        assert_eq!(ah[(2, 1)], a[(1, 2)].conj());
        // (Aᴴ)ᴴ = A
        assert!(approx(&ah.adjoint(), &a, 1e-15));
        // transpose + conj = adjoint
        assert!(approx(&a.transpose().conj(), &ah, 1e-15));
    }

    #[test]
    fn adjoint_mul_vec_matches_materialized() {
        let a = CMatrix::from_fn(3, 2, |r, c| C64::new(r as f64 + 1.0, c as f64 - 1.0));
        let x = CVector::from_vec(vec![C64::ONE, C64::I, C64::new(1.0, 1.0)]);
        let fast = a.adjoint_mul_vec(&x).unwrap();
        let slow = a.adjoint().mul_vec(&x).unwrap();
        assert!((&fast - &slow).max_abs() < 1e-14);
        assert!(a.adjoint_mul_vec(&CVector::zeros(2)).is_err());
    }

    #[test]
    fn gram_matches_adjoint_product() {
        let a = CMatrix::from_fn(4, 3, |r, c| C64::new((r + c) as f64, (r * c) as f64 * 0.1));
        let g = a.gram();
        let g2 = a.adjoint().mul_mat(&a).unwrap();
        assert!(approx(&g, &g2, 1e-12));
        assert!(g.is_hermitian(1e-12));
    }

    #[test]
    fn unitary_checks() {
        // A 2x2 beam-splitter-like unitary.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let u = CMatrix::from_rows(&[
            vec![C64::from_real(s), C64::new(0.0, s)],
            vec![C64::new(0.0, s), C64::from_real(s)],
        ]);
        assert!(u.is_unitary(1e-12));
        assert!(!CMatrix::zeros(2, 2).is_unitary(1e-12));
        assert!(!CMatrix::zeros(2, 3).is_unitary(1e-12));
    }

    #[test]
    fn hermitian_check() {
        let h = CMatrix::from_rows(&[
            vec![C64::from_real(1.0), C64::new(0.0, 1.0)],
            vec![C64::new(0.0, -1.0), C64::from_real(2.0)],
        ]);
        assert!(h.is_hermitian(1e-15));
        let nh = CMatrix::from_rows(&[
            vec![C64::from_real(1.0), C64::new(0.0, 1.0)],
            vec![C64::new(0.0, 1.0), C64::from_real(2.0)],
        ]);
        assert!(!nh.is_hermitian(1e-15));
    }

    #[test]
    fn columns_and_rows() {
        let mut m = CMatrix::zeros(2, 2);
        m.set_col(1, &CVector::from_real_slice(&[5.0, 6.0]));
        assert_eq!(m.col(1)[1], C64::from_real(6.0));
        assert_eq!(m.row(0)[1], C64::from_real(5.0));
    }

    #[test]
    fn outer_product() {
        let x = CVector::from_vec(vec![C64::ONE, C64::I]);
        let y = CVector::from_vec(vec![C64::I]);
        let o = CMatrix::outer(&x, &y);
        assert_eq!(o.shape(), (2, 1));
        assert_eq!(o[(0, 0)], C64::I.conj()); // 1 * conj(i) = -i
        assert_eq!(o[(1, 0)], C64::ONE); // i * conj(i) = 1
    }

    #[test]
    fn norms_and_scaling() {
        let m = CMatrix::from_rows(&[vec![C64::from_real(3.0), C64::from_real(4.0)]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.scale_real(2.0)[(0, 1)], C64::from_real(8.0));
        assert_eq!(m.scale(C64::I)[(0, 0)], C64::new(0.0, 3.0));
    }

    #[test]
    fn trace_requires_square() {
        assert!(CMatrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn re_im_split() {
        let m = CMatrix::from_fn(2, 2, |r, c| C64::new(r as f64, c as f64));
        assert_eq!(m.re()[(1, 0)], 1.0);
        assert_eq!(m.im()[(0, 1)], 1.0);
    }
}
