//! Single-precision structure-of-arrays fast-path kernels.
//!
//! This is the opt-in f32 tier of the forward path: complex matrices and
//! panels are stored as split re/im planes ([`Matrix32`] row-major,
//! [`Panel32`] column-major), and [`gemm32_into`] multiplies them with a
//! runtime-dispatched microkernel — AVX2+FMA on x86-64, NEON on aarch64,
//! and a portable scalar loop that is the reference everywhere else.
//!
//! The kernel tier is detected once per process (see [`kernel_tier`]) and
//! can be forced to the scalar reference with `PHOTON_KERNEL=scalar`, which
//! is how CI exercises both paths. Within one process the tier is fixed, so
//! results remain pool-size deterministic; across tiers the results differ
//! only by f32 rounding, which the serving layer bounds at ≤1e-5 relative
//! loss error against the f64 oracle (see `DESIGN.md`).

use std::sync::OnceLock;

use crate::c64::C64;
use crate::gemm::CPanel;
use crate::cmatrix::CMatrix;

/// The SIMD capability tier selected for the f32 fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable scalar loop — the reference implementation.
    Scalar,
    /// 8-wide AVX2 + FMA on x86-64.
    Avx2Fma,
    /// 4-wide NEON on aarch64.
    Neon,
}

impl KernelTier {
    /// Stable lowercase name used in trace events and bench reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2Fma => "avx2-fma",
            KernelTier::Neon => "neon",
        }
    }
}

static TIER: OnceLock<KernelTier> = OnceLock::new();

/// Returns the kernel tier for this process, detecting it on first call.
///
/// Detection order: the `PHOTON_KERNEL=scalar` environment override wins,
/// then AVX2+FMA via `is_x86_feature_detected!`, then NEON (always present
/// on aarch64), then the scalar fallback. The result is cached in a
/// `OnceLock`, so every caller in the process sees the same tier.
pub fn kernel_tier() -> KernelTier {
    *TIER.get_or_init(detect_tier)
}

#[allow(unreachable_code)]
fn detect_tier() -> KernelTier {
    if std::env::var("PHOTON_KERNEL").as_deref() == Ok("scalar") {
        return KernelTier::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return KernelTier::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return KernelTier::Neon;
    }
    KernelTier::Scalar
}

/// A dense complex matrix in split-plane f32 form: `re` and `im` are each
/// row-major `rows × cols` planes, so one matrix row is two contiguous f32
/// slices — exactly what the 8-wide FMA inner loop wants to stream.
#[derive(Debug, Clone, Default)]
pub struct Matrix32 {
    rows: usize,
    cols: usize,
    re: Vec<f32>,
    im: Vec<f32>,
}

impl Matrix32 {
    /// Creates an empty matrix; fill it with [`Matrix32::copy_from_cmatrix`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Demotes a double-precision matrix into split f32 planes, reusing the
    /// existing allocation when large enough.
    pub fn copy_from_cmatrix(&mut self, a: &CMatrix) {
        self.rows = a.rows();
        self.cols = a.cols();
        let n = self.rows * self.cols;
        self.re.clear();
        self.im.clear();
        self.re.reserve(n);
        self.im.reserve(n);
        for z in a.as_slice() {
            self.re.push(z.re as f32);
            self.im.push(z.im as f32);
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` of the real plane as a contiguous slice.
    #[inline]
    #[must_use]
    pub fn row_re(&self, r: usize) -> &[f32] {
        &self.re[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` of the imaginary plane as a contiguous slice.
    #[inline]
    #[must_use]
    pub fn row_im(&self, r: usize) -> &[f32] {
        &self.im[r * self.cols..(r + 1) * self.cols]
    }
}

/// A packed `dim × batch` complex panel in split-plane f32 form. Like
/// [`CPanel`] it is column-major: column `b` of each plane is contiguous.
#[derive(Debug, Clone, Default)]
pub struct Panel32 {
    dim: usize,
    batch: usize,
    re: Vec<f32>,
    im: Vec<f32>,
}

impl Panel32 {
    /// Creates an empty panel; use [`Panel32::resize`] before filling it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes to `dim × batch`, zero-filling. Reuses the allocation.
    pub fn resize(&mut self, dim: usize, batch: usize) {
        self.dim = dim;
        self.batch = batch;
        self.re.clear();
        self.im.clear();
        self.re.resize(dim * batch, 0.0);
        self.im.resize(dim * batch, 0.0);
    }

    /// Number of rows (the optical dimension `N`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of columns (the batch width `B`).
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Column `b` of the real plane.
    #[inline]
    #[must_use]
    pub fn col_re(&self, b: usize) -> &[f32] {
        &self.re[b * self.dim..(b + 1) * self.dim]
    }

    /// Column `b` of the imaginary plane.
    #[inline]
    #[must_use]
    pub fn col_im(&self, b: usize) -> &[f32] {
        &self.im[b * self.dim..(b + 1) * self.dim]
    }

    /// Demotes one complex column into column `b` of the panel.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.dim()` or `b >= self.batch()`.
    pub fn set_col_c64(&mut self, b: usize, v: &[C64]) {
        assert_eq!(v.len(), self.dim, "panel column length mismatch");
        let s = b * self.dim;
        for (k, z) in v.iter().enumerate() {
            self.re[s + k] = z.re as f32;
            self.im[s + k] = z.im as f32;
        }
    }

    /// Promotes column `b` back to complex doubles in `out`.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.dim()` or `b >= self.batch()`.
    pub fn col_to_c64(&self, b: usize, out: &mut [C64]) {
        assert_eq!(out.len(), self.dim, "panel column length mismatch");
        let s = b * self.dim;
        for (k, z) in out.iter_mut().enumerate() {
            *z = C64::new(f64::from(self.re[s + k]), f64::from(self.im[s + k]));
        }
    }

    /// Demotes a whole f64 panel into this panel.
    pub fn copy_from_cpanel(&mut self, p: &CPanel) {
        self.dim = p.dim();
        self.batch = p.batch();
        let n = self.dim * self.batch;
        self.re.clear();
        self.im.clear();
        self.re.reserve(n);
        self.im.reserve(n);
        for z in p.as_slice() {
            self.re.push(z.re as f32);
            self.im.push(z.im as f32);
        }
    }

    /// Promotes this panel into an f64 panel.
    pub fn copy_to_cpanel(&self, p: &mut CPanel) {
        p.resize(self.dim, self.batch);
        for (k, z) in p.as_mut_slice().iter_mut().enumerate() {
            *z = C64::new(f64::from(self.re[k]), f64::from(self.im[k]));
        }
    }
}

/// Scalar reference for one complex dot product over split planes.
///
/// Slices are validated equal-length by the caller; the loop body is
/// written over `zip` iterators so the optimizer drops per-element bounds
/// checks without `unsafe`.
#[inline]
fn dot32_scalar(ar: &[f32], ai: &[f32], xr: &[f32], xi: &[f32]) -> (f32, f32) {
    debug_assert_eq!(ar.len(), xr.len());
    debug_assert_eq!(ai.len(), xi.len());
    let mut acc_re = 0.0f32;
    let mut acc_im = 0.0f32;
    for (((&wr, &wi), &vr), &vi) in ar.iter().zip(ai).zip(xr).zip(xi) {
        acc_re += wr * vr - wi * vi;
        acc_im += wr * vi + wi * vr;
    }
    (acc_re, acc_im)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot32_avx2(ar: &[f32], ai: &[f32], xr: &[f32], xi: &[f32]) -> (f32, f32) {
    use std::arch::x86_64::*;
    let n = ar.len();
    let mut vre = _mm256_setzero_ps();
    let mut vim = _mm256_setzero_ps();
    let mut k = 0;
    while k + 8 <= n {
        let wr = _mm256_loadu_ps(ar.as_ptr().add(k));
        let wi = _mm256_loadu_ps(ai.as_ptr().add(k));
        let vr = _mm256_loadu_ps(xr.as_ptr().add(k));
        let vi = _mm256_loadu_ps(xi.as_ptr().add(k));
        vre = _mm256_fmadd_ps(wr, vr, vre);
        vre = _mm256_fnmadd_ps(wi, vi, vre);
        vim = _mm256_fmadd_ps(wr, vi, vim);
        vim = _mm256_fmadd_ps(wi, vr, vim);
        k += 8;
    }
    let mut acc_re = hsum256(vre);
    let mut acc_im = hsum256(vim);
    while k < n {
        let (wr, wi, vr, vi) = (ar[k], ai[k], xr[k], xi[k]);
        acc_re += wr * vr - wi * vi;
        acc_im += wr * vi + wi * vr;
        k += 1;
    }
    (acc_re, acc_im)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
    _mm_cvtss_f32(s)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot32_neon(ar: &[f32], ai: &[f32], xr: &[f32], xi: &[f32]) -> (f32, f32) {
    use std::arch::aarch64::*;
    let n = ar.len();
    let mut vre = vdupq_n_f32(0.0);
    let mut vim = vdupq_n_f32(0.0);
    let mut k = 0;
    while k + 4 <= n {
        let wr = vld1q_f32(ar.as_ptr().add(k));
        let wi = vld1q_f32(ai.as_ptr().add(k));
        let vr = vld1q_f32(xr.as_ptr().add(k));
        let vi = vld1q_f32(xi.as_ptr().add(k));
        vre = vfmaq_f32(vre, wr, vr);
        vre = vfmsq_f32(vre, wi, vi);
        vim = vfmaq_f32(vim, wr, vi);
        vim = vfmaq_f32(vim, wi, vr);
        k += 4;
    }
    let mut acc_re = vaddvq_f32(vre);
    let mut acc_im = vaddvq_f32(vim);
    while k < n {
        let (wr, wi, vr, vi) = (ar[k], ai[k], xr[k], xi[k]);
        acc_re += wr * vr - wi * vi;
        acc_im += wr * vi + wi * vr;
        k += 1;
    }
    (acc_re, acc_im)
}

/// Multi-RHS complex GEMM over split f32 planes: `y = a · x`, dispatched to
/// the process-wide [`kernel_tier`]. Reshapes `y` to `a.rows() × x.batch()`.
///
/// # Panics
///
/// Panics when `a.cols() != x.dim()`.
pub fn gemm32_into(a: &Matrix32, x: &Panel32, y: &mut Panel32) {
    assert_eq!(a.cols(), x.dim(), "gemm32 inner dimension mismatch");
    let tier = kernel_tier();
    let m = a.rows();
    let b_total = x.batch();
    y.resize(m, b_total);
    for b in 0..b_total {
        let xr = x.col_re(b);
        let xi = x.col_im(b);
        for r in 0..m {
            let (re, im) = match tier {
                KernelTier::Scalar => dot32_scalar(a.row_re(r), a.row_im(r), xr, xi),
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx2Fma => unsafe {
                    dot32_avx2(a.row_re(r), a.row_im(r), xr, xi)
                },
                #[cfg(target_arch = "aarch64")]
                KernelTier::Neon => unsafe { dot32_neon(a.row_re(r), a.row_im(r), xr, xi) },
                #[allow(unreachable_patterns)]
                _ => dot32_scalar(a.row_re(r), a.row_im(r), xr, xi),
            };
            let s = b * m;
            y.re[s + r] = re;
            y.im[s + r] = im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_into;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    fn dense_case(rows: usize, cols: usize, batch: usize) -> (CMatrix, CPanel) {
        let a = CMatrix::from_fn(rows, cols, |r, k| {
            c(
                ((r * cols + k) as f64).sin() * 0.5,
                ((r + 2 * k) as f64).cos() * 0.3,
            )
        });
        let mut x = CPanel::zeros(cols, batch);
        for b in 0..batch {
            for k in 0..cols {
                x.col_mut(b)[k] = c(
                    ((b * cols + k) as f64 * 0.7).cos(),
                    ((b + k) as f64 * 0.4).sin(),
                );
            }
        }
        (a, x)
    }

    #[test]
    fn gemm32_matches_f64_reference() {
        for &(rows, cols, batch) in &[(3usize, 3usize, 1usize), (8, 8, 5), (16, 16, 16), (7, 9, 3)]
        {
            let (a, x) = dense_case(rows, cols, batch);
            let mut y64 = CPanel::new();
            gemm_into(&a, &x, &mut y64);

            let mut a32 = Matrix32::new();
            a32.copy_from_cmatrix(&a);
            let mut x32 = Panel32::new();
            x32.copy_from_cpanel(&x);
            let mut y32 = Panel32::new();
            gemm32_into(&a32, &x32, &mut y32);
            let mut y32p = CPanel::new();
            y32.copy_to_cpanel(&mut y32p);

            for b in 0..batch {
                for r in 0..rows {
                    let d = (y32p.col(b)[r] - y64.col(b)[r]).abs();
                    assert!(d < 1e-4, "({rows},{cols},{batch}) col {b} row {r}: {d}");
                }
            }
        }
    }

    #[test]
    fn dispatched_kernel_matches_scalar_reference() {
        let (a, x) = dense_case(16, 16, 9);
        let mut a32 = Matrix32::new();
        a32.copy_from_cmatrix(&a);
        let mut x32 = Panel32::new();
        x32.copy_from_cpanel(&x);
        let mut y = Panel32::new();
        gemm32_into(&a32, &x32, &mut y);
        // Recompute with the portable scalar microkernel directly.
        for b in 0..x32.batch() {
            for r in 0..a32.rows() {
                let (re, im) =
                    dot32_scalar(a32.row_re(r), a32.row_im(r), x32.col_re(b), x32.col_im(b));
                let dr = (re - y.col_re(b)[r]).abs();
                let di = (im - y.col_im(b)[r]).abs();
                // SIMD lane-reduction order differs from the scalar loop, so
                // allow f32-rounding slack while requiring close agreement.
                assert!(dr < 1e-4 && di < 1e-4, "col {b} row {r}: {dr} {di}");
            }
        }
    }

    #[test]
    fn panel_roundtrip_and_resize() {
        let v = [c(0.5, -1.5), c(2.0, 0.25)];
        let mut p = Panel32::new();
        p.resize(2, 3);
        p.set_col_c64(1, &v);
        let mut out = [C64::ZERO; 2];
        p.col_to_c64(1, &mut out);
        assert_eq!(out[0], c(0.5, -1.5));
        assert_eq!(out[1], c(2.0, 0.25));
        p.resize(4, 1);
        assert!(p.col_re(0).iter().all(|&f| f == 0.0));
        assert!(p.col_im(0).iter().all(|&f| f == 0.0));
    }

    #[test]
    fn tier_name_is_stable() {
        let t = kernel_tier();
        assert!(["scalar", "avx2-fma", "neon"].contains(&t.name()));
        // Cached: second call returns the identical tier.
        assert_eq!(t, kernel_tier());
    }
}
