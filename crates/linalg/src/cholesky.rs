//! Cholesky factorization of symmetric / Hermitian positive-definite
//! matrices, plus covariance-shaped Gaussian sampling.

use crate::c64::C64;
use crate::cmatrix::CMatrix;
use crate::cvector::CVector;
use crate::error::{LinalgError, Result};
use crate::rmatrix::RMatrix;
use crate::rvector::RVector;

/// Cholesky factorization `A = L·Lᵀ` of a real symmetric positive-definite
/// matrix.
///
/// The factor is the standard device for sampling `N(0, Σ)`: draw
/// `r ~ N(0, I)` and return `L·r`.
///
/// # Examples
///
/// ```
/// use photon_linalg::{RMatrix, RVector, RCholesky};
///
/// let a = RMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let chol = RCholesky::new(&a)?;
/// let x = chol.solve(&RVector::from_slice(&[8.0, 7.0]))?;
/// let b = a.mul_vec(&x)?;
/// assert!((b[0] - 8.0).abs() < 1e-10 && (b[1] - 7.0).abs() < 1e-10);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RCholesky {
    l: RMatrix,
}

impl RCholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &RMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = RMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(RCholesky { l })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &RMatrix {
        &self.l
    }

    /// Solves `A·x = b` by two triangular solves.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &RVector) -> Result<RVector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // L·y = b
        let mut y = b.clone();
        for i in 0..n {
            let mut acc = y[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Lᵀ·x = y
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in i + 1..n {
                acc -= self.l[(k, i)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Maps a standard-normal draw `r ~ N(0, I)` to `L·r ~ N(0, A)`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `r.len() != self.dim()`.
    pub fn sample_from_standard(&self, r: &RVector) -> Result<RVector> {
        if r.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {}", self.dim()),
                found: format!("length {}", r.len()),
            });
        }
        let n = self.dim();
        let mut out = RVector::zeros(n);
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.l[(i, k)] * r[k];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Log-determinant of `A`, computed as `2·Σ log Lᵢᵢ`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Cholesky factorization `A = L·Lᴴ` of a complex Hermitian
/// positive-definite matrix.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CMatrix, CCholesky};
///
/// let a = CMatrix::from_rows(&[
///     vec![C64::from_real(2.0), C64::new(0.0, 1.0)],
///     vec![C64::new(0.0, -1.0), C64::from_real(2.0)],
/// ]);
/// let chol = CCholesky::new(&a)?;
/// assert_eq!(chol.dim(), 2);
/// # Ok::<(), photon_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CCholesky {
    l: CMatrix,
}

impl CCholesky {
    /// Factorizes a Hermitian positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &CMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = CMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)].re;
            for k in 0..j {
                d -= l[(j, k)].norm_sqr();
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let dj = d.sqrt();
            l[(j, j)] = C64::from_real(dj);
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)].conj();
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(CCholesky { l })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &CMatrix {
        &self.l
    }

    /// Solves `A·x = b` by two triangular solves.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &CVector) -> Result<CVector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut y = b.clone();
        for i in 0..n {
            let mut acc = y[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in i + 1..n {
                acc -= self.l[(k, i)].conj() * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Log-determinant of `A` (real, since `A` is HPD).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].re.ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> RMatrix {
        RMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.25],
            vec![0.5, -0.25, 2.0],
        ])
    }

    #[test]
    fn real_factor_reconstructs() {
        let a = spd3();
        let chol = RCholesky::new(&a).unwrap();
        let l = chol.factor();
        let recon = l.mul_mat(&l.transpose()).unwrap();
        assert!((&recon - &a).max_abs() < 1e-12);
    }

    #[test]
    fn real_solve_roundtrip() {
        let a = spd3();
        let chol = RCholesky::new(&a).unwrap();
        let x_true = RVector::from_slice(&[1.0, -2.0, 3.0]);
        let b = a.mul_vec(&x_true).unwrap();
        let x = chol.solve(&b).unwrap();
        assert!((&x - &x_true).max_abs() < 1e-10);
        assert!(chol.solve(&RVector::zeros(2)).is_err());
    }

    #[test]
    fn real_rejects_indefinite() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            RCholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
        assert!(RCholesky::new(&RMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn real_log_det_matches_lu() {
        let a = spd3();
        let chol = RCholesky::new(&a).unwrap();
        let det = a.det().unwrap();
        assert!((chol.log_det() - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn sampling_covariance_shape() {
        // L·r with e_k recovers columns of L.
        let a = spd3();
        let chol = RCholesky::new(&a).unwrap();
        let e0 = RVector::basis(3, 0);
        let s = chol.sample_from_standard(&e0).unwrap();
        let l = chol.factor();
        assert!((s[0] - l[(0, 0)]).abs() < 1e-14);
        assert!((s[2] - l[(2, 0)]).abs() < 1e-14);
        assert!(chol.sample_from_standard(&RVector::zeros(2)).is_err());
    }

    #[test]
    fn complex_factor_reconstructs() {
        let a = CMatrix::from_rows(&[
            vec![C64::from_real(3.0), C64::new(1.0, 1.0)],
            vec![C64::new(1.0, -1.0), C64::from_real(4.0)],
        ]);
        let chol = CCholesky::new(&a).unwrap();
        let l = chol.factor();
        let recon = l.mul_mat(&l.adjoint()).unwrap();
        assert!((&recon - &a).max_abs() < 1e-12);
    }

    #[test]
    fn complex_solve_roundtrip() {
        let a = CMatrix::from_rows(&[
            vec![C64::from_real(3.0), C64::new(1.0, 1.0)],
            vec![C64::new(1.0, -1.0), C64::from_real(4.0)],
        ]);
        let chol = CCholesky::new(&a).unwrap();
        let x_true = CVector::from_vec(vec![C64::new(1.0, 2.0), C64::new(-0.5, 0.0)]);
        let b = a.mul_vec(&x_true).unwrap();
        let x = chol.solve(&b).unwrap();
        assert!((&x - &x_true).max_abs() < 1e-10);
        assert!(chol.solve(&CVector::zeros(3)).is_err());
    }

    #[test]
    fn complex_rejects_non_pd() {
        let a = CMatrix::from_rows(&[
            vec![C64::from_real(1.0), C64::from_real(2.0)],
            vec![C64::from_real(2.0), C64::from_real(1.0)],
        ]);
        assert!(matches!(
            CCholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn complex_log_det() {
        let a = CMatrix::from_rows(&[
            vec![C64::from_real(2.0), C64::new(0.0, 1.0)],
            vec![C64::new(0.0, -1.0), C64::from_real(2.0)],
        ]);
        // det = 4 - |i|² = 3
        let chol = CCholesky::new(&a).unwrap();
        assert!((chol.log_det() - 3.0f64.ln()).abs() < 1e-12);
    }
}
