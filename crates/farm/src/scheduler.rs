//! Tenants, jobs, admission control, and deficit-round-robin scheduling.
//!
//! The farm shares a pool of chips between *tenants*. Each tenant has a
//! bounded submission queue (backpressure), an optional chip-query budget
//! (metering), and a DRR quantum (its fair share, in training epochs).
//! Scheduling is classic deficit round robin at epoch granularity: each
//! visit tops the tenant's deficit up by its quantum, and the head job gets
//! a slice of `min(deficit, epochs remaining)` epochs. A tenant that keeps
//! submitting long jobs therefore cannot starve one that submits short
//! ones, and a tenant whose budget runs dry has its queued jobs shed with a
//! typed [`RejectReason::BudgetExhausted`] — never silently dropped.
//!
//! Everything here is deterministic: tenant order, queue order, and the
//! deficit arithmetic fully determine the dispatch sequence.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use photon_core::{Method, TaskSpec, TrainConfig};
use photon_faults::FaultPlan;

/// Handle to a submitted job. Indexes the farm's job table; also the order
/// of submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Why a job was rejected instead of trained. Every rejection is typed and
/// final — a rejected job is accounted for, not lost.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The submission named a tenant the farm does not know.
    UnknownTenant,
    /// The tenant's submission queue is full (backpressure).
    QueueFull {
        /// The queue capacity that was hit.
        cap: usize,
    },
    /// The tenant's chip-query budget is spent; the job was shed.
    BudgetExhausted {
        /// The configured budget.
        budget: u64,
        /// Queries already spent when the job was shed.
        spent: u64,
    },
    /// Every worker is quarantined or dead; queued jobs cannot run.
    NoHealthyWorkers,
    /// The job itself failed (bad configuration, journal error, or it
    /// exhausted the farm's retry allowance).
    Failed {
        /// Human-readable cause.
        detail: String,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::UnknownTenant => write!(f, "unknown tenant"),
            RejectReason::QueueFull { cap } => write!(f, "tenant queue full (cap {cap})"),
            RejectReason::BudgetExhausted { budget, spent } => {
                write!(f, "query budget exhausted ({spent} spent of {budget})")
            }
            RejectReason::NoHealthyWorkers => write!(f, "no healthy workers left"),
            RejectReason::Failed { detail } => write!(f, "failed: {detail}"),
        }
    }
}

/// A typed rejection: which job, whose, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Job name as submitted.
    pub job: String,
    /// Tenant the job belonged to.
    pub tenant: String,
    /// The typed cause.
    pub reason: RejectReason,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {:?} of tenant {:?} rejected: {}", self.job, self.tenant, self.reason)
    }
}

impl Error for Rejection {}

/// One tenant's contract with the farm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name (must be unique within the farm).
    pub name: String,
    /// Total chip queries this tenant may spend, across all its jobs and
    /// including queries burned by discarded (timed-out) attempts. `None`
    /// means unmetered.
    pub query_budget: Option<u64>,
    /// Maximum jobs queued at once; submissions beyond it are rejected
    /// with [`RejectReason::QueueFull`].
    pub queue_cap: usize,
    /// DRR quantum in training epochs: the slice credit this tenant earns
    /// per scheduler visit.
    pub quantum: usize,
}

impl TenantSpec {
    /// A tenant with no budget cap, a queue of 64, and a quantum of 2
    /// epochs.
    pub fn new(name: &str) -> Self {
        TenantSpec {
            name: name.to_string(),
            query_budget: None,
            queue_cap: 64,
            quantum: 2,
        }
    }

    /// Caps total chip queries.
    #[must_use]
    pub fn with_query_budget(mut self, budget: u64) -> Self {
        self.query_budget = Some(budget);
        self
    }

    /// Caps the submission queue.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the DRR quantum (minimum 1 epoch).
    #[must_use]
    pub fn with_quantum(mut self, epochs: usize) -> Self {
        self.quantum = epochs.max(1);
        self
    }
}

/// A unit of tenant work: one durable training run.
///
/// The job owns its chip *recipe* — task spec, task seed, and optional
/// fault plan — not a chip instance. Every slice rebuilds the chip from the
/// recipe, and because fault decisions are content-hashed (pure in the
/// plan seed and the query), the rebuilt chip behaves identically on
/// whichever worker the slice lands on. That, plus the run journal, is
/// what makes migration bitwise-safe.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name (reporting only; need not be unique).
    pub name: String,
    /// Owning tenant.
    pub tenant: String,
    /// What to train on.
    pub task: TaskSpec,
    /// Seed for [`photon_core::build_task`]; fixes the chip and data.
    pub task_seed: u64,
    /// Optional job-level chip faults (drift, spikes, drops). Keep hangs
    /// out of job plans — hangs model the *worker's* lab link and belong
    /// in [`WorkerSpec`](crate::WorkerSpec).
    pub chip_faults: Option<FaultPlan>,
    /// Stage-2 training method.
    pub method: Method,
    /// Training configuration.
    pub config: TrainConfig,
    /// Root seed of the durable run (drives every per-epoch RNG stream).
    pub root_seed: u64,
}

impl JobSpec {
    /// A job with default seeds (`task_seed` 1, `root_seed` 7) and no
    /// job-level faults.
    pub fn new(name: &str, tenant: &str, task: TaskSpec, method: Method, config: TrainConfig) -> Self {
        JobSpec {
            name: name.to_string(),
            tenant: tenant.to_string(),
            task,
            task_seed: 1,
            chip_faults: None,
            method,
            config,
            root_seed: 7,
        }
    }

    /// Sets the task seed (chip + data).
    #[must_use]
    pub fn with_task_seed(mut self, seed: u64) -> Self {
        self.task_seed = seed;
        self
    }

    /// Sets the durable-run root seed.
    #[must_use]
    pub fn with_root_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    /// Attaches a job-level chip fault plan.
    #[must_use]
    pub fn with_chip_faults(mut self, plan: FaultPlan) -> Self {
        self.chip_faults = Some(plan);
        self
    }
}

/// Live per-tenant accounting.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub spec: TenantSpec,
    pub queue: VecDeque<JobId>,
    pub deficit: usize,
    /// Chip queries spent so far (includes discarded attempts — the chip
    /// was queried whether or not the epoch committed).
    pub queries: u64,
    pub completed: u64,
    pub rejected: u64,
}

impl TenantState {
    fn new(spec: TenantSpec) -> Self {
        TenantState {
            spec,
            queue: VecDeque::new(),
            deficit: 0,
            queries: 0,
            completed: 0,
            rejected: 0,
        }
    }

    /// Whether the tenant's budget is spent.
    pub fn budget_spent(&self) -> bool {
        self.spec
            .query_budget
            .is_some_and(|budget| self.queries >= budget)
    }
}

/// One scheduling decision from [`DrrScheduler::pick`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Pick {
    /// Dispatch `job` for a slice of `grant` epochs.
    Run {
        job: JobId,
        tenant: usize,
        grant: usize,
    },
    /// `job`'s tenant has no budget left; shed it.
    Shed {
        job: JobId,
        tenant: usize,
        budget: u64,
        spent: u64,
    },
    /// Nothing runnable anywhere.
    Idle,
}

/// Deficit-round-robin scheduler over the farm's tenants.
#[derive(Debug)]
pub(crate) struct DrrScheduler {
    pub tenants: Vec<TenantState>,
    cursor: usize,
}

impl DrrScheduler {
    pub fn new(specs: Vec<TenantSpec>) -> Self {
        // `TenantSpec::with_quantum` clamps to 1, but `quantum` is a public
        // field: a hand-built spec can still carry 0. Reject it here — a
        // zero-quantum tenant earns no credit and would starve forever
        // (`pick`'s `.max(1)` papers over it, but silently granting epochs
        // a spec said the tenant should never get is worse than refusing
        // the spec outright).
        for spec in &specs {
            assert!(
                spec.quantum >= 1,
                "tenant {:?} has a zero DRR quantum and could never be scheduled",
                spec.name
            );
        }
        DrrScheduler {
            tenants: specs.into_iter().map(TenantState::new).collect(),
            cursor: 0,
        }
    }

    /// Index of the tenant named `name`.
    pub fn tenant_index(&self, name: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t.spec.name == name)
    }

    /// Picks the next job to dispatch. `remaining` maps a job to its
    /// outstanding epoch count. Visits tenants round-robin from the
    /// cursor; each visit tops up the tenant's deficit by its quantum and
    /// grants the head job `min(deficit, remaining)` epochs.
    pub fn pick(&mut self, remaining: &dyn Fn(JobId) -> usize) -> Pick {
        let n = self.tenants.len();
        for _ in 0..n {
            let idx = self.cursor % n.max(1);
            self.cursor = (self.cursor + 1) % n.max(1);
            let tenant = &mut self.tenants[idx];
            let Some(&head) = tenant.queue.front() else {
                // Classic DRR: an empty queue forfeits its deficit.
                tenant.deficit = 0;
                continue;
            };
            if let Some(budget) = tenant.spec.query_budget {
                if tenant.queries >= budget {
                    tenant.queue.pop_front();
                    return Pick::Shed {
                        job: head,
                        tenant: idx,
                        budget,
                        spent: tenant.queries,
                    };
                }
            }
            tenant.deficit = tenant.deficit.saturating_add(tenant.spec.quantum.max(1));
            let need = remaining(head).max(1);
            let grant = tenant.deficit.min(need);
            tenant.deficit -= grant;
            tenant.queue.pop_front();
            if tenant.queue.is_empty() {
                tenant.deficit = 0;
            }
            return Pick::Run {
                job: head,
                tenant: idx,
                grant,
            };
        }
        Pick::Idle
    }

    /// Puts a preempted or timed-out job back at the head of its tenant's
    /// queue so the run continues as soon as the tenant is next served.
    pub fn requeue_front(&mut self, tenant: usize, job: JobId) {
        self.tenants[tenant].queue.push_front(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(quanta: &[usize]) -> DrrScheduler {
        DrrScheduler::new(
            quanta
                .iter()
                .enumerate()
                .map(|(i, &q)| TenantSpec::new(&format!("t{i}")).with_quantum(q))
                .collect(),
        )
    }

    #[test]
    fn drr_interleaves_tenants_by_quantum() {
        let mut s = sched(&[2, 2]);
        s.tenants[0].queue.push_back(JobId(0));
        s.tenants[1].queue.push_back(JobId(1));
        // Both jobs need 5 epochs; quanta of 2 → slices of 2,2,1 each,
        // alternating tenants.
        let mut left = [5usize, 5usize];
        let mut order = Vec::new();
        loop {
            let l = left;
            match s.pick(&move |j: JobId| l[j.0 as usize]) {
                Pick::Run { job, tenant, grant } => {
                    order.push((job.0, grant));
                    left[job.0 as usize] -= grant;
                    if left[job.0 as usize] > 0 {
                        s.requeue_front(tenant, job);
                    }
                }
                Pick::Idle => break,
                other => panic!("unexpected pick: {other:?}"),
            }
        }
        assert_eq!(
            order,
            vec![(0, 2), (1, 2), (0, 2), (1, 2), (0, 1), (1, 1)],
            "tenants must alternate, grants follow the quantum"
        );
        assert_eq!(left, [0, 0]);
    }

    #[test]
    fn deficit_accumulates_for_short_grants() {
        // A job with 1 epoch left against a quantum of 3 banks the unused
        // credit for the tenant's next job.
        let mut s = sched(&[3]);
        s.tenants[0].queue.push_back(JobId(0));
        s.tenants[0].queue.push_back(JobId(1));
        let rem = |j: JobId| if j.0 == 0 { 1 } else { 10 };
        match s.pick(&rem) {
            Pick::Run { job, grant, .. } => {
                assert_eq!((job.0, grant), (0, 1));
            }
            other => panic!("{other:?}"),
        }
        // 2 banked + 3 fresh = 5 for the next job.
        match s.pick(&rem) {
            Pick::Run { job, grant, .. } => {
                assert_eq!((job.0, grant), (1, 5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_sheds_instead_of_running() {
        let mut s = DrrScheduler::new(vec![TenantSpec::new("t0").with_query_budget(100)]);
        s.tenants[0].queue.push_back(JobId(0));
        s.tenants[0].queries = 100;
        match s.pick(&|_| 4) {
            Pick::Shed { job, budget, spent, .. } => {
                assert_eq!(job, JobId(0));
                assert_eq!((budget, spent), (100, 100));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(s.pick(&|_| 4), Pick::Idle, "queue is empty after the shed");
    }

    #[test]
    fn idle_when_all_queues_empty() {
        let mut s = sched(&[2, 2, 2]);
        assert_eq!(s.pick(&|_| 1), Pick::Idle);
    }

    #[test]
    #[should_panic(expected = "zero DRR quantum")]
    fn zero_quantum_tenant_rejected_at_construction() {
        // `with_quantum` clamps, but the field is public — forge the
        // invalid spec directly.
        let mut spec = TenantSpec::new("freeloader");
        spec.quantum = 0;
        let _ = DrrScheduler::new(vec![spec]);
    }

    #[test]
    fn banked_deficit_never_exceeds_one_quantum_after_idle_round() {
        // Quantum 3, a 1-epoch job: the visit banks 2 epochs of credit,
        // but the queue empties with the grant, so classic DRR forfeits
        // the bank. After the idle round, the next job must be granted
        // exactly one quantum — not quantum + stale credit.
        let mut s = sched(&[3]);
        s.tenants[0].queue.push_back(JobId(0));
        match s.pick(&|_| 1) {
            Pick::Run { grant, .. } => assert_eq!(grant, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.pick(&|_| 1), Pick::Idle, "queue drained");
        assert_eq!(s.tenants[0].deficit, 0, "idle queue forfeits its bank");
        s.tenants[0].queue.push_back(JobId(1));
        match s.pick(&|_| 100) {
            Pick::Run { job, grant, .. } => {
                assert_eq!(job, JobId(1));
                assert_eq!(grant, 3, "one fresh quantum, no stale credit");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_tenant_degenerates_to_fifo() {
        // With one tenant there is no cross-tenant fairness to arbitrate:
        // jobs must complete strictly in submission order, each running to
        // completion (across possibly several slices) before the next
        // starts.
        let mut s = sched(&[2]);
        for id in 0..3 {
            s.tenants[0].queue.push_back(JobId(id));
        }
        let mut left = [3usize, 2, 1];
        let mut slices = Vec::new();
        loop {
            let l = left;
            match s.pick(&move |j: JobId| l[j.0 as usize]) {
                Pick::Run { job, tenant, grant } => {
                    slices.push((job.0, grant));
                    left[job.0 as usize] -= grant;
                    if left[job.0 as usize] > 0 {
                        s.requeue_front(tenant, job);
                    }
                }
                Pick::Idle => break,
                other => panic!("unexpected pick: {other:?}"),
            }
        }
        assert_eq!(left, [0, 0, 0]);
        assert_eq!(
            slices,
            vec![(0, 2), (0, 1), (1, 2), (2, 1)],
            "strict FIFO: each job finishes before its successor starts"
        );
    }
}
