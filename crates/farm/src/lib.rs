//! # photon-farm
//!
//! Fault-tolerant multi-tenant chip farm: a pool of (possibly faulty)
//! optical chips shared between tenants under supervised scheduling,
//! admission control, and quarantine.
//!
//! The farm runs each submitted [`JobSpec`] as a sequence of *slices*: a
//! slice is one invocation of the durable training runtime
//! ([`Trainer::train_durable`] / [`Trainer::resume`]) with an epoch budget
//! ([`DurableOptions::epoch_budget`]) set by the deficit-round-robin
//! scheduler. Because every committed epoch lives in the job's run journal
//! and every RNG stream re-derives from the root seed, a slice can end —
//! by preemption, watchdog timeout, or a chaos kill — and the next slice
//! resumes **bitwise identically**, on the same worker or another one.
//! Worker-side faults (hung lab links) only ever poison *attempts*, which
//! the watchdog discards; they can never corrupt committed state.
//!
//! Supervision: each worker carries a rolling-window [`HealthMonitor`].
//! Slices that burn their watchdog budget count against the worker; enough
//! failures walk it healthy → degraded → quarantined, after which it is
//! never dispatched to again and its in-flight jobs migrate. The
//! [`ChaosPlan`] scripts kills and forced quarantines deterministically for
//! tests and CI gates.
//!
//! Accounting: every chip query is attributed to exactly one
//! (tenant, worker) pair — including queries burned by discarded attempts
//! — and [`Farm::run`] reconciles the per-tenant, per-worker, and per-job
//! ledgers at shutdown. Jobs end [`JobResult::Completed`] or
//! [`JobResult::Rejected`] with a typed [`RejectReason`]; the farm never
//! loses one.
//!
//! ```no_run
//! use photon_core::{Method, TaskSpec, TrainConfig};
//! use photon_farm::{Farm, FarmConfig, JobSpec, TenantSpec, WorkerSpec};
//!
//! let config = FarmConfig::new("/tmp/farm-journals");
//! let workers = vec![WorkerSpec::clean("w0"), WorkerSpec::hanging("w1", 0.02, 9)];
//! let tenants = vec![TenantSpec::new("alice"), TenantSpec::new("bob")];
//! let mut farm = Farm::new(config, workers, tenants);
//! let mut train = TrainConfig::quick(4);
//! train.epochs = 6;
//! farm.submit(JobSpec::new("a0", "alice", TaskSpec::quick(4), Method::ZoGaussian, train))
//!     .unwrap();
//! let report = farm.run();
//! assert_eq!(report.lost(), 0);
//! assert!(report.ledgers_reconcile());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod chaos;
mod health;
mod online;
mod resilience;
mod scheduler;
mod serving;

pub use chaos::{ChaosPlan, KillSpec, QuarantineSpec};
pub use health::{ChipHealth, HealthMonitor, HealthPolicy, HealthTransition};
pub use online::{
    run_online, CycleRecord, OnlineError, OnlineOptions, OnlineOutcome, ONLINE_WAL,
};
pub use resilience::{
    rung_label, BreakerPolicy, BreakerState, BreakerTransition, BrownoutController,
    BrownoutPolicy, CircuitBreaker, DedupLedger, HedgeDelayTracker, HedgePolicy, RollingWindow,
    TierTransition,
};
pub use scheduler::{JobId, JobSpec, RejectReason, Rejection, TenantSpec};
pub use serving::{CoalescePolicy, DrainDecision, RequestQueue, ServeRequest, NO_DEADLINE};

use std::path::PathBuf;
use std::time::Duration;

use photon_core::{
    build_task, AbortReason, DurableOptions, RunOutcome, TrainOutcome, Trainer, WatchdogPolicy,
};
use photon_exec::ExecPool;
use photon_faults::{FaultPlan, FaultyChip, HangConfig};
use photon_photonics::OnnChip;
use photon_trace::{TraceEvent, TraceHandle};

use scheduler::{DrrScheduler, Pick};

/// One physical worker: a chip slot plus the lab link that reaches it.
///
/// The worker does **not** own job chip state — jobs carry their chip
/// recipe and rebuild it each slice, which is what makes migration safe.
/// What the worker contributes is its *infrastructure* failure mode: a
/// hang probability on its lab link, injected as an outer
/// [`FaultyChip`] wrapper whose hangs the watchdog converts into
/// discarded attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpec {
    /// Worker name (must be unique within the farm).
    pub name: String,
    /// Probability any chip read over this worker's link hangs.
    pub hang_prob: f64,
    /// Seed of the worker's fault plan.
    pub fault_seed: u64,
}

impl WorkerSpec {
    /// A worker with a clean link.
    pub fn clean(name: &str) -> Self {
        WorkerSpec {
            name: name.to_string(),
            hang_prob: 0.0,
            fault_seed: 0,
        }
    }

    /// A worker whose link hangs with probability `prob` per read,
    /// deterministically under `seed`.
    pub fn hanging(name: &str, prob: f64, seed: u64) -> Self {
        WorkerSpec {
            name: name.to_string(),
            hang_prob: prob,
            fault_seed: seed,
        }
    }
}

/// Farm-wide configuration.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Directory for per-job run journals (created on demand).
    pub journal_dir: PathBuf,
    /// Watchdog policy applied to every slice.
    pub watchdog: WatchdogPolicy,
    /// Health ladder thresholds.
    pub health: HealthPolicy,
    /// Scripted failures (empty by default).
    pub chaos: ChaosPlan,
    /// Telemetry sink for farm events (chip health, job state, tenant
    /// ledgers). Job-internal events flow through each job's own
    /// `TrainConfig::trace`.
    pub trace: TraceHandle,
    /// Worker threads for slice execution. `None` honours
    /// `PHOTON_THREADS`.
    pub parallelism: Option<usize>,
    /// Watchdog-timeout slices a single job may accumulate before it is
    /// rejected as failed (bounds poison-pill jobs).
    pub max_job_timeouts: u32,
    /// Hard cap on scheduler rounds (safety valve; generous by default).
    pub max_rounds: u64,
}

impl FarmConfig {
    /// Defaults: standard watchdog and health policy, no chaos, null
    /// trace, 5 timeout slices per job, 10 000 rounds.
    pub fn new(journal_dir: impl Into<PathBuf>) -> Self {
        FarmConfig {
            journal_dir: journal_dir.into(),
            watchdog: WatchdogPolicy::standard(),
            health: HealthPolicy::standard(),
            chaos: ChaosPlan::none(),
            trace: TraceHandle::null(),
            parallelism: None,
            max_job_timeouts: 5,
            max_rounds: 10_000,
        }
    }

    /// Replaces the watchdog policy.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: WatchdogPolicy) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Replaces the health policy.
    #[must_use]
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Installs a chaos plan.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// Attaches a telemetry sink.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }
}

/// How a job ended. Every submitted job reaches exactly one of these.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// The run finished all epochs; the outcome is bitwise identical to an
    /// uninterrupted single-chip run with the same spec.
    Completed(Box<TrainOutcome>),
    /// The job was turned away or shed, with a typed reason.
    Rejected(RejectReason),
}

impl JobResult {
    /// The training outcome, if the job completed.
    pub fn completed(&self) -> Option<&TrainOutcome> {
        match self {
            JobResult::Completed(out) => Some(out),
            JobResult::Rejected(_) => None,
        }
    }

    /// The rejection reason, if the job was rejected.
    pub fn rejected(&self) -> Option<&RejectReason> {
        match self {
            JobResult::Completed(_) => None,
            JobResult::Rejected(reason) => Some(reason),
        }
    }
}

#[derive(Debug)]
enum JobPhase {
    Queued,
    Running,
    Done(JobResult),
}

#[derive(Debug)]
struct JobRuntime {
    spec: JobSpec,
    tenant: usize,
    journal: PathBuf,
    /// Whether a journal exists (first slice ran), i.e. the next slice
    /// resumes instead of starting fresh.
    started: bool,
    epochs_done: usize,
    queries: u64,
    slices: u32,
    timeouts: u32,
    migrations: u32,
    last_worker: Option<usize>,
    phase: JobPhase,
}

#[derive(Debug)]
struct WorkerState {
    spec: WorkerSpec,
    monitor: HealthMonitor,
    dispatches: u64,
    queries: u64,
    slices: u32,
    hangs: u64,
    timeouts: u32,
}

/// Everything one slice needs, detached from the farm so slices of a round
/// can run on pool threads.
#[derive(Debug)]
struct SliceInput {
    job: JobId,
    tenant: usize,
    worker: usize,
    spec: JobSpec,
    journal: PathBuf,
    started: bool,
    hang_prob: f64,
    fault_seed: u64,
    watchdog: WatchdogPolicy,
    epochs: usize,
    kill_after: Option<usize>,
}

#[derive(Debug)]
enum SliceOutcome {
    Completed(Box<TrainOutcome>),
    Preempted { epochs_done: usize },
    TimedOut { epochs_done: usize, epoch: usize, timeouts: u32 },
    Failed(String),
}

#[derive(Debug)]
struct SliceReport {
    job: JobId,
    tenant: usize,
    worker: usize,
    killed: bool,
    outcome: SliceOutcome,
    queries: u64,
    hangs: u64,
}

/// Runs one slice: rebuild the job's chip from its recipe, wrap it in the
/// worker's link faults, and drive the durable runtime for up to `epochs`
/// epochs (fewer if a chaos kill is scripted).
fn run_slice(inp: &SliceInput) -> SliceReport {
    let budget = inp.kill_after.map_or(inp.epochs, |k| k.min(inp.epochs));
    let fail = |detail: String| SliceReport {
        job: inp.job,
        tenant: inp.tenant,
        worker: inp.worker,
        killed: inp.kill_after.is_some(),
        outcome: SliceOutcome::Failed(detail),
        queries: 0,
        hangs: 0,
    };
    let task = match build_task(&inp.spec.task, inp.spec.task_seed) {
        Ok(task) => task,
        Err(e) => return fail(e.to_string()),
    };
    // Inner wrapper: the job's own chip faults (content-hashed, so the
    // rebuilt chip replays identically on any worker). Outer wrapper: this
    // worker's link hangs. The trainer sees the outer chip, so its abort
    // flag — the one the watchdog raises — unblocks the hangs.
    let job_plan = inp
        .spec
        .chip_faults
        .clone()
        .unwrap_or_else(|| FaultPlan::new(inp.spec.task_seed));
    let link_plan = FaultPlan::new(inp.fault_seed).with_hangs(HangConfig {
        prob: inp.hang_prob,
        max_block: Duration::from_secs(5),
    });
    let chip = FaultyChip::new(FaultyChip::new(task.chip, job_plan), link_plan);
    let trainer = Trainer::new(&chip, &task.train, &task.test, task.head);
    let opts = DurableOptions::new(&inp.journal, inp.spec.root_seed)
        .with_watchdog(inp.watchdog)
        .with_epoch_budget(budget);
    let result = if inp.started {
        trainer.resume(&inp.spec.config, &opts)
    } else {
        trainer.train_durable(inp.spec.method, &inp.spec.config, &opts)
    };
    let queries = chip.query_count();
    let hangs = chip.fault_counts().hung;
    let outcome = match result {
        Ok(RunOutcome::Completed(out)) => SliceOutcome::Completed(Box::new(out)),
        Ok(RunOutcome::Aborted {
            epochs_completed,
            reason: AbortReason::Preempted { .. },
            ..
        }) => SliceOutcome::Preempted {
            epochs_done: epochs_completed,
        },
        Ok(RunOutcome::Aborted {
            epochs_completed,
            reason: AbortReason::QueryDeadline { epoch, timeouts },
            ..
        }) => SliceOutcome::TimedOut {
            epochs_done: epochs_completed,
            epoch,
            timeouts,
        },
        Err(e) => SliceOutcome::Failed(e.to_string()),
    };
    SliceReport {
        job: inp.job,
        tenant: inp.tenant,
        worker: inp.worker,
        killed: inp.kill_after.is_some(),
        outcome,
        queries,
        hangs,
    }
}

/// Terminal record of one job in the [`FarmReport`], in submission order.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job id (submission order).
    pub id: JobId,
    /// Job name as submitted.
    pub name: String,
    /// Owning tenant.
    pub tenant: String,
    /// Terminal result. `None` only if the farm stalled before the job
    /// reached a terminal state — [`FarmReport::lost`] counts these, and a
    /// correct farm produces none.
    pub result: Option<JobResult>,
    /// Chip queries attributed to the job (discarded attempts included).
    pub queries: u64,
    /// Slices dispatched.
    pub slices: u32,
    /// Times the job resumed on a different worker than its previous
    /// slice.
    pub migrations: u32,
    /// Worker that ran the final slice.
    pub last_worker: Option<String>,
}

/// Per-tenant ledger at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Total chip queries attributed to the tenant.
    pub queries: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs rejected (admission or shed).
    pub rejected: u64,
}

/// Per-worker ledger at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker name.
    pub name: String,
    /// Final health state.
    pub health: ChipHealth,
    /// Chip queries served.
    pub queries: u64,
    /// Slices executed.
    pub slices: u32,
    /// Reads that hung on this worker's link.
    pub hangs: u64,
    /// Watchdog timeouts charged to this worker.
    pub timeouts: u32,
    /// Slices dispatched to it (≥ `slices` only if the farm stalled).
    pub dispatches: u64,
}

/// Shutdown summary of a farm run.
#[derive(Debug)]
pub struct FarmReport {
    /// One entry per submitted job, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Per-tenant ledgers.
    pub tenants: Vec<TenantReport>,
    /// Per-worker ledgers.
    pub workers: Vec<WorkerReport>,
    /// Scheduler rounds executed.
    pub rounds: u64,
}

impl FarmReport {
    /// Jobs that never reached a terminal state. A correct farm returns 0.
    pub fn lost(&self) -> usize {
        self.jobs.iter().filter(|j| j.result.is_none()).count()
    }

    /// Whether chip spend reconciles: the sum over tenant ledgers, the sum
    /// over worker ledgers, and the sum over job ledgers must agree —
    /// every query is attributed exactly once on each axis.
    pub fn ledgers_reconcile(&self) -> bool {
        let by_tenant: u64 = self.tenants.iter().map(|t| t.queries).sum();
        let by_worker: u64 = self.workers.iter().map(|w| w.queries).sum();
        let by_job: u64 = self.jobs.iter().map(|j| j.queries).sum();
        by_tenant == by_worker && by_worker == by_job
    }

    /// The completed outcome of the job named `name`, if any.
    pub fn completed(&self, name: &str) -> Option<&TrainOutcome> {
        self.jobs
            .iter()
            .find(|j| j.name == name)
            .and_then(|j| j.result.as_ref())
            .and_then(|r| r.completed())
    }
}

/// The farm: workers, tenants, and the scheduling loop.
#[derive(Debug)]
pub struct Farm {
    config: FarmConfig,
    workers: Vec<WorkerState>,
    sched: DrrScheduler,
    jobs: Vec<JobRuntime>,
    rounds: u64,
}

impl Farm {
    /// Builds a farm over `workers` serving `tenants`.
    pub fn new(config: FarmConfig, workers: Vec<WorkerSpec>, tenants: Vec<TenantSpec>) -> Self {
        let health = config.health;
        Farm {
            workers: workers
                .into_iter()
                .map(|spec| WorkerState {
                    spec,
                    monitor: HealthMonitor::new(health),
                    dispatches: 0,
                    queries: 0,
                    slices: 0,
                    hangs: 0,
                    timeouts: 0,
                })
                .collect(),
            sched: DrrScheduler::new(tenants),
            jobs: Vec::new(),
            rounds: 0,
            config,
        }
    }

    fn emit_job_state(&self, job: &JobRuntime, state: &str, worker: &str, detail: &str) {
        let (name, tenant) = (job.spec.name.clone(), job.spec.tenant.clone());
        self.config.trace.emit(|| TraceEvent::JobState {
            job: name,
            tenant,
            state: state.to_string(),
            worker: worker.to_string(),
            detail: detail.to_string(),
        });
    }

    fn emit_health(&self, worker: &str, t: &HealthTransition) {
        let worker = worker.to_string();
        let t = t.clone();
        self.config.trace.emit(move || TraceEvent::ChipHealth {
            worker,
            from: t.from.label().to_string(),
            to: t.to.label().to_string(),
            reason: t.reason,
        });
    }

    /// Health attribution for one finished slice: a slice that made
    /// progress (completion or clean preemption) is a success, a watchdog
    /// timeout is charged to the worker. Chaos kills bypass the ladder —
    /// the worker is forced dead right after, whatever the slice did.
    fn record_worker_health(&mut self, worker: usize, ok: bool, killed: bool) {
        if killed {
            return;
        }
        let name = self.workers[worker].spec.name.clone();
        if let Some(t) = self.workers[worker].monitor.record(ok) {
            self.emit_health(&name, &t);
        }
    }

    /// Submits a job. Admission control runs here: an unknown tenant, a
    /// full queue, or an already-spent budget rejects the job immediately
    /// — the rejection is returned *and* recorded in the farm's ledger, so
    /// shutdown accounting still covers it.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, Rejection> {
        let id = JobId(self.jobs.len() as u64);
        let Some(tenant) = self.sched.tenant_index(&spec.tenant) else {
            return Err(self.record_admission_reject(spec, None, RejectReason::UnknownTenant));
        };
        let state = &self.sched.tenants[tenant];
        if state.queue.len() >= state.spec.queue_cap {
            let reason = RejectReason::QueueFull {
                cap: state.spec.queue_cap,
            };
            return Err(self.record_admission_reject(spec, Some(tenant), reason));
        }
        if state.budget_spent() {
            let reason = RejectReason::BudgetExhausted {
                budget: state.spec.query_budget.unwrap_or(0),
                spent: state.queries,
            };
            return Err(self.record_admission_reject(spec, Some(tenant), reason));
        }
        let journal = self
            .config
            .journal_dir
            .join(format!("job-{:04}.journal", id.0));
        let job = JobRuntime {
            spec,
            tenant,
            journal,
            started: false,
            epochs_done: 0,
            queries: 0,
            slices: 0,
            timeouts: 0,
            migrations: 0,
            last_worker: None,
            phase: JobPhase::Queued,
        };
        self.emit_job_state(&job, "queued", "", "");
        debug_assert_eq!(id.0 as usize, self.jobs.len());
        self.jobs.push(job);
        self.sched.tenants[tenant].queue.push_back(id);
        Ok(id)
    }

    fn record_admission_reject(
        &mut self,
        spec: JobSpec,
        tenant: Option<usize>,
        reason: RejectReason,
    ) -> Rejection {
        if let Some(t) = tenant {
            self.sched.tenants[t].rejected += 1;
        }
        let rejection = Rejection {
            job: spec.name.clone(),
            tenant: spec.tenant.clone(),
            reason: reason.clone(),
        };
        let job = JobRuntime {
            tenant: tenant.unwrap_or(usize::MAX),
            journal: PathBuf::new(),
            started: false,
            epochs_done: 0,
            queries: 0,
            slices: 0,
            timeouts: 0,
            migrations: 0,
            last_worker: None,
            phase: JobPhase::Done(JobResult::Rejected(reason.clone())),
            spec,
        };
        self.emit_job_state(&job, "rejected", "", &reason.to_string());
        self.jobs.push(job);
        rejection
    }

    fn finalize(&mut self, id: JobId, result: JobResult, worker: &str) {
        let idx = id.0 as usize;
        match &result {
            JobResult::Completed(_) => {
                let t = self.jobs[idx].tenant;
                self.sched.tenants[t].completed += 1;
                let detail = format!("{} epochs", self.jobs[idx].spec.config.epochs);
                self.emit_job_state(&self.jobs[idx], "completed", worker, &detail);
            }
            JobResult::Rejected(reason) => {
                let t = self.jobs[idx].tenant;
                if t != usize::MAX {
                    self.sched.tenants[t].rejected += 1;
                }
                let detail = reason.to_string();
                self.emit_job_state(&self.jobs[idx], "rejected", worker, &detail);
            }
        }
        self.jobs[idx].phase = JobPhase::Done(result);
    }

    /// Applies scripted quarantines due before each serving worker's next
    /// dispatch.
    fn apply_scheduled_quarantines(&mut self) {
        for w in 0..self.workers.len() {
            let worker = &self.workers[w];
            if !worker.monitor.state().can_serve() {
                continue;
            }
            let next = worker.dispatches + 1;
            if self.config.chaos.quarantine_before(&worker.spec.name, next) {
                let name = self.workers[w].spec.name.clone();
                if let Some(t) = self.workers[w]
                    .monitor
                    .force(ChipHealth::Quarantined, "chaos quarantine")
                {
                    self.emit_health(&name, &t);
                }
            }
        }
    }

    /// Drives every submitted job to a terminal state and returns the
    /// reconciled shutdown report.
    ///
    /// In debug builds the three ledgers (per tenant, per worker, per job)
    /// are asserted to agree; release builds surface the same check via
    /// [`FarmReport::ledgers_reconcile`].
    pub fn run(&mut self) -> FarmReport {
        loop {
            let queued = self
                .jobs
                .iter()
                .any(|j| matches!(j.phase, JobPhase::Queued));
            if !queued {
                break;
            }
            if self.rounds >= self.config.max_rounds {
                self.reject_all_queued(RejectReason::Failed {
                    detail: "scheduler round limit reached".to_string(),
                });
                break;
            }
            self.rounds += 1;
            self.apply_scheduled_quarantines();
            let free: Vec<usize> = (0..self.workers.len())
                .filter(|&w| self.workers[w].monitor.state().can_serve())
                .collect();
            if free.is_empty() {
                self.reject_all_queued(RejectReason::NoHealthyWorkers);
                break;
            }
            let inputs = self.plan_round(&free);
            if inputs.is_empty() {
                // Shedding drained the queues this round; loop back to
                // re-check for queued work.
                continue;
            }
            let pool = ExecPool::with_threads(self.config.parallelism);
            let reports = pool.map(&inputs, |_, inp| run_slice(inp));
            for report in reports {
                self.absorb(report);
            }
        }
        self.shutdown_report()
    }

    /// Builds this round's slice assignments: one per free worker, picked
    /// by DRR. Shed picks consume no worker.
    fn plan_round(&mut self, free: &[usize]) -> Vec<SliceInput> {
        let mut inputs = Vec::new();
        for &w in free {
            loop {
                let jobs = &self.jobs;
                let pick = self
                    .sched
                    .pick(&|id: JobId| {
                        let job = &jobs[id.0 as usize];
                        job.spec.config.epochs.saturating_sub(job.epochs_done)
                    });
                match pick {
                    Pick::Run { job, tenant, grant } => {
                        let worker = &mut self.workers[w];
                        worker.dispatches += 1;
                        let dispatch = worker.dispatches;
                        let worker_name = worker.spec.name.clone();
                        let kill = self.config.chaos.kill_for(&worker_name, dispatch);
                        let idx = job.0 as usize;
                        if let Some(prev) = self.jobs[idx].last_worker {
                            if prev != w {
                                self.jobs[idx].migrations += 1;
                                self.emit_job_state(
                                    &self.jobs[idx],
                                    "migrated",
                                    &worker_name,
                                    &format!("from {}", self.workers[prev].spec.name),
                                );
                            }
                        }
                        self.jobs[idx].phase = JobPhase::Running;
                        self.jobs[idx].last_worker = Some(w);
                        self.jobs[idx].slices += 1;
                        self.emit_job_state(
                            &self.jobs[idx],
                            "dispatched",
                            &worker_name,
                            &format!("slice of {grant} epochs"),
                        );
                        inputs.push(SliceInput {
                            job,
                            tenant,
                            worker: w,
                            spec: self.jobs[idx].spec.clone(),
                            journal: self.jobs[idx].journal.clone(),
                            started: self.jobs[idx].started,
                            hang_prob: self.workers[w].spec.hang_prob,
                            fault_seed: self.workers[w].spec.fault_seed,
                            watchdog: self.config.watchdog,
                            epochs: grant,
                            kill_after: kill,
                        });
                        break;
                    }
                    Pick::Shed {
                        job,
                        budget,
                        spent,
                        ..
                    } => {
                        self.finalize(
                            job,
                            JobResult::Rejected(RejectReason::BudgetExhausted { budget, spent }),
                            "",
                        );
                        // This worker slot is still free; pick again.
                    }
                    Pick::Idle => return inputs,
                }
            }
        }
        inputs
    }

    /// Folds one slice report back into farm state: ledgers, health, and
    /// the job's next move (done, requeue, or reject).
    fn absorb(&mut self, report: SliceReport) {
        let idx = report.job.0 as usize;
        let worker_name = self.workers[report.worker].spec.name.clone();
        {
            let w = &mut self.workers[report.worker];
            w.queries += report.queries;
            w.slices += 1;
            w.hangs += report.hangs;
        }
        self.sched.tenants[report.tenant].queries += report.queries;
        self.jobs[idx].queries += report.queries;

        let killed = report.killed;
        match report.outcome {
            SliceOutcome::Completed(out) => {
                self.jobs[idx].epochs_done = self.jobs[idx].spec.config.epochs;
                self.jobs[idx].started = true;
                self.record_worker_health(report.worker, true, killed);
                self.finalize(report.job, JobResult::Completed(out), &worker_name);
            }
            SliceOutcome::Preempted { epochs_done } => {
                self.jobs[idx].epochs_done = epochs_done;
                self.jobs[idx].started = true;
                self.jobs[idx].phase = JobPhase::Queued;
                self.record_worker_health(report.worker, true, killed);
                self.emit_job_state(
                    &self.jobs[idx],
                    "preempted",
                    &worker_name,
                    &format!("{epochs_done} epochs journaled"),
                );
                self.sched.requeue_front(report.tenant, report.job);
            }
            SliceOutcome::TimedOut {
                epochs_done,
                epoch,
                timeouts,
            } => {
                self.jobs[idx].epochs_done = epochs_done;
                self.jobs[idx].started = true;
                self.jobs[idx].timeouts += 1;
                self.workers[report.worker].timeouts += timeouts;
                self.record_worker_health(report.worker, false, killed);
                if self.jobs[idx].timeouts > self.config.max_job_timeouts {
                    self.finalize(
                        report.job,
                        JobResult::Rejected(RejectReason::Failed {
                            detail: format!(
                                "exceeded {} timed-out slices",
                                self.config.max_job_timeouts
                            ),
                        }),
                        &worker_name,
                    );
                } else {
                    self.jobs[idx].phase = JobPhase::Queued;
                    self.emit_job_state(
                        &self.jobs[idx],
                        "evicted",
                        &worker_name,
                        &format!("watchdog timeout at epoch {epoch}"),
                    );
                    self.sched.requeue_front(report.tenant, report.job);
                }
            }
            SliceOutcome::Failed(detail) => {
                self.finalize(
                    report.job,
                    JobResult::Rejected(RejectReason::Failed { detail }),
                    &worker_name,
                );
            }
        }

        if report.killed {
            if let Some(t) = self.workers[report.worker]
                .monitor
                .force(ChipHealth::Dead, "chaos kill")
            {
                self.emit_health(&worker_name, &t);
            }
        }
    }

    fn reject_all_queued(&mut self, reason: RejectReason) {
        for idx in 0..self.jobs.len() {
            if matches!(self.jobs[idx].phase, JobPhase::Queued) {
                self.finalize(JobId(idx as u64), JobResult::Rejected(reason.clone()), "");
            }
        }
        for t in &mut self.sched.tenants {
            t.queue.clear();
        }
    }

    /// Emits tenant ledgers, reconciles the three accounting axes, and
    /// snapshots the report.
    fn shutdown_report(&mut self) -> FarmReport {
        for t in &self.sched.tenants {
            let (tenant, queries, completed, rejected) =
                (t.spec.name.clone(), t.queries, t.completed, t.rejected);
            self.config.trace.emit(move || TraceEvent::TenantLedger {
                tenant,
                queries,
                jobs_completed: completed,
                jobs_rejected: rejected,
            });
        }
        let by_tenant: u64 = self.sched.tenants.iter().map(|t| t.queries).sum();
        let by_worker: u64 = self.workers.iter().map(|w| w.queries).sum();
        let by_job: u64 = self.jobs.iter().map(|j| j.queries).sum();
        debug_assert_eq!(
            by_tenant, by_worker,
            "tenant ledgers must reconcile with worker chip counters"
        );
        debug_assert_eq!(
            by_job, by_worker,
            "job ledgers must reconcile with worker chip counters"
        );
        self.config.trace.flush();
        FarmReport {
            jobs: self
                .jobs
                .iter()
                .enumerate()
                .map(|(i, j)| JobOutcome {
                    id: JobId(i as u64),
                    name: j.spec.name.clone(),
                    tenant: j.spec.tenant.clone(),
                    result: match &j.phase {
                        JobPhase::Done(result) => Some(result.clone()),
                        JobPhase::Queued | JobPhase::Running => None,
                    },
                    queries: j.queries,
                    slices: j.slices,
                    migrations: j.migrations,
                    last_worker: j.last_worker.map(|w| self.workers[w].spec.name.clone()),
                })
                .collect(),
            tenants: self
                .sched
                .tenants
                .iter()
                .map(|t| TenantReport {
                    name: t.spec.name.clone(),
                    queries: t.queries,
                    completed: t.completed,
                    rejected: t.rejected,
                })
                .collect(),
            workers: self
                .workers
                .iter()
                .map(|w| WorkerReport {
                    name: w.spec.name.clone(),
                    health: w.monitor.state(),
                    queries: w.queries,
                    slices: w.slices,
                    hangs: w.hangs,
                    timeouts: w.timeouts,
                    dispatches: w.dispatches,
                })
                .collect(),
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{Method, TaskSpec, TrainConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("photon-farm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_job(name: &str, tenant: &str, epochs: usize) -> JobSpec {
        let mut config = TrainConfig::quick(3);
        config.epochs = epochs;
        config.warm_epochs = 2;
        config.threads = Some(1);
        JobSpec::new(name, tenant, TaskSpec::quick(3), Method::ZoGaussian, config)
            .with_task_seed(11)
            .with_root_seed(23)
    }

    #[test]
    fn admission_rejects_unknown_tenant_full_queue_and_spent_budget() {
        let dir = tmp_dir("admission");
        let mut farm = Farm::new(
            FarmConfig::new(&dir),
            vec![WorkerSpec::clean("w0")],
            vec![TenantSpec::new("a").with_queue_cap(1)],
        );
        let err = farm.submit(quick_job("j0", "nobody", 2)).unwrap_err();
        assert_eq!(err.reason, RejectReason::UnknownTenant);
        farm.submit(quick_job("j1", "a", 2)).unwrap();
        let err = farm.submit(quick_job("j2", "a", 2)).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull { cap: 1 });
        // Rejected submissions are still accounted for at shutdown.
        let report = farm.run();
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.lost(), 0);
        assert_eq!(
            report.jobs[0].result.as_ref().unwrap().rejected(),
            Some(&RejectReason::UnknownTenant)
        );
        assert!(report.jobs[1].result.as_ref().unwrap().completed().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_job_on_clean_farm_completes() {
        let dir = tmp_dir("single");
        let mut farm = Farm::new(
            FarmConfig::new(&dir),
            vec![WorkerSpec::clean("w0")],
            vec![TenantSpec::new("a").with_quantum(2)],
        );
        farm.submit(quick_job("j0", "a", 5)).unwrap();
        let report = farm.run();
        assert_eq!(report.lost(), 0);
        assert!(report.ledgers_reconcile());
        let out = report.completed("j0").expect("job must complete");
        assert_eq!(out.history.len(), 5);
        // Quantum 2 against 5 epochs → at least 3 slices.
        assert!(report.jobs[0].slices >= 3, "slices: {}", report.jobs[0].slices);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sliced_run_is_bitwise_identical_to_uninterrupted_run() {
        let dir = tmp_dir("bitwise");
        // Uninterrupted single-chip baseline.
        let spec = quick_job("solo", "a", 4);
        let task = build_task(&spec.task, spec.task_seed).unwrap();
        let chip = FaultyChip::new(task.chip, FaultPlan::new(spec.task_seed));
        let trainer = Trainer::new(&chip, &task.train, &task.test, task.head);
        let opts = DurableOptions::new(dir.join("solo.journal"), spec.root_seed);
        let baseline = trainer
            .train_durable(spec.method, &spec.config, &opts)
            .unwrap()
            .completed()
            .unwrap();
        // Same job sliced across two workers, one of which dies.
        let chaos = ChaosPlan::none().with_kill("w0", 1, 1);
        let mut farm = Farm::new(
            FarmConfig::new(&dir).with_chaos(chaos),
            vec![WorkerSpec::clean("w0"), WorkerSpec::clean("w1")],
            vec![TenantSpec::new("a").with_quantum(2)],
        );
        farm.submit(quick_job("farmed", "a", 4)).unwrap();
        let report = farm.run();
        let farmed = report.completed("farmed").expect("job must complete");
        assert_eq!(farmed.theta.as_slice(), baseline.theta.as_slice());
        assert_eq!(farmed.final_eval.accuracy, baseline.final_eval.accuracy);
        assert_eq!(report.jobs[0].migrations, 1, "job must have migrated off w0");
        assert_eq!(
            report.workers[0].health,
            ChipHealth::Dead,
            "w0 was chaos-killed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_exhaustion_sheds_follow_up_jobs_with_typed_reason() {
        let dir = tmp_dir("budget");
        let mut farm = Farm::new(
            FarmConfig::new(&dir),
            vec![WorkerSpec::clean("w0")],
            // Budget of 1 query: the first job's first slice overruns it,
            // so the second job is shed at its dispatch.
            vec![TenantSpec::new("a").with_query_budget(1).with_quantum(8)],
        );
        farm.submit(quick_job("first", "a", 2)).unwrap();
        farm.submit(quick_job("second", "a", 2)).unwrap();
        let report = farm.run();
        assert_eq!(report.lost(), 0);
        assert!(report.completed("first").is_some());
        match report.jobs[1].result.as_ref().unwrap().rejected() {
            Some(RejectReason::BudgetExhausted { budget: 1, .. }) => {}
            other => panic!("expected budget shed, got {other:?}"),
        }
        assert!(report.ledgers_reconcile());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
