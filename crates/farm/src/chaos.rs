//! Deterministic chaos schedules for farm tests and CI gates.
//!
//! A [`ChaosPlan`] scripts infrastructure failures against *workers* (never
//! against job state): kill a worker partway through its nth slice, or yank
//! it into quarantine before a dispatch. Schedules are keyed on each
//! worker's own dispatch counter, so a plan replays identically however the
//! scheduler interleaves tenants — which is what lets the chaos gate assert
//! bitwise-exact results.
//!
//! Hang injection is not scripted here: hangs are a property of a worker's
//! lab link, configured per worker via
//! [`WorkerSpec::hanging`](crate::WorkerSpec::hanging) and converted by the
//! watchdog into discarded attempts.

/// Kill one worker during one of its slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillSpec {
    /// Worker name.
    pub worker: String,
    /// The worker's 1-based dispatch ordinal on which the kill lands.
    pub at_dispatch: u64,
    /// Epochs the doomed slice is allowed to commit before the worker
    /// dies. `0` kills it before any epoch of that slice lands.
    pub after_epochs: usize,
}

/// Force one worker into quarantine before it reaches a dispatch ordinal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineSpec {
    /// Worker name.
    pub worker: String,
    /// Takes effect before the worker's `before_dispatch`-th (1-based)
    /// dispatch.
    pub before_dispatch: u64,
}

/// A scripted, seedless, fully deterministic failure schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Scheduled worker kills.
    pub kills: Vec<KillSpec>,
    /// Scheduled forced quarantines.
    pub quarantines: Vec<QuarantineSpec>,
}

impl ChaosPlan {
    /// An empty plan: no scripted failures.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Adds a kill: `worker` dies on its `at_dispatch`-th slice after that
    /// slice commits `after_epochs` epochs.
    #[must_use]
    pub fn with_kill(mut self, worker: &str, at_dispatch: u64, after_epochs: usize) -> Self {
        self.kills.push(KillSpec {
            worker: worker.to_string(),
            at_dispatch,
            after_epochs,
        });
        self
    }

    /// Adds a forced quarantine of `worker` before its
    /// `before_dispatch`-th slice.
    #[must_use]
    pub fn with_quarantine(mut self, worker: &str, before_dispatch: u64) -> Self {
        self.quarantines.push(QuarantineSpec {
            worker: worker.to_string(),
            before_dispatch,
        });
        self
    }

    /// If `worker`'s `dispatch`-th slice is scripted to die, the number of
    /// epochs it may commit first.
    pub(crate) fn kill_for(&self, worker: &str, dispatch: u64) -> Option<usize> {
        self.kills
            .iter()
            .find(|k| k.worker == worker && k.at_dispatch == dispatch)
            .map(|k| k.after_epochs)
    }

    /// Whether `worker` must be quarantined before its `next_dispatch`-th
    /// slice.
    pub(crate) fn quarantine_before(&self, worker: &str, next_dispatch: u64) -> bool {
        self.quarantines
            .iter()
            .any(|q| q.worker == worker && q.before_dispatch <= next_dispatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_matches_only_its_dispatch_ordinal() {
        let plan = ChaosPlan::none().with_kill("w0", 2, 1);
        assert_eq!(plan.kill_for("w0", 1), None);
        assert_eq!(plan.kill_for("w0", 2), Some(1));
        assert_eq!(plan.kill_for("w0", 3), None);
        assert_eq!(plan.kill_for("w1", 2), None);
    }

    #[test]
    fn quarantine_triggers_at_or_after_its_ordinal() {
        let plan = ChaosPlan::none().with_quarantine("w1", 3);
        assert!(!plan.quarantine_before("w1", 2));
        assert!(plan.quarantine_before("w1", 3));
        assert!(plan.quarantine_before("w1", 4));
        assert!(!plan.quarantine_before("w0", 3));
    }
}
